"""Chip-scale weight-programming cost (deployment-time writes).

The paper evaluates steady-state inference; loading the model onto the chip
is a one-time cost its architecture still has to pay, and FORMS changes it
in two ways worth quantifying:

* compression (pruning x quantization x polarization) shrinks the number of
  *cells* that need programming by the Table I/II crossbar-reduction factor;
* closed-loop program-and-verify writes (:mod:`repro.reram.vteam`) determine
  the per-cell pulse budget and Joule energy.

The cost model samples the program-and-verify controller once per target
level (cells of the same level behave identically up to variation) and
scales by the level histogram of the mapped model.  Writes are
column-parallel (one write driver per crossbar column) and crossbars program
concurrently up to a chip-level power budget — both knobs are explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..reram.device import DeviceSpec
from ..reram.vteam import (ProgramScheme, VTEAMCell, VTEAMParams,
                           device_spec_from_vteam, program_level)


@dataclass(frozen=True)
class WriteParallelism:
    """How many cells program at once.

    ``drivers_per_crossbar``: columns written concurrently inside one array
    (one write driver per column is the common design); ``concurrent_
    crossbars``: arrays programming at the same time, bounded by the charge
    pump / power delivery.
    """

    drivers_per_crossbar: int = 128
    concurrent_crossbars: int = 64
    verify_time_s: float = 10e-9

    def __post_init__(self):
        if self.drivers_per_crossbar < 1 or self.concurrent_crossbars < 1:
            raise ValueError("parallelism factors must be >= 1")
        if self.verify_time_s < 0:
            raise ValueError("verify_time_s must be non-negative")


@dataclass
class LevelWriteCost:
    """Program-and-verify cost of reaching one conductance level."""

    level: int
    pulses: int
    time_s: float
    energy_j: float


def level_write_costs(params: VTEAMParams = VTEAMParams(),
                      cell_bits: int = 2,
                      scheme: ProgramScheme = ProgramScheme(),
                      verify_time_s: float = 10e-9
                      ) -> Dict[int, LevelWriteCost]:
    """Per-level write cost, measured on the VTEAM dynamics.

    Cells start from the fully-RESET state (the erased array); each level's
    pulse count, wall time (pulse + verify per attempt) and Joule energy
    come from one closed-loop programming session.
    """
    spec = device_spec_from_vteam(params, cell_bits)
    costs = {}
    for level in range(spec.levels):
        target = float(spec.ideal_conductance(np.array([level]))[0])
        cell = VTEAMCell(params, state=1.0)
        result = program_level(cell, target, scheme)
        if not result.converged:
            raise RuntimeError(f"program-and-verify failed for level {level}")
        costs[level] = LevelWriteCost(
            level=level,
            pulses=result.pulses,
            time_s=result.pulses * (scheme.pulse_width_s + verify_time_s),
            energy_j=result.energy_j,
        )
    return costs


@dataclass
class ProgrammingCost:
    """Whole-model weight-loading cost."""

    cells: int
    crossbars: int
    total_pulses: int
    energy_j: float
    latency_s: float

    @property
    def energy_mj(self) -> float:
        return self.energy_j * 1e3

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


def model_programming_cost(level_histogram: Dict[int, int],
                           crossbars: int,
                           params: VTEAMParams = VTEAMParams(),
                           cell_bits: int = 2,
                           scheme: ProgramScheme = ProgramScheme(),
                           parallelism: WriteParallelism = WriteParallelism()
                           ) -> ProgrammingCost:
    """Cost of programming a model given its cell-level histogram.

    ``level_histogram`` maps conductance level -> cell count (from
    :func:`cell_level_histogram`); ``crossbars`` is the array count the
    model occupies (a :class:`~repro.core.compression.CompressionReport`'s
    ``total_forms_crossbars``).

    Latency model: inside a crossbar, each row is written serially but its
    columns program in parallel; the row's wall time is the slowest cell in
    it, bounded above by the slowest level overall.  Crossbars overlap up to
    ``concurrent_crossbars``.
    """
    if crossbars < 1:
        raise ValueError("crossbars must be >= 1")
    costs = level_write_costs(params, cell_bits, scheme)
    unknown = set(level_histogram) - set(costs)
    if unknown:
        raise ValueError(f"histogram contains invalid levels: {sorted(unknown)}")
    cells = int(sum(level_histogram.values()))
    total_pulses = int(sum(costs[level].pulses * count
                           for level, count in level_histogram.items()))
    energy = float(sum(costs[level].energy_j * count
                       for level, count in level_histogram.items()))
    per_attempt = scheme.pulse_width_s + parallelism.verify_time_s
    worst_pulses = max((costs[level].pulses
                        for level, count in level_histogram.items() if count),
                       default=0)
    rows_per_crossbar = -(-cells // (crossbars * parallelism.drivers_per_crossbar))
    crossbar_time = rows_per_crossbar * worst_pulses * per_attempt
    waves = -(-crossbars // parallelism.concurrent_crossbars)
    return ProgrammingCost(
        cells=cells,
        crossbars=crossbars,
        total_pulses=total_pulses,
        energy_j=energy,
        latency_s=waves * crossbar_time,
    )


def cell_level_histogram(code_planes: Dict[str, np.ndarray]) -> Dict[int, int]:
    """Level histogram of a mapped layer's cell codes (all planes)."""
    histogram: Dict[int, int] = {}
    for codes in code_planes.values():
        values, counts = np.unique(np.asarray(codes), return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            histogram[int(value)] = histogram.get(int(value), 0) + int(count)
    return histogram

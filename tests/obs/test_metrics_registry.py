"""MetricsRegistry units: instruments, exposition, parser, thread safety.

The registry is the substrate of ``GET /metrics``; these tests pin its
contracts in isolation — counter monotonicity, gauge pull-functions,
histogram bucketing, the render/parse round trip (the same strict parser
the wire smoke uses), the disabled no-op shape, and snapshot-consistent
reads under concurrent mutation.
"""

import threading

import pytest

from repro.obs import (MetricsRegistry, parse_prometheus_text)
from repro.obs.metrics import NULL_CHILD


class TestCounter:
    def test_inc_accumulates_per_label(self):
        reg = MetricsRegistry()
        counter = reg.counter("requests_total", "requests", labels=("model",))
        counter.labels("a").inc()
        counter.labels("a").inc(2)
        counter.labels("b").inc(5)
        families = parse_prometheus_text(reg.render())
        samples = families["requests_total"]["samples"]
        assert samples[("requests_total", (("model", "a"),))] == 3
        assert samples[("requests_total", (("model", "b"),))] == 5

    def test_negative_inc_raises(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_set_advances_to_monotone_total(self):
        """The mirror pattern: scrape hooks advance a counter to a source
        total; moving backwards surfaces the source's broken contract."""
        counter = MetricsRegistry().counter("mirror_total")
        counter.labels().set(7)
        counter.labels().set(7)      # no-move is fine
        counter.labels().set(12)
        with pytest.raises(ValueError, match="decrease"):
            counter.labels().set(11)

    def test_label_arity_is_checked(self):
        counter = MetricsRegistry().counter("c_total", labels=("a", "b"))
        with pytest.raises(ValueError, match="expected labels"):
            counter.labels("only-one")


class TestGauge:
    def test_set_and_inc(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(4.0)
        gauge.inc(-1.5)          # gauges go both ways
        samples = parse_prometheus_text(reg.render())["depth"]["samples"]
        assert samples[("depth", ())] == 2.5

    def test_set_function_reads_at_collect_time(self):
        reg = MetricsRegistry()
        live = {"value": 1.0}
        reg.gauge("live").set_function(lambda: live["value"])
        assert parse_prometheus_text(
            reg.render())["live"]["samples"][("live", ())] == 1.0
        live["value"] = 9.0
        assert parse_prometheus_text(
            reg.render())["live"]["samples"][("live", ())] == 9.0


class TestHistogram:
    def test_bucketing_is_cumulative_with_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        samples = parse_prometheus_text(reg.render())["lat_seconds"]["samples"]

        def bucket(le):
            return samples[("lat_seconds_bucket", (("le", le),))]

        assert bucket("0.01") == 2
        assert bucket("0.1") == 3
        assert bucket("1") == 4        # integral bounds render bare
        assert bucket("+Inf") == 5
        assert samples[("lat_seconds_count", ())] == 5
        assert samples[("lat_seconds_sum", ())] == pytest.approx(5.56)

    def test_boundary_lands_in_its_le_bucket(self):
        """``le`` is an inclusive upper bound: observe(b) counts in b."""
        reg = MetricsRegistry()
        hist = reg.histogram("h_seconds", buckets=(1.0, 2.0))
        hist.observe(1.0)
        samples = parse_prometheus_text(reg.render())["h_seconds"]["samples"]
        assert samples[("h_seconds_bucket", (("le", "1"),))] == 1

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ValueError, match="increasing"):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.5))


class TestRegistration:
    def test_idempotent_same_shape(self):
        reg = MetricsRegistry()
        first = reg.counter("c_total", labels=("x",))
        assert reg.counter("c_total", labels=("x",)) is first

    def test_conflicting_reregistration_raises(self):
        reg = MetricsRegistry()
        reg.counter("c_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("c_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("c_total", labels=("model",))

    def test_invalid_names_raise(self):
        reg = MetricsRegistry()
        for bad in ("", "9starts_with_digit", "has-dash", "has space"):
            with pytest.raises(ValueError, match="invalid metric name"):
                reg.counter(bad)


class TestDisabledRegistry:
    def test_instruments_are_shared_noops(self):
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("c_total", labels=("model",))
        assert counter.labels("a") is NULL_CHILD
        # every instrument method is callable and does nothing
        counter.inc()
        reg.gauge("g").set(4.0)
        reg.histogram("h_seconds").observe(0.1)
        assert reg.render() == ""

    def test_empty_exposition_parses_to_nothing(self):
        assert parse_prometheus_text(MetricsRegistry(enabled=False)
                                     .render()) == {}


class TestParserStrictness:
    def test_sample_without_type_raises(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus_text("orphan 3\n")

    def test_noncumulative_buckets_raise(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_count 3\n")
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus_text(text)

    def test_missing_inf_bucket_raises(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                "h_count 5\n")
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus_text(text)

    def test_count_disagreeing_with_inf_raises(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 5\n'
                "h_count 4\n")
        with pytest.raises(ValueError, match="_count"):
            parse_prometheus_text(text)

    def test_duplicate_sample_raises(self):
        text = "# TYPE c counter\nc 1\nc 2\n"
        with pytest.raises(ValueError, match="duplicate sample"):
            parse_prometheus_text(text)

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("path",)).labels('a"b\\c\nd').inc()
        samples = parse_prometheus_text(reg.render())["c_total"]["samples"]
        ((_, labels),) = samples.keys()
        assert dict(labels)["path"] == 'a"b\\c\nd'


class TestConcurrentScrapes:
    def test_every_scrape_is_internally_consistent(self):
        """N writer threads hammer a counter and a histogram while the
        main thread scrapes: every exposition parses (the parser enforces
        cumulative buckets and ``_count == +Inf``), and the counter never
        moves backwards between scrapes."""
        reg = MetricsRegistry()
        counter = reg.counter("ops_total", labels=("worker",))
        hist = reg.histogram("op_seconds", buckets=(0.1, 1.0))
        threads_n, per_thread = 8, 500
        start = threading.Barrier(threads_n + 1)

        def writer(worker_id):
            child = counter.labels(str(worker_id))
            start.wait()
            for i in range(per_thread):
                child.inc()
                hist.observe(0.05 * (1 + i % 3))

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(threads_n)]
        for thread in threads:
            thread.start()
        start.wait()
        previous_total = 0.0
        while any(thread.is_alive() for thread in threads):
            families = parse_prometheus_text(reg.render())   # parser checks
            samples = families.get("ops_total", {}).get("samples", {})
            total = sum(samples.values())
            assert total >= previous_total, "counter total moved backwards"
            previous_total = total
        for thread in threads:
            thread.join()
        families = parse_prometheus_text(reg.render())
        assert sum(families["ops_total"]["samples"].values()) \
            == threads_n * per_thread
        assert families["op_seconds"]["samples"][("op_seconds_count", ())] \
            == threads_n * per_thread

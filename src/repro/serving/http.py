"""HTTP front end for the serving layer: the wire protocol over
:class:`~repro.serving.server.InferenceServer`.

Everything below PR 5 is in-process: the server, the SLA scheduler and
the registry can only be driven by code importing :mod:`repro.serving`.
This module makes the stack *externally drivable* — a std-lib
(`http.server` ``ThreadingHTTPServer``) front end that speaks a small,
documented JSON wire protocol (reference: ``docs/serving.md``), so the
ROADMAP's end-to-end latency budget includes the socket, the parse and
the queue, not just the dispatch loop.

Endpoints
---------
=========================  ====================================================
``POST /v1/infer``         one image in, logits + per-request receipt out;
                           ``model`` / ``priority`` / ``deadline_ms`` map onto
                           the SLA path of :meth:`InferenceServer.submit_async`
``POST /v1/infer_batch``   many images enqueued *before* any is waited on, so
                           they may coalesce into shared batches
``GET  /v1/models``        the registry snapshot (tenants, die-dedup stats)
``GET  /v1/stats``         the operational snapshot (per-class / per-model
                           percentiles, sheds, occupancy, queue depth)
``GET  /healthz``          liveness: 200 while serving, 503 while draining
``GET  /metrics``          Prometheus text exposition of the server's
                           :class:`~repro.obs.MetricsRegistry`
``GET  /v1/usage``         per-(model, class) usage accounting (requests,
                           macs, die-seconds, sheds)
``GET  /v1/trace/<id>``    the stored span tree of one request, keyed on
                           its ``X-Request-Id`` (404 once evicted)
=========================  ====================================================

Observability endpoints are documented in ``docs/observability.md``.

Payload encodings
-----------------
Images travel either as nested JSON arrays (``"input"`` — decoded as
float64; Python's ``repr``-based JSON float serialization round-trips
every finite float64 exactly, so JSON is *not* a lossy channel here) or
as base64 of ``.npy`` bytes (``"input_b64"`` — any dtype, byte-exact).
The response mirrors the request's encoding (``"output"`` vs
``"output_b64"``).

Error contract
--------------
Every failure is a structured JSON body ``{"error": {"code": ...,
"message": ...}}`` with a stable machine-readable ``code`` (the full
table lives in ``docs/serving.md``).  A shed or admission-refused
request returns 503 with ``code "shed"`` and the full
:class:`~repro.serving.scheduler.ShedReceipt`; a request arriving while
the front end drains returns 503 ``"shutting_down"``.  Request bodies
are bounded (``max_body_bytes``, 413 past it, read no further).

Every 503 carries a ``Retry-After`` header (fractional seconds) plus a
``"retry_after_s"`` mirror inside the error object, which the client's
retry loop honors over its computed backoff.  Every request adopts (or
mints) an ``X-Request-Id``: echoed as a response header, injected into
error bodies as ``"trace_id"`` and threaded through the scheduler into
served/shed receipts — one id traces a request across the router, the
replica and the receipt.

Bit-identity over the wire
--------------------------
The transport is **numerics-invisible**: a decoded ``POST /v1/infer``
output is bit-identical to the in-process ``submit`` result for the same
image — at any worker count, read noise on or off, JSON or base64
encoding (``tests/serving/test_http.py``).  The front end never touches
the image values; it only moves bytes and dict keys.

Shutdown
--------
:meth:`HttpFrontend.shutdown` drains: new requests are refused with 503
``"shutting_down"``, the owned inference server drains its queue (so
in-flight HTTP handlers waiting on futures complete — or fail with an
explicit shed/shutdown error, never a wedged socket), the accept loop
stops, and remaining handler threads are waited out.
"""

from __future__ import annotations

import base64
import io
import json
import re
import threading
import time
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..obs import PROMETHEUS_CONTENT_TYPE
from ..obs.trace import new_trace_id
from ..reram.faults import DieFaultDetected
from .queue import QueueClosed
from .scheduler import RequestShed

#: default request-body bound (bytes) — far above any demo image, far
#: below anything that could exhaust the container
DEFAULT_MAX_BODY_BYTES = 8 << 20

#: default ``Retry-After`` hint (seconds) attached to 503 responses —
#: small, because a shed or a drain is a *moment*, not an outage; the
#: header carries fractional decimal seconds (a documented deviation
#: from RFC 9110's integer seconds: every consumer here is our own
#: client or the router, and sub-second backoff is the useful range)
DEFAULT_RETRY_AFTER_S = 0.25

#: accepted shape of a client-supplied ``X-Request-Id``: printable
#: ASCII, bounded — anything else is replaced by a generated id rather
#: than rejected (tracing must never fail a request)
_TRACE_ID_RE = re.compile(r"^[\x21-\x7e]{1,128}$")


#: what a failed round trip through :meth:`HttpClient.request` can raise
#: when the far end dies mid-exchange: connection errors (``OSError``,
#: including ``RemoteDisconnected``), protocol tears (``HTTPException``
#: — truncated status line after a SIGKILL) and partial-body JSON decode
#: failures (``ValueError``).  The cluster's failover classification
#: treats every one of these as "this replica, right now" — retryable.
TRANSPORT_ERRORS = (OSError, HTTPException, ValueError)

#: structured error codes of the wire protocol (documented in
#: docs/serving.md — keep the two in lockstep; tests assert membership)
ERROR_CODES = (
    "malformed_json",     # 400: body is not valid UTF-8 JSON / not an object
    "invalid_request",    # 400: JSON is fine but the envelope is not
    "invalid_input",      # 400: image undecodable or wrong shape
    "unknown_model",      # 404: "model" names no registered tenant
    "unknown_priority",   # 400: "priority" names no class of the policy
    "length_required",    # 411: POST without Content-Length
    "body_too_large",     # 413: Content-Length past max_body_bytes
    "not_found",          # 404: unknown path
    "method_not_allowed",  # 405: wrong verb for a known path
    "shed",               # 503: shed/admission-refused (carries a receipt)
    "shutting_down",      # 503: the front end is draining
    "die_fault",          # 503: a die fault escaped the recovery path
    #                       (checksum tripped and no healthy reference was
    #                       available to restore from — the request failed
    #                       loudly instead of being answered wrong)
    "cluster_unavailable",  # 503: every replica that could serve the model
    #                       is down (emitted by the ClusterRouter, never by
    #                       a single front end — an explicit receipt, not a
    #                       hang or a silent 500)
    "internal",           # 500: dispatch failure (batcher error)
)


class WireFormatError(ValueError):
    """A request that cannot be mapped onto a submission.

    Carries the HTTP ``status`` and the structured error ``code`` the
    handler should answer with.
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


# ---------------------------------------------------------------------------
# payload encode/decode — shared by the server handler and HttpClient, so
# the two ends of the wire cannot drift apart
def encode_array(array: np.ndarray) -> str:
    """Base64 of the array's ``.npy`` serialization (byte-exact)."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_array_b64(data: str) -> np.ndarray:
    try:
        raw = base64.b64decode(data, validate=True)
        return np.load(io.BytesIO(raw), allow_pickle=False)
    except Exception as exc:
        raise WireFormatError(400, "invalid_input",
                              f"undecodable base64 .npy payload: {exc}")


def decode_array_json(obj) -> np.ndarray:
    """Nested JSON lists -> float64 (the wire's canonical numeric dtype)."""
    try:
        array = np.asarray(obj, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise WireFormatError(400, "invalid_input",
                              f"input is not a numeric array: {exc}")
    if array.dtype != np.float64:   # pragma: no cover — asarray guarantees
        raise WireFormatError(400, "invalid_input", "input must be numeric")
    return array


def decode_input(payload: Dict, *, key: str = "input") -> Tuple[np.ndarray, bool]:
    """Extract one image from a request envelope.

    Returns ``(array, binary)`` where ``binary`` records which encoding
    the caller used (the response mirrors it).
    """
    key_b64 = f"{key}_b64"
    has_json, has_b64 = key in payload, key_b64 in payload
    if has_json == has_b64:
        raise WireFormatError(
            400, "invalid_request",
            f"pass exactly one of {key!r} (nested JSON array) or "
            f"{key_b64!r} (base64 .npy)")
    if has_b64:
        if not isinstance(payload[key_b64], str):
            raise WireFormatError(400, "invalid_request",
                                  f"{key_b64!r} must be a base64 string")
        return decode_array_b64(payload[key_b64]), True
    return decode_array_json(payload[key]), False


def result_body(result, binary: bool) -> Dict:
    """A :class:`~repro.serving.stats.ServedResult` as a response dict."""
    body: Dict = {"stats": result.stats.as_dict()}
    if binary:
        body["output_b64"] = encode_array(result.output)
    else:
        body["output"] = result.output.tolist()
    return body


def error_body(code: str, message: str, **extra) -> Dict:
    assert code in ERROR_CODES, f"undocumented error code {code!r}"
    error = {"code": code, "message": message}
    error.update(extra)
    return {"error": error}


def shed_body(exc: RequestShed) -> Dict:
    return error_body("shed", str(exc), reason=exc.receipt.reason,
                      receipt=exc.receipt.as_dict())


def iter_sse_events(fp):
    """Parse server-sent events off a file-like of bytes lines.

    Yields ``(event, data)`` with ``data`` JSON-decoded — the async
    front end's streaming path emits exactly one JSON object per event
    (types in :data:`repro.serving.aio.STREAM_EVENTS`).  Shared by
    :meth:`HttpClient.infer_batch_stream` and the async load generator
    so every consumer reads the frames one way.
    """
    event, data_lines = None, []
    for raw in fp:
        line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
        if not line:
            if event is not None:
                yield event, json.loads("\n".join(data_lines))
            event, data_lines = None, []
            continue
        field, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if field == "event":
            event = value
        elif field == "data":
            data_lines.append(value)


def _submit_kwargs(server, payload: Dict) -> Dict:
    """Validate and map the request envelope onto ``submit_async`` kwargs.

    Pre-resolves the model and the priority class so the two distinct
    failure modes get distinct error codes (``unknown_model`` 404 vs
    ``unknown_priority`` 400) instead of one opaque 400.
    """
    model = payload.get("model")
    if model is not None and not isinstance(model, str):
        raise WireFormatError(400, "invalid_request", "'model' must be a string")
    priority = payload.get("priority")
    if priority is not None and not isinstance(priority, str):
        raise WireFormatError(400, "invalid_request",
                              "'priority' must be a string")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) \
                or isinstance(deadline_ms, bool) or deadline_ms <= 0:
            raise WireFormatError(400, "invalid_request",
                                  "'deadline_ms' must be a number > 0")
    try:
        server.registry.get(model)
    except KeyError as exc:
        raise WireFormatError(404, "unknown_model", str(exc.args[0]))
    except ValueError as exc:
        # a multi-tenant registry needs an explicit name
        raise WireFormatError(400, "invalid_request", str(exc))
    try:
        server.policy.rank_of(priority)
    except KeyError as exc:
        raise WireFormatError(400, "unknown_priority", str(exc.args[0]))
    return {
        "model": model,
        "priority": priority,
        "deadline_s": deadline_ms / 1e3 if deadline_ms is not None else None,
    }


# ---------------------------------------------------------------------------
class JsonHttpHandler(BaseHTTPRequestHandler):
    """Shared JSON-over-HTTP plumbing of the wire protocol.

    Subclassed by the front end's :class:`_Handler` and the cluster
    router's handler (``repro.serving.cluster.router``), so the two
    processes speak byte-compatible protocol mechanics: bounded body
    reads, structured error replies, ``Retry-After`` on 503s and
    ``X-Request-Id`` echo.  The serving object (front end or router)
    lives on ``self.server.owner`` and must expose ``max_body_bytes``,
    ``retry_after_s`` and ``log``.
    """

    protocol_version = "HTTP/1.1"
    server_version = "forms-serving/1"

    #: set per request by :meth:`_begin_request`
    _trace_id: Optional[str] = None

    @property
    def owner(self):
        return self.server.owner   # type: ignore[attr-defined]

    def log_message(self, format, *args):   # noqa: A002 — stdlib signature
        log = self.owner.log
        if log is not None:
            log(f"{self.address_string()} {format % args}")

    # -- plumbing ----------------------------------------------------------
    def _begin_request(self) -> None:
        """Adopt the caller's ``X-Request-Id`` (or mint one).

        An unusable supplied id (non-printable, overlong) is replaced,
        never refused: tracing is diagnostics, not validation.  The id is
        echoed as a response header on every reply and injected into
        error bodies as ``"trace_id"``.
        """
        supplied = self.headers.get("X-Request-Id")
        if supplied is not None and _TRACE_ID_RE.match(supplied):
            self._trace_id = supplied
        else:
            self._trace_id = new_trace_id()

    def _reply(self, status: int, body: Dict) -> None:
        retry_after = (self.owner.retry_after_s if status == 503 else None)
        error = body.get("error")
        if isinstance(error, dict):
            if retry_after is not None:
                # JSON mirror of the Retry-After header, so std-lib
                # clients (which decode bodies, not headers) can honor it
                error.setdefault("retry_after_s", retry_after)
            if self._trace_id is not None:
                error.setdefault("trace_id", self._trace_id)
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if self._trace_id is not None:
            self.send_header("X-Request-Id", self._trace_id)
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.end_headers()
        self.wfile.write(data)

    def _reply_text(self, status: int, text: str,
                    content_type: str = PROMETHEUS_CONTENT_TYPE) -> None:
        """A non-JSON reply — the ``/metrics`` exposition path."""
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if self._trace_id is not None:
            self.send_header("X-Request-Id", self._trace_id)
        self.end_headers()
        self.wfile.write(data)

    def _reply_error(self, status: int, code: str, message: str,
                     **extra) -> None:
        self._reply(status, error_body(code, message, **extra))

    def _read_body(self) -> Optional[bytes]:
        """Bounded body read; replies (and returns None) on protocol errors."""
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self.close_connection = True
            self._reply_error(411, "length_required",
                              "POST requires a Content-Length header")
            return None
        try:
            length = int(length_header)
            if length < 0:
                raise ValueError
        except ValueError:
            self.close_connection = True
            self._reply_error(400, "invalid_request",
                              "Content-Length is not a non-negative integer")
            return None
        if length > self.owner.max_body_bytes:
            # refuse without reading: the connection cannot be reused
            self.close_connection = True
            self._reply_error(
                413, "body_too_large",
                f"request body of {length} bytes exceeds the "
                f"{self.owner.max_body_bytes}-byte bound",
                max_body_bytes=self.owner.max_body_bytes)
            return None
        body = self.rfile.read(length)
        if len(body) != length:
            self.close_connection = True
            self._reply_error(400, "invalid_request", "truncated request body")
            return None
        return body

    def _parse_json(self, body: bytes) -> Optional[Dict]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply_error(400, "malformed_json",
                              f"request body is not valid JSON: {exc}")
            return None
        if not isinstance(payload, dict):
            self._reply_error(400, "malformed_json",
                              "request body must be a JSON object")
            return None
        return payload


class _Handler(JsonHttpHandler):
    """One request of the wire protocol; state lives on the frontend."""

    # the ThreadingHTTPServer subclass below carries .frontend
    @property
    def frontend(self) -> "HttpFrontend":
        return self.server.frontend   # type: ignore[attr-defined]

    # -- verbs -------------------------------------------------------------
    def do_GET(self) -> None:   # noqa: N802 — stdlib naming
        self._begin_request()
        with self.frontend._track():
            if self.path == "/healthz":
                self._handle_healthz()
            elif self.path == "/v1/stats":
                self._reply(200, self.frontend.server.server_stats())
            elif self.path == "/v1/models":
                self._reply(200, self.frontend.server.registry_stats())
            elif self.path == "/metrics":
                self._reply_text(200, self.frontend.server.metrics_text())
            elif self.path == "/v1/usage":
                self._reply(200, self.frontend.server.usage_snapshot())
            elif self.path.startswith("/v1/trace/"):
                self._handle_trace(self.path[len("/v1/trace/"):])
            elif self.path in ("/v1/infer", "/v1/infer_batch"):
                self._reply_error(405, "method_not_allowed",
                                  f"{self.path} requires POST")
            else:
                self._reply_error(404, "not_found",
                                  f"unknown path {self.path!r}")

    def do_POST(self) -> None:   # noqa: N802 — stdlib naming
        self._begin_request()
        with self.frontend._track():
            if self.path not in ("/v1/infer", "/v1/infer_batch"):
                if self.path in ("/healthz", "/v1/stats", "/v1/models",
                                 "/metrics", "/v1/usage") \
                        or self.path.startswith("/v1/trace/"):
                    self.close_connection = True
                    self._reply_error(405, "method_not_allowed",
                                      f"{self.path} requires GET")
                else:
                    self.close_connection = True
                    self._reply_error(404, "not_found",
                                      f"unknown path {self.path!r}")
                return
            body = self._read_body()
            if body is None:
                return
            if self.frontend.draining:
                self._reply_error(503, "shutting_down",
                                  "the server is draining; request refused")
                return
            payload = self._parse_json(body)
            if payload is None:
                return
            try:
                if self.path == "/v1/infer":
                    self._handle_infer(payload)
                else:
                    self._handle_infer_batch(payload)
            except WireFormatError as exc:
                self._reply_error(exc.status, exc.code, str(exc))
            except RequestShed as exc:
                self._reply(503, shed_body(exc))
            except QueueClosed as exc:
                self._reply_error(503, "shutting_down", str(exc))
            except DieFaultDetected as exc:
                # before the RuntimeError arm: DieFaultDetected IS a
                # RuntimeError, and this one deserves its own code —
                # detection fired but the recovery path could not serve
                # the request (e.g. an unguarded engine tripped)
                self._reply_error(503, "die_fault", str(exc))
            except RuntimeError as exc:
                if "shut down" in str(exc):
                    self._reply_error(503, "shutting_down", str(exc))
                else:
                    self._reply_error(500, "internal", str(exc))
            except Exception as exc:   # noqa: BLE001 — the wire must answer
                self._reply_error(500, "internal",
                                  f"{type(exc).__name__}: {exc}")

    # -- endpoints ---------------------------------------------------------
    def _handle_trace(self, trace_id: str) -> None:
        record = self.frontend.server.trace(trace_id)
        if record is None:
            self._reply_error(
                404, "not_found",
                f"no stored trace for id {trace_id!r} (never seen, "
                f"evicted from the ring, or tracing is disabled)")
        else:
            self._reply(200, record)

    def _handle_healthz(self) -> None:
        frontend = self.frontend
        draining = frontend.draining
        body = {
            "status": "draining" if draining else "ok",
            "draining": draining,
            "models": frontend.server.registry.names(),
        }
        # die-pool health summary — additive: existing clients keyed on
        # status/draining/models are untouched, and a degraded pool (some
        # die quarantined or re-programming) stays HTTP 200: the server is
        # alive and serving, just worth an operator's look
        health = getattr(frontend.server, "die_health", None)
        if health is not None:
            body["dies"] = health.counts()
            if not draining and health.degraded:
                body["status"] = "degraded"
        self._reply(503 if draining else 200, body)

    def _handle_infer(self, payload: Dict) -> None:
        server = self.frontend.server
        image, binary = decode_input(payload)
        kwargs = _submit_kwargs(server, payload)
        kwargs["trace_id"] = self._trace_id
        try:
            future = server.submit_async(image, **kwargs)
        except ValueError as exc:
            # image-shape pin mismatch / degenerate image — the one
            # validation submit_async owns that _submit_kwargs cannot
            raise WireFormatError(400, "invalid_input", str(exc))
        result = future.result()
        self._reply(200, result_body(result, binary))

    def _handle_infer_batch(self, payload: Dict) -> None:
        server = self.frontend.server
        has_json, has_b64 = "inputs" in payload, "inputs_b64" in payload
        raw = payload.get("inputs_b64" if has_b64 else "inputs")
        if has_json == has_b64 or not isinstance(raw, list) or not raw:
            raise WireFormatError(
                400, "invalid_request",
                "pass exactly one non-empty list: 'inputs' (nested JSON "
                "arrays) or 'inputs_b64' (base64 .npy strings)")
        binary = has_b64
        images = [decode_array_b64(item) if binary else decode_array_json(item)
                  for item in raw]
        kwargs = _submit_kwargs(server, payload)
        kwargs["trace_id"] = self._trace_id
        futures, submit_error = [], None
        for index, image in enumerate(images):
            try:
                futures.append(server.submit_async(image, **kwargs))
            except (ValueError, RuntimeError) as exc:
                submit_error = (index, exc)
                break
        # never strand what was already enqueued — drain it even when a
        # later item failed to submit
        items: List[Dict] = []
        served = shed = 0
        for future in futures:
            try:
                result = future.result()
                items.append(result_body(result, binary))
                served += 1
            except RequestShed as exc:
                items.append(shed_body(exc))
                shed += 1
        if submit_error is not None:
            index, exc = submit_error
            if isinstance(exc, RuntimeError) and "shut down" in str(exc):
                code, status = "shutting_down", 503
            else:
                code, status = "invalid_input", 400
            self._reply_error(status, code,
                              f"inputs[{index}]: {exc}", index=index)
            return
        status = 200 if shed == 0 else (503 if served == 0 else 207)
        self._reply(status, {"results": items, "completed": served,
                             "shed": shed})


class _Httpd(ThreadingHTTPServer):
    daemon_threads = True
    # handler threads are tracked by HttpFrontend._track, not joined here
    block_on_close = False
    frontend: "HttpFrontend"

    @property
    def owner(self) -> "HttpFrontend":
        # the JsonHttpHandler plumbing hook (shared with the router)
        return self.frontend


class _Tracked:
    """Context manager counting one in-flight request on a frontend."""

    __slots__ = ("frontend",)

    def __init__(self, frontend: "HttpFrontend"):
        self.frontend = frontend

    def __enter__(self) -> "_Tracked":
        with self.frontend._inflight_lock:
            self.frontend._inflight += 1
        return self

    def __exit__(self, *exc_info) -> None:
        with self.frontend._inflight_lock:
            self.frontend._inflight -= 1
            self.frontend._inflight_lock.notify_all()


# ---------------------------------------------------------------------------
class HttpFrontend:
    """The threaded HTTP front end over one :class:`InferenceServer`.

    Parameters
    ----------
    server:
        The inference server to expose.  ``owns_server=True`` hands its
        lifecycle to the front end: :meth:`shutdown` drains it (the CLI
        path).  The default borrows it — the owner keeps submitting
        in-process alongside the wire (the test/benchmark path).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port, readable back
        from :attr:`port` / :attr:`url`.
    max_body_bytes:
        Request-body bound; a longer ``Content-Length`` is refused with
        413 before the body is read.
    retry_after_s:
        ``Retry-After`` hint attached (as a header and as the
        ``"retry_after_s"`` body mirror) to every 503 response —
        shed, ``shutting_down``, ``die_fault`` and the draining
        ``/healthz`` body.  ``None`` disables the hint.
    log:
        Optional callable receiving one access-log line per request
        (default: silent — the demos pass ``print``).

    Use as a context manager (``with HttpFrontend(server) as fe: ...``)
    or call :meth:`start` / :meth:`shutdown` explicitly.
    """

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0, *,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 retry_after_s: Optional[float] = DEFAULT_RETRY_AFTER_S,
                 owns_server: bool = False, log=None):
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if retry_after_s is not None and retry_after_s < 0:
            raise ValueError("retry_after_s must be >= 0 (or None)")
        self.server = server
        self.max_body_bytes = max_body_bytes
        self.retry_after_s = retry_after_s
        self.owns_server = owns_server
        self.log = log
        self._draining = False
        self._inflight = 0
        self._inflight_lock = threading.Condition()
        self._httpd = _Httpd((host, port), _Handler)
        self._httpd.frontend = self
        self._thread: Optional[threading.Thread] = None
        self._shut_down = False

    # -- address -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    # -- in-flight accounting (the drain barrier) ---------------------------
    def _track(self) -> _Tracked:
        return _Tracked(self)

    def _wait_inflight(self, timeout: Optional[float]) -> bool:
        with self._inflight_lock:
            return self._inflight_lock.wait_for(
                lambda: self._inflight == 0, timeout=timeout)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "HttpFrontend":
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="forms-http", daemon=True)
        self._thread.start()
        return self

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Drain and stop.  Idempotent.

        Order matters: (1) flip :attr:`draining` so new ``POST``s are
        refused with 503 ``"shutting_down"``; (2) drain the owned
        inference server, which serves (or sheds, with receipts) every
        already-accepted request — in-flight HTTP handlers blocked on
        futures therefore complete with real responses, never a wedged
        socket; (3) stop the accept loop and wait out remaining handler
        threads.  A borrowed server is left running.
        """
        if self._shut_down:
            return
        self._shut_down = True
        self._draining = True
        if self.owns_server:
            self.server.shutdown(timeout)
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout)
        self._wait_inflight(timeout if timeout is not None else 5.0)
        self._httpd.server_close()

    def __enter__(self) -> "HttpFrontend":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ---------------------------------------------------------------------------
class HttpError(RuntimeError):
    """An error response of the wire protocol, decoded.

    ``status`` is the HTTP status, ``code`` the structured error code
    (one of :data:`ERROR_CODES`), ``payload`` the full ``"error"``
    object — for ``code == "shed"`` it carries the ``receipt``.
    """

    def __init__(self, status: int, payload: Dict):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        code = error.get("code", "internal")
        super().__init__(f"HTTP {status} [{code}]: "
                         f"{error.get('message', payload)}")
        self.status = status
        self.code = code
        self.payload = error

    @property
    def receipt(self) -> Optional[Dict]:
        return self.payload.get("receipt")


class WireResult:
    """A served response, decoded: the wire twin of
    :class:`~repro.serving.stats.ServedResult` (``stats`` is the receipt
    dict rather than a :class:`RequestStats`)."""

    __slots__ = ("output", "stats")

    def __init__(self, output: np.ndarray, stats: Dict):
        self.output = output
        self.stats = stats

    @classmethod
    def from_body(cls, body: Dict) -> "WireResult":
        if "output_b64" in body:
            output = decode_array_b64(body["output_b64"])
        else:
            output = np.asarray(body["output"], dtype=np.float64)
        return cls(output, body.get("stats", {}))


class HttpClient:
    """Minimal std-lib client for the wire protocol.

    One short-lived connection per call — safe to share one client
    across threads (the load generator and the smoke tests do).  Every
    non-2xx response raises :class:`HttpError` carrying the structured
    code, except the per-item errors inside an ``infer_batch`` response,
    which are returned in place.

    Retry policy
    ------------
    With ``retries > 0`` the *idempotent GETs* (``/healthz``,
    ``/v1/stats``, ``/v1/models``, ``/metrics``, ``/v1/usage``,
    ``/v1/trace/<id>``) are retried on connection errors — and, for all
    but ``/healthz``, on HTTP 503 — with capped
    exponential backoff and deterministic seeded jitter
    (``backoff_seed``; two clients built with the same seed sleep the
    same schedule, keeping chaos runs replayable).  ``/healthz`` never
    retries a 503: a draining server answers 503 *with a valid body*,
    which callers must see immediately.  POSTs are never retried — the
    server may have executed a request whose response was lost, and
    re-submitting inference is the caller's policy decision, not the
    transport's.  The default ``retries=0`` keeps the historical
    fail-fast behaviour.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0, *,
                 retries: int = 0, backoff_s: float = 0.05,
                 backoff_cap_s: float = 1.0,
                 backoff_seed: Optional[int] = None):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff_s / backoff_cap_s must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._backoff_rng = np.random.default_rng(backoff_seed)
        self._backoff_lock = threading.Lock()

    @classmethod
    def for_frontend(cls, frontend: HttpFrontend,
                     timeout: float = 60.0, **kwargs) -> "HttpClient":
        return cls(frontend.host, frontend.port, timeout, **kwargs)

    def backoff_delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based): exponential from
        ``backoff_s``, capped at ``backoff_cap_s``, jittered into
        [0.5, 1.5) of the base by the seeded stream."""
        base = min(self.backoff_cap_s, self.backoff_s * (2 ** attempt))
        with self._backoff_lock:
            jitter = 0.5 + self._backoff_rng.random()
        return base * jitter

    # -- plumbing -----------------------------------------------------------
    def request(self, method: str, path: str, body: Optional[Dict] = None,
                extra_headers: Optional[Dict] = None) -> Tuple[int, Dict]:
        """One round trip; returns ``(status, decoded JSON)`` untouched."""
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        try:
            data = (json.dumps(body).encode("utf-8")
                    if body is not None else None)
            headers = {"Content-Type": "application/json",
                       "Connection": "close"}
            if extra_headers:
                headers.update(extra_headers)
            try:
                connection.request(method, path, body=data, headers=headers)
            except (BrokenPipeError, ConnectionResetError):
                # the server refused mid-send (e.g. 413 on an oversized
                # body, answered without reading it) and closed its end;
                # the error response is usually already in our receive
                # buffer — read it instead of surfacing the pipe error.
                # But when http.client already tore the socket down there
                # is nothing to read: surface the connection error (a
                # bare getresponse() would die on the closed socket)
                if connection.sock is None:
                    raise
            response = connection.getresponse()
            raw = response.read()
            return response.status, json.loads(raw.decode("utf-8"))
        finally:
            connection.close()

    def _checked(self, method: str, path: str,
                 body: Optional[Dict] = None,
                 ok: Tuple[int, ...] = (200,),
                 extra_headers: Optional[Dict] = None) -> Tuple[int, Dict]:
        # the positional 3-argument call is kept for unheadered requests:
        # tests (and chaos harnesses) monkey-patch ``request`` with
        # scripted transports speaking exactly that signature
        if extra_headers:
            status, payload = self.request(method, path, body, extra_headers)
        else:
            status, payload = self.request(method, path, body)
        if status not in ok:
            raise HttpError(status, payload)
        return status, payload

    @staticmethod
    def _trace_headers(trace_id: Optional[str]) -> Optional[Dict]:
        return {"X-Request-Id": trace_id} if trace_id is not None else None

    # -- endpoints ----------------------------------------------------------
    def infer(self, image: np.ndarray, *, model: Optional[str] = None,
              priority: Optional[str] = None,
              deadline_ms: Optional[float] = None,
              binary: bool = False,
              trace_id: Optional[str] = None) -> WireResult:
        """``POST /v1/infer``; raises :class:`HttpError` on any failure
        (``code "shed"`` carries the receipt).  ``trace_id`` travels as
        the ``X-Request-Id`` header and comes back in the receipt."""
        body: Dict = {}
        if binary:
            body["input_b64"] = encode_array(np.asarray(image))
        else:
            body["input"] = np.asarray(image).tolist()
        if model is not None:
            body["model"] = model
        if priority is not None:
            body["priority"] = priority
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        _, payload = self._checked("POST", "/v1/infer", body,
                                   extra_headers=self._trace_headers(trace_id))
        return WireResult.from_body(payload)

    def infer_batch(self, images, *, model: Optional[str] = None,
                    priority: Optional[str] = None,
                    deadline_ms: Optional[float] = None,
                    binary: bool = False,
                    trace_id: Optional[str] = None
                    ) -> List[Union[WireResult, HttpError]]:
        """``POST /v1/infer_batch``; per-item results in request order —
        a :class:`WireResult` for served items, an (unraised)
        :class:`HttpError` for shed ones.  Raises on envelope-level
        failures (malformed request, unknown model, all items shed)."""
        body: Dict = {}
        if binary:
            body["inputs_b64"] = [encode_array(np.asarray(image))
                                  for image in images]
        else:
            body["inputs"] = [np.asarray(image).tolist() for image in images]
        if model is not None:
            body["model"] = model
        if priority is not None:
            body["priority"] = priority
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        # 503 with a "results" envelope is the every-item-shed case: the
        # per-item receipts are the payload, so decode rather than raise
        headers = self._trace_headers(trace_id)
        if headers:
            status, payload = self.request("POST", "/v1/infer_batch", body,
                                           headers)
        else:
            status, payload = self.request("POST", "/v1/infer_batch", body)
        if status not in (200, 207, 503) or "results" not in payload:
            raise HttpError(status, payload)
        out: List[Union[WireResult, HttpError]] = []
        for item in payload["results"]:
            if "error" in item:
                out.append(HttpError(503, item))
            else:
                out.append(WireResult.from_body(item))
        return out

    @staticmethod
    def _retry_after(payload) -> Optional[float]:
        """The server's ``Retry-After`` hint, read from the JSON mirror
        (``error.retry_after_s`` — this client decodes bodies, not
        headers); ``None`` when absent or unusable."""
        if not isinstance(payload, dict):
            return None
        error = payload.get("error")
        if not isinstance(error, dict):
            return None
        hint = error.get("retry_after_s")
        if isinstance(hint, (int, float)) and not isinstance(hint, bool) \
                and hint >= 0:
            return float(hint)
        return None

    def _get_retrying(self, path: str,
                      retry_statuses: Tuple[int, ...] = (503,)
                      ) -> Tuple[int, Dict]:
        """GET with the idempotent retry policy (see the class docstring).

        Retries connection-level errors always; HTTP statuses only when
        listed in ``retry_statuses``.  A retried 503 carrying the
        server's ``Retry-After`` hint sleeps that long instead of the
        computed backoff (the server knows its own drain/shed horizon).
        After the last attempt the final outcome — error or response —
        surfaces unchanged.
        """
        for attempt in range(self.retries + 1):
            last_attempt = attempt == self.retries
            server_hint = None
            try:
                status, payload = self.request("GET", path)
            except OSError:
                if last_attempt:
                    raise
            else:
                if status not in retry_statuses or last_attempt:
                    return status, payload
                server_hint = self._retry_after(payload)
            time.sleep(server_hint if server_hint is not None
                       else self.backoff_delay(attempt))
        raise AssertionError("unreachable")   # pragma: no cover

    def stats(self) -> Dict:
        status, payload = self._get_retrying("/v1/stats")
        if status != 200:
            raise HttpError(status, payload)
        return payload

    def models(self) -> Dict:
        status, payload = self._get_retrying("/v1/models")
        if status != 200:
            raise HttpError(status, payload)
        return payload

    def healthz(self) -> Dict:
        """Liveness probe — returns the body for both 200 and 503
        (draining) so operators can poll it during a drain.  Retries
        connection errors only: a 503 here is a *valid* draining body,
        not a transient to paper over."""
        status, payload = self._get_retrying("/healthz", retry_statuses=())
        if status not in (200, 503):
            raise HttpError(status, payload)
        return payload

    # -- observability endpoints -------------------------------------------
    def request_text(self, method: str, path: str) -> Tuple[int, str]:
        """One raw round trip returning the body *undecoded* — the
        ``/metrics`` path, whose 200 body is Prometheus text, not JSON.
        (Separate from :meth:`request` so scripted-transport tests can
        patch the two independently.)"""
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        try:
            connection.request(method, path,
                               headers={"Connection": "close"})
            response = connection.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            connection.close()

    def metrics(self) -> str:
        """``GET /metrics`` — the raw Prometheus text exposition (the one
        non-JSON body of the protocol; parse with
        :func:`repro.obs.parse_prometheus_text`).  Idempotent: retried
        on connection errors and 503 like the other GETs, honoring the
        server's ``Retry-After`` mirror when a 503 body carries one."""
        for attempt in range(self.retries + 1):
            last_attempt = attempt == self.retries
            server_hint = None
            try:
                status, text = self.request_text("GET", "/metrics")
            except OSError:
                if last_attempt:
                    raise
            else:
                if status == 200:
                    return text
                try:
                    payload = json.loads(text)
                except ValueError:
                    payload = {"error": {"code": "internal",
                                         "message": text}}
                if status != 503 or last_attempt:
                    raise HttpError(status, payload)
                server_hint = self._retry_after(payload)
            time.sleep(server_hint if server_hint is not None
                       else self.backoff_delay(attempt))
        raise AssertionError("unreachable")   # pragma: no cover

    def usage(self) -> Dict:
        """``GET /v1/usage`` — the per-(model, class) usage snapshot."""
        status, payload = self._get_retrying("/v1/usage")
        if status != 200:
            raise HttpError(status, payload)
        return payload

    def trace(self, trace_id: str) -> Dict:
        """``GET /v1/trace/<id>`` — one stored trace record; raises
        :class:`HttpError` (``code "not_found"``) once evicted.
        Idempotent: connection errors and 503s are retried; a 404 is a
        definitive answer and surfaces immediately."""
        status, payload = self._get_retrying(f"/v1/trace/{trace_id}")
        if status != 200:
            raise HttpError(status, payload)
        return payload

    # -- the SSE streaming path (async front end only) ---------------------
    def infer_batch_stream(self, images, *, model: Optional[str] = None,
                           priority: Optional[str] = None,
                           deadline_ms: Optional[float] = None,
                           binary: bool = False,
                           trace_id: Optional[str] = None):
        """``POST /v1/infer_batch?stream=1`` against the *async* front
        end: a generator of ``(event, data)`` tuples as the server emits
        them — ``("result", {..., "index": i})`` / ``("shed", {...,
        "index": i})`` per item in resolution order, then one terminal
        ``("done", {"completed": n, "shed": m})``.  Raises
        :class:`HttpError` on envelope-level failures (the server
        answers plain JSON before switching to the event stream)."""
        body: Dict = {}
        if binary:
            body["inputs_b64"] = [encode_array(np.asarray(image))
                                  for image in images]
        else:
            body["inputs"] = [np.asarray(image).tolist() for image in images]
        if model is not None:
            body["model"] = model
        if priority is not None:
            body["priority"] = priority
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json",
                       "Connection": "close"}
            if trace_id is not None:
                headers["X-Request-Id"] = trace_id
            connection.request("POST", "/v1/infer_batch?stream=1",
                               body=json.dumps(body).encode("utf-8"),
                               headers=headers)
            response = connection.getresponse()
            content_type = response.getheader("Content-Type") or ""
            if response.status != 200 \
                    or "text/event-stream" not in content_type:
                raise HttpError(response.status,
                                json.loads(response.read().decode("utf-8")))
            yield from iter_sse_events(response)
        finally:
            connection.close()

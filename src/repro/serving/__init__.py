"""Multi-tenant, SLA-scheduled request serving over the parallel runtime.

The "traffic" layer of the stack, grown from the PR-3 batch server into a
multiplexed one: several in-situ networks share one
:class:`~repro.runtime.WorkerPool` and one :class:`~repro.reram.DieCache`
(:class:`ModelRegistry` — FORMS's programmed dies are the scarce
resource, so identical weight codes across tenants program one die), and
an SLA scheduler replaces the FIFO batcher: requests carry a priority
class and an optional deadline, dispatch is strict class precedence with
earliest-deadline-first inside a class, overdue requests are **shed**
with an explicit receipt (:class:`RequestShed` / :class:`ShedReceipt` —
never a hang, never dispatched), and an :class:`AdmissionController`
throttles intake from the occupancy/queue-depth gauges.

Callers still submit **single images**; every batch dispatches as one
tile per request on the shared pool, so a served request stays
**bit-identical** to a standalone single-image call at any batch
composition, worker count, tenant mix and scheduling outcome (shedding
one class never perturbs survivors), read noise included.

Components
----------
* :class:`ModelRegistry` / :class:`RegisteredModel` — the tenant table:
  register/unregister/warm-up, per-model request shapes, die-reuse stats.
* :class:`SlaPolicy` / :class:`PriorityClass` / :class:`SlaQueue` — the
  scheduling policy and the multi-class queue behind the dispatch loop;
  :meth:`SlaPolicy.fifo` is the degenerate single-class policy the
  classic FIFO server runs on.
* :class:`AdmissionController` — intake throttle on the
  :class:`ServerStats` gauges.
* :class:`InferenceServer` — the facade: ``submit(image, model=...,
  priority=..., deadline_s=...)`` / ``submit_async`` / ``submit_many``,
  graceful draining ``shutdown``, and ``from_model(...)`` lowering a
  float model through :func:`repro.reram.build_insitu_network`.
* :class:`RequestQueue` / :class:`Batcher` — the FIFO queue (retained)
  and the dispatch loop shared by both queue shapes.
* :class:`HttpFrontend` / :class:`HttpClient` — the wire: a std-lib
  threaded HTTP front end exposing ``submit`` as ``POST /v1/infer``
  (plus ``/v1/infer_batch``, ``/v1/models``, ``/v1/stats``,
  ``/healthz``) with structured shed/admission errors and a draining
  shutdown — protocol reference in ``docs/serving.md``.
* :class:`AsyncFrontend` (:mod:`repro.serving.aio`) — the same wire
  protocol on one asyncio event loop: thousands of multiplexed
  connections bridged onto ``submit_async`` via ``run_in_executor``,
  server-sent-event streaming (``POST /v1/infer_batch?stream=1``,
  event types :data:`STREAM_EVENTS`), and connection-count /
  inflight-bytes backpressure through
  :meth:`AdmissionController.admit_transport` — transport refusals are
  :data:`TRANSPORT_SCOPE` shed receipts, accounted like queue sheds.
  The SLA policy's ``weighted_fair`` mode (deficit-round-robin with
  aging over the class ``weight``s) keeps bulk progressing under
  interactive saturation; ``strict`` keeps the historical precedence.
* :class:`ClusterRouter` / :class:`ReplicaDirectory` /
  :class:`ClusterHarness` (:mod:`repro.serving.cluster`) — the sharded
  cluster over N replica front ends: consistent-hash placement,
  health-checked failover and hedging, scatter/gather batches,
  ``cluster_unavailable`` receipts, and the subprocess kill/restart
  chaos harness behind ``python -m repro serve --cluster N``.
* :class:`ServerStats` / :class:`RequestStats` — the operational view
  (p50/p95 latency overall and per class / per model, shed counts by
  reason, queue depth, batch mix, occupancy, fault detections and
  recoveries) and the per-request receipt (queue wait, batch ridden,
  model, class, the exact per-request slice of the shared engines'
  merged ``EngineStats``, and — after a die recovery — the recovery
  receipt).
* :class:`~repro.obs.Observability` (re-exported from :mod:`repro.obs`)
  — the telemetry bundle every server and router carries by default:
  the ``/metrics`` Prometheus exposition, the ``/v1/trace/<id>`` span
  ring, the ``/v1/usage`` per-tenant meter and the opt-in engine
  profiler — all read-only w.r.t. numerics (``docs/observability.md``).
* :class:`DieHealthRegistry` — per-die health states
  (``healthy`` / ``quarantined`` / ``reprogramming``) behind the
  ``/healthz`` die-pool summary; driven by the dispatch path's online
  fault recovery (checksum detection via
  :class:`~repro.reram.faults.DieGuard`, quarantine, re-program through
  the shared die cache, bounded batch retry — ``detect_faults=True`` on
  the server; scripted chaos via
  :class:`~repro.reram.faults.FaultInjector`).  Retry-exhausted batches
  shed with :data:`SHED_FAULT_RECOVERY` receipts.

``benchmarks/bench_serving.py`` records single-tenant open-loop Poisson
curves, ``benchmarks/bench_multitenant.py`` the mixed-class
multi-tenant contention scenario, and ``benchmarks/bench_http.py`` the
same open-loop traffic through the HTTP front end (queue + transport
end to end), all into ``BENCH_engine.json``; ``python -m repro serve``
runs self-checking demos of either shape (``--http`` puts them on a
socket).
"""

from ..obs import Observability
from .aio import STREAM_EVENTS, TRANSPORT_SCOPE, AsyncFrontend
from .cluster import (ClusterHarness, ClusterRouter, ReplicaDirectory,
                      ReplicaProcess, RoutingPolicy)
from .health import (DIE_HEALTHY, DIE_QUARANTINED, DIE_REPROGRAMMING,
                     DieHealthRegistry)
from .http import (DEFAULT_RETRY_AFTER_S, ERROR_CODES, HttpClient, HttpError,
                   HttpFrontend, WireFormatError, WireResult, iter_sse_events,
                   new_trace_id)
from .queue import Batcher, PendingRequest, QueueClosed, RequestQueue
from .registry import ModelRegistry, RegisteredModel
from .scheduler import (SHED_ADMISSION, SHED_DEADLINE, SHED_FAULT_RECOVERY,
                        SHED_LATENCY_BOUND, SLA_MODE_STRICT,
                        SLA_MODE_WEIGHTED_FAIR, SLA_MODES,
                        AdmissionController, PriorityClass, RequestShed,
                        ShedReceipt, SlaPolicy, SlaQueue, SlaRequest)
from .server import DEFAULT_MODEL, InferenceServer
from .stats import RequestStats, ServedResult, ServerStats

__all__ = [
    "AdmissionController", "AsyncFrontend", "Batcher", "ClusterHarness",
    "ClusterRouter",
    "DEFAULT_MODEL", "DEFAULT_RETRY_AFTER_S",
    "DIE_HEALTHY", "DIE_QUARANTINED", "DIE_REPROGRAMMING",
    "DieHealthRegistry", "ERROR_CODES",
    "HttpClient", "HttpError", "HttpFrontend", "InferenceServer",
    "ModelRegistry", "Observability", "PendingRequest", "PriorityClass",
    "QueueClosed",
    "RegisteredModel", "ReplicaDirectory", "ReplicaProcess",
    "RequestQueue", "RequestShed", "RequestStats", "RoutingPolicy",
    "SHED_ADMISSION", "SHED_DEADLINE", "SHED_FAULT_RECOVERY",
    "SHED_LATENCY_BOUND",
    "SLA_MODES", "SLA_MODE_STRICT", "SLA_MODE_WEIGHTED_FAIR",
    "STREAM_EVENTS", "ServedResult",
    "ServerStats", "ShedReceipt", "SlaPolicy", "SlaQueue", "SlaRequest",
    "TRANSPORT_SCOPE", "WireFormatError", "WireResult", "iter_sse_events",
    "new_trace_id",
]

"""Per-tenant usage accounting: the metering substrate of ``/v1/usage``.

Aggregates what a tenant consumed, keyed ``(model, priority class)``:

* ``requests`` — completed requests;
* ``sheds`` — requests refused with a shed receipt (deadline,
  admission, latency bound, fault recovery — any reason);
* ``macs`` — analog multiply-accumulates the tenant's completed
  requests drove through the crossbars, from the per-request
  ``EngineStats`` slice (``conversions x fragment_size``: every ADC
  conversion integrates one fragment's worth of cell currents);
* ``die_seconds`` — service seconds billed per request.  A batch of
  ``k`` riders bills each rider the full batch service time: the dies
  were programmed and driven for all of them, and under-billing shared
  rides would make batching look free to the biller.

Thread-safe; reads return deep copies.  The serving layer records into
one :class:`UsageMeter` per server; the JSON shape of ``snapshot()`` is
the ``GET /v1/usage`` response body documented in
``docs/observability.md``.
"""

from __future__ import annotations

import threading
from typing import Dict

_ZERO = {"requests": 0, "sheds": 0, "macs": 0, "die_seconds": 0.0}


class UsageMeter:
    """Monotone per-(model, class) usage accumulator."""

    def __init__(self):
        self._lock = threading.Lock()
        self._cells: Dict[tuple, Dict] = {}

    def _cell(self, model: str, priority_class: str) -> Dict:
        # caller holds the lock
        key = (str(model), str(priority_class))
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = dict(_ZERO)
        return cell

    def record_request(self, model: str, priority_class: str, *,
                       macs: int = 0, die_seconds: float = 0.0) -> None:
        with self._lock:
            cell = self._cell(model, priority_class)
            cell["requests"] += 1
            cell["macs"] += int(macs)
            cell["die_seconds"] += float(die_seconds)

    def record_shed(self, model: str, priority_class: str) -> None:
        with self._lock:
            self._cell(model, priority_class)["sheds"] += 1

    def snapshot(self) -> Dict:
        """``{"by_model": {model: {class: cell}}, "totals": cell}``."""
        with self._lock:
            cells = {key: dict(cell) for key, cell in self._cells.items()}
        by_model: Dict[str, Dict] = {}
        totals = dict(_ZERO)
        for (model, cls), cell in sorted(cells.items()):
            by_model.setdefault(model, {})[cls] = cell
            for field in totals:
                totals[field] += cell[field]
        return {"by_model": by_model, "totals": totals}

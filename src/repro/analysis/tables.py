"""Plain-text table rendering for experiment output.

Every benchmark prints its table through these helpers so EXPERIMENTS.md and
the bench logs share one format.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _format_cell(value, floatfmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None, floatfmt: str = ".2f") -> str:
    """Render an aligned monospace table.

    ``rows`` may contain strings, ints, floats (formatted with ``floatfmt``),
    booleans, and ``None`` (rendered as ``-``).
    """
    str_rows: List[List[str]] = [[_format_cell(c, floatfmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_kv(title: str, pairs: Iterable[tuple], floatfmt: str = ".3f") -> str:
    """Render a key/value block (used for summary footers)."""
    out = [title, "-" * len(title)]
    for key, value in pairs:
        out.append(f"{key}: {_format_cell(value, floatfmt)}")
    return "\n".join(out)

"""The observability endpoints over a real socket: the wire acceptance.

``GET /metrics`` must emit Prometheus text exposition that the strict
parser accepts (the PR's machine-checked acceptance criterion), with
the right Content-Type; ``GET /v1/usage`` the metering snapshot;
``GET /v1/trace/<id>`` the stored span tree (404 once unknown) — on
both the single front end and the cluster router, whose ``/metrics``
exposes its own routing registry and whose trace ring holds the
router's half of a request's story.
"""

from http.client import HTTPConnection

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.obs import (Observability, PROMETHEUS_CONTENT_TYPE, new_trace_id,
                       parse_prometheus_text)
from repro.serving import (ClusterRouter, HttpClient, HttpError,
                           HttpFrontend, InferenceServer, ModelRegistry,
                           ReplicaDirectory, RoutingPolicy)


def linear_network(scale, shift):
    def network(tensor):
        return Tensor(tensor.data.reshape(tensor.data.shape[0], -1)
                      * scale + shift)
    return network


def make_frontend(obs=None):
    registry = ModelRegistry(workers=2)
    registry.register_network("fast", linear_network(2.0, 1.0))
    registry.register_network("batch", linear_network(-3.0, 0.5))
    server = InferenceServer(registry=registry, max_batch=4,
                             max_wait_s=0.0, obs=obs)
    return HttpFrontend(server, owns_server=True).start()


@pytest.fixture()
def frontend():
    front = make_frontend()
    try:
        yield front
    finally:
        front.shutdown()


class TestMetricsEndpoint:
    def test_scrape_parses_as_prometheus_text(self, frontend):
        """The acceptance test: a real GET /metrics response survives the
        strict exposition parser."""
        client = HttpClient.for_frontend(frontend)
        for i in range(3):
            client.infer(np.ones(4), model="fast")
        families = parse_prometheus_text(client.metrics())
        completed = families["forms_requests_completed_total"]["samples"]
        assert sum(completed.values()) == 3
        assert families["forms_requests_completed_total"]["type"] \
            == "counter"
        assert "forms_queue_depth" in families
        assert "forms_request_latency_seconds" in families

    def test_content_type_and_request_id_headers(self, frontend):
        connection = HTTPConnection(frontend.host, frontend.port, timeout=10)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            body = response.read()
            assert response.status == 200
            assert response.headers["Content-Type"] \
                == PROMETHEUS_CONTENT_TYPE
            assert response.headers["X-Request-Id"]
            parse_prometheus_text(body.decode("utf-8"))
        finally:
            connection.close()

    def test_post_is_rejected(self, frontend):
        client = HttpClient.for_frontend(frontend)
        status, payload = client.request("POST", "/metrics", {})
        assert status == 405

    def test_disabled_metrics_scrape_is_empty(self):
        front = make_frontend(obs=Observability(metrics=False))
        try:
            client = HttpClient.for_frontend(front)
            client.infer(np.ones(4), model="fast")
            assert client.metrics() == ""
            assert parse_prometheus_text(client.metrics()) == {}
        finally:
            front.shutdown()


class TestUsageEndpoint:
    def test_snapshot_schema_over_the_wire(self, frontend):
        client = HttpClient.for_frontend(frontend)
        client.infer(np.ones(4), model="fast")
        client.infer(np.ones(4), model="batch")
        usage = client.usage()
        assert set(usage) == {"by_model", "totals"}
        assert usage["totals"]["requests"] == 2
        for model in ("fast", "batch"):
            (cell,) = usage["by_model"][model].values()
            assert set(cell) == {"requests", "sheds", "macs",
                                 "die_seconds"}
            assert cell["requests"] == 1


class TestTraceEndpoint:
    def test_roundtrip_via_x_request_id(self, frontend):
        client = HttpClient.for_frontend(frontend)
        trace_id = new_trace_id()
        result = client.infer(np.ones(4), model="fast", trace_id=trace_id)
        assert result.stats["trace_id"] == trace_id
        record = client.trace(trace_id)
        assert record["trace_id"] == trace_id
        (root,) = record["spans"]
        assert root["name"] == "request"
        assert [child["name"] for child in root["children"]] \
            == ["queue_wait", "batch"]

    def test_server_minted_id_is_queryable(self, frontend):
        client = HttpClient.for_frontend(frontend)
        result = client.infer(np.ones(4), model="fast")
        assert client.trace(result.stats["trace_id"])["spans"]

    def test_unknown_id_is_404(self, frontend):
        client = HttpClient.for_frontend(frontend)
        with pytest.raises(HttpError) as missing:
            client.trace("never-seen")
        assert missing.value.status == 404
        assert missing.value.code == "not_found"

    def test_tracing_disabled_is_404(self):
        front = make_frontend(obs=Observability(trace_ring=0))
        try:
            client = HttpClient.for_frontend(front)
            result = client.infer(np.ones(4), model="fast")
            with pytest.raises(HttpError) as missing:
                client.trace(result.stats["trace_id"])
            assert missing.value.status == 404
        finally:
            front.shutdown()


# ---------------------------------------------------------------------------
@pytest.fixture()
def cluster():
    frontends = {f"r{i}": make_frontend() for i in range(2)}
    directory = ReplicaDirectory(
        {name: (front.host, front.port)
         for name, front in frontends.items()},
        replication=2, suspect_after=1, down_after=3,
        probe_interval_s=0.05, probe_timeout_s=2.0)
    policy = RoutingPolicy(attempt_timeout_s=10.0, max_attempts=3,
                           backoff_s=1e-3, backoff_cap_s=5e-3)
    router = ClusterRouter(directory, policy=policy,
                           own_directory=False).start()
    try:
        yield router
    finally:
        router.shutdown()
        for front in frontends.values():
            front.shutdown()


class TestRouterObservability:
    def test_router_metrics_parse_and_mirror_the_stats(self, cluster):
        client = HttpClient("127.0.0.1", cluster.port, timeout=15.0)
        for _ in range(2):
            client.infer(np.ones(4), model="fast")
        families = parse_prometheus_text(client.metrics())
        events = families["forms_router_events_total"]["samples"]
        by_event = {dict(labels)["event"]: value
                    for (_, labels), value in events.items()}
        assert by_event["requests"] == cluster.stats.snapshot()["requests"]
        assert by_event["requests"] >= 2
        replicas = families["forms_router_replicas"]["samples"]
        by_state = {dict(labels)["state"]: value
                    for (_, labels), value in replicas.items()}
        assert by_state["up"] == 2

    def test_router_trace_holds_the_routing_half(self, cluster):
        client = HttpClient("127.0.0.1", cluster.port, timeout=15.0)
        trace_id = new_trace_id()
        client.infer(np.ones(4), model="fast", trace_id=trace_id)
        record = client.trace(trace_id)
        assert record["role"] == "router"
        (route,) = record["spans"]
        assert route["name"] == "router.route"
        assert route["attrs"]["outcome"] == "ok"
        attempts = route["children"]
        assert attempts and attempts[-1]["attrs"]["outcome"] == "ok"
        assert attempts[-1]["attrs"]["replica"].startswith("r")

    def test_router_unknown_trace_is_404(self, cluster):
        client = HttpClient("127.0.0.1", cluster.port, timeout=15.0)
        with pytest.raises(HttpError) as missing:
            client.trace("never-seen")
        assert missing.value.status == 404

"""ReRAM cell behavioural model.

The paper uses the VTEAM memristor model [71] in SPICE; architecturally what
matters is that a cell stores one of ``2**cell_bits`` discrete conductance
levels between ``g_min`` (high-resistance state) and ``g_max`` (low-resistance
state), that programming suffers device-to-device variation (modelled as
multiplicative lognormal noise, following [82] and the paper's Table VI
methodology), and that reads accumulate current ``I = V * g`` on a shared
bit line.  This module provides exactly that behavioural surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class DeviceSpec:
    """Electrical parameters of one ReRAM cell.

    Defaults are VTEAM-flavoured: R_on = 100 kOhm, R_off = 10 MOhm (on/off
    ratio 100), 0.3 V read voltage, 2-bit cells (the paper's chosen design
    point — Sec. IV-C explains why 2-bit beats 4/8-bit cells).
    """

    cell_bits: int = 2
    r_on: float = 100e3
    r_off: float = 10e6
    read_voltage: float = 0.3
    write_voltage: float = 2.0   # supplied by the charge pump [72]

    def __post_init__(self):
        if self.cell_bits < 1:
            raise ValueError("cell_bits must be >= 1")
        if self.r_on <= 0 or self.r_off <= self.r_on:
            raise ValueError("need 0 < r_on < r_off")
        if self.read_voltage <= 0:
            raise ValueError("read_voltage must be positive")

    @property
    def levels(self) -> int:
        """Number of programmable conductance states."""
        return 2 ** self.cell_bits

    @property
    def g_min(self) -> float:
        return 1.0 / self.r_off

    @property
    def g_max(self) -> float:
        return 1.0 / self.r_on

    @property
    def g_step(self) -> float:
        """Conductance difference between adjacent levels."""
        return (self.g_max - self.g_min) / (self.levels - 1)

    @property
    def on_off_ratio(self) -> float:
        return self.r_off / self.r_on

    def ideal_conductance(self, codes: np.ndarray) -> np.ndarray:
        """Map integer level codes ``[0, levels)`` to conductances."""
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.levels):
            raise ValueError(f"codes must lie in [0, {self.levels})")
        return self.g_min + codes.astype(np.float64) * self.g_step


class ReRAMDevice:
    """A programmable population of cells with device variation.

    ``variation_sigma`` is the standard deviation of the lognormal
    multiplicative conductance noise (paper Table VI uses mean 0, sigma 0.1 in
    log space).  ``seed`` makes programming reproducible; each call to
    :meth:`program` draws fresh variation (a new die).
    """

    def __init__(self, spec: DeviceSpec = DeviceSpec(),
                 variation_sigma: float = 0.0,
                 seed: Optional[int] = None):
        if variation_sigma < 0:
            raise ValueError("variation_sigma must be non-negative")
        self.spec = spec
        self.variation_sigma = variation_sigma
        self.seed = seed   # kept for die identity (repro.reram.engine.DieCache)
        self._rng = np.random.default_rng(seed)

    def program(self, codes: np.ndarray,
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Program level codes, returning actual (noisy) conductances.

        ``rng`` overrides the device's own stream — used by
        :class:`repro.reram.engine.DieCache` to make a re-programmed die a
        pure function of (device seed, codes) instead of call history.
        """
        ideal = self.spec.ideal_conductance(codes)
        if self.variation_sigma == 0.0:
            return ideal
        noise = (rng or self._rng).lognormal(mean=0.0,
                                             sigma=self.variation_sigma,
                                             size=ideal.shape)
        return ideal * noise

    def variation_factors(self, shape) -> np.ndarray:
        """Draw standalone lognormal variation factors (for effective-weight
        style variation studies that never build conductance arrays)."""
        if self.variation_sigma == 0.0:
            return np.ones(shape)
        return self._rng.lognormal(mean=0.0, sigma=self.variation_sigma, size=shape)

    def read_current(self, conductances: np.ndarray,
                     active: np.ndarray) -> np.ndarray:
        """Bit-line current for a 0/1 activation pattern.

        ``active`` has shape ``(rows,)`` or matches ``conductances`` of shape
        ``(rows, ...)``; the sum runs over the row axis (Kirchhoff's current
        law on the shared column wire).
        """
        active = np.asarray(active)
        if active.ndim == 1:
            weighted = np.tensordot(active, conductances, axes=([0], [0]))
        else:
            weighted = (active * conductances).sum(axis=0)
        return self.spec.read_voltage * weighted


def codes_to_digital(currents: np.ndarray, spec: DeviceSpec,
                     active_count: np.ndarray) -> np.ndarray:
    """Convert bit-line currents back to the digital partial-sum domain.

    The accumulated current is ``V * (sum_active g_min + step * sum codes)``;
    the g_min pedestal is removed digitally using the number of active rows,
    which the input-side logic knows for free (the same 1-counting used by
    ISAAC's offset correction and by the zero-skip NOR tree).  Returns the
    *analog estimate* of ``sum(codes over active rows)`` — quantization to
    ADC levels happens separately in :mod:`repro.reram.converters`.
    """
    pedestal = spec.read_voltage * spec.g_min * active_count
    return (currents - pedestal) / (spec.read_voltage * spec.g_step)

"""Self-contained serving demo: synthetic traffic against a small network.

Backs both ``python -m repro serve`` and ``scripts/serve_demo.py``: drives
the shared Poisson harness (:func:`repro.perf.serving.drive_poisson` —
the same build/serve/verify path ``benchmarks/bench_serving.py`` records
with) and prints per-request receipts plus the server's operational
snapshot.  Every output is checked bit-identical to a direct single-image
serial forward before the summary is printed — the demo doubles as an
end-to-end smoke of the serving contract.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


def run_demo(requests: int = 16, rate_rps: float = 200.0,
             max_batch: int = 4, max_wait_ms: float = 2.0,
             workers: Optional[int] = None, seed: int = 0,
             print_fn: Optional[Callable[[str], None]] = print) -> Dict:
    """Serve ``requests`` Poisson arrivals and return the stats snapshot."""
    from ..perf.serving import drive_poisson

    say = print_fn if print_fn is not None else (lambda line: None)
    say(f"serving {requests} requests at ~{rate_rps:.0f} rps "
        f"(max_batch={max_batch}, max_wait={max_wait_ms:.1f} ms)")
    driven = drive_poisson(rate_rps, requests, max_batch=max_batch,
                           max_wait_ms=max_wait_ms, workers=workers,
                           seed=seed)
    results, snapshot = driven["results"], driven["snapshot"]
    say("bit-identity vs serial single-image forward: OK")

    for served in results[: min(8, len(results))]:
        s = served.stats
        say(f"  request {s.request_id:3d}: batch {s.batch_id} "
            f"(size {s.batch_size}), queue {s.queue_wait_s * 1e3:6.2f} ms, "
            f"latency {s.latency_s * 1e3:6.2f} ms, "
            f"{s.engine_stats['conversions']} conversions")
    if len(results) > 8:
        say(f"  ... {len(results) - 8} more")
    say(f"batches formed: {snapshot['batches_formed']} "
        f"(mean size {snapshot['mean_batch_size']:.2f}), "
        f"p50 latency {snapshot['latency_p50_s'] * 1e3:.2f} ms, "
        f"p95 {snapshot['latency_p95_s'] * 1e3:.2f} ms, "
        f"occupancy {snapshot['occupancy']:.2f}, "
        f"throughput {snapshot['throughput_rps']:.1f} rps")
    return snapshot

"""Opt-in engine profiling: per-tier wall time inside ``matvec_int``.

Arm a :class:`EngineProfiler` on a model's engines and every MVM
dispatch records its wall time into the
``forms_engine_profile_seconds{model,layer,tier}`` histogram and (when
a :class:`~repro.obs.trace.SpanRecorder` is bound on the dispatching
thread) an ``engine`` span — so traces show *which tier served which
layer* and the BENCH story can attribute latency to kernel vs
scheduling vs transport.

The tier label is the engine's *dispatch-level* classification
(:meth:`repro.reram.engine.InSituLayerEngine.dispatch_tier`): the tier
the scheduler selects before size heuristics may still fall back to the
dense executor for tiny fragments.  Profiling is read-only with respect
to numerics — it brackets the dispatch with ``perf_counter()`` and
touches no operand — and it never crosses into process-backend workers
(the ``profile`` attribute is dropped from the engine's pickled state,
like the pool and the guard), so worker-process MVMs are simply
unprofiled rather than differently computed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from .catalog import instrument
from .metrics import MetricsRegistry
from .trace import record_event


class EngineProfiler:
    """Per-(model, layer, tier) MVM wall-time recorder.

    One profiler serves any number of engines; :meth:`arm` tags each
    engine with its model/layer identity and installs the hook.  The
    hot-path cost when armed is two ``perf_counter()`` calls, one dict
    lookup and one histogram observe per MVM; disarmed engines
    (``engine.profile is None``) pay a single attribute read.
    """

    def __init__(self, metrics: MetricsRegistry, *, trace: bool = True):
        self._hist = instrument(metrics, "forms_engine_profile_seconds")
        self._names: Dict[int, tuple] = {}
        self._trace = trace

    def arm(self, engines: Mapping[str, object],
            model: str = "default") -> None:
        for layer, engine in engines.items():
            self._names[id(engine)] = (str(model), str(layer))
            engine.profile = self

    def disarm(self, engines: Iterable[object]) -> None:
        for engine in engines:
            engine.profile = None
            self._names.pop(id(engine), None)

    def record(self, engine, tier: str, duration_s: float) -> None:
        model, layer = self._names.get(id(engine), ("?", "?"))
        self._hist.labels(model, layer, tier).observe(duration_s)
        if self._trace:
            record_event("engine", duration_s, layer=layer, tier=tier)

"""End-to-end observability: metrics, request tracing, usage metering.

The telemetry substrate of the serving stack (PR 9), spanning every
layer — engine tiers, the tile runtime, the SLA server, the HTTP front
end and the cluster router — under one hard rule: **observability is
read-only with respect to numerics**.  Instruments time and count; they
never touch an operand, so the bit-exactness contract survives with
tracing and metrics armed (proven by the backend-equivalence
differential matrix in ``tests/obs/``).

* :mod:`repro.obs.metrics` — lock-cheap :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket histograms with labels), Prometheus
  text exposition (``GET /metrics``), strict parser for the tests;
* :mod:`repro.obs.catalog` — :data:`METRIC_CATALOG`, the declarative
  table of every default-wiring metric (check_docs gates its
  documentation);
* :mod:`repro.obs.trace` — span-tree request tracing keyed on the wire
  ``x-request-id`` (:class:`SpanRecorder`, thread-local :func:`bind`,
  bounded :class:`TraceRing` behind ``GET /v1/trace/<id>``);
* :mod:`repro.obs.usage` — per-(model, class) :class:`UsageMeter`
  (requests, macs, die-seconds, sheds) behind ``GET /v1/usage``;
* :mod:`repro.obs.profile` — opt-in :class:`EngineProfiler`: per-tier
  wall-time histograms inside ``matvec_int`` dispatch;
* :mod:`repro.obs.observability` — the :class:`Observability` bundle a
  server carries (scrape hooks bridge pull gauges to live snapshots).

Operator reference: ``docs/observability.md``.
"""

from .catalog import METRIC_CATALOG, instrument, metric_names
from .metrics import (BATCH_SIZE_BUCKETS, ENGINE_BUCKETS_S,
                      LATENCY_BUCKETS_S, PROMETHEUS_CONTENT_TYPE,
                      MetricsRegistry, parse_prometheus_text)
from .observability import Observability
from .profile import EngineProfiler
from .trace import (SpanRecorder, TraceRing, active_recorder, bind,
                    new_trace_id, record_event, span_dict)
from .usage import UsageMeter

__all__ = [
    "BATCH_SIZE_BUCKETS", "ENGINE_BUCKETS_S", "LATENCY_BUCKETS_S",
    "METRIC_CATALOG", "MetricsRegistry", "Observability",
    "EngineProfiler", "PROMETHEUS_CONTENT_TYPE", "SpanRecorder",
    "TraceRing", "UsageMeter", "active_recorder", "bind", "instrument",
    "metric_names", "new_trace_id", "parse_prometheus_text",
    "record_event", "span_dict",
]

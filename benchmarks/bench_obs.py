#!/usr/bin/env python
"""Observability-overhead benchmark: armed vs disabled instrumentation.

Drives the same open-loop Poisson serving point twice per repetition —
default-armed :class:`repro.obs.Observability` (metrics + tracing +
usage metering) vs :meth:`Observability.disabled` — interleaved, and
records one ``serving_obs_overhead_r*`` record per offered rate into
``BENCH_engine.json`` (kind ``"obs"``, merged: engine, serving, chaos
and cluster records are preserved; schema in ``benchmarks/README.md``).

The headline number is ``overhead_pct``: the min-estimator **mean
dispatch-path service time** (busy seconds per completed request) of
the armed server relative to the disabled one — end-to-end latency
percentiles ride along as context but are queue-dominated and too
noisy to gate on.  The acceptance budget is 5%
(``repro.perf.obs.OBS_OVERHEAD_BUDGET_PCT``); the full run exits
non-zero past it, ``--smoke`` only warns (one noisy CI container
should not fail the build on a timing estimate — the *numeric* checks
stay strict in both modes).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py --smoke       # < 60 s
    PYTHONPATH=src python benchmarks/bench_obs.py               # gated run
    PYTHONPATH=src python benchmarks/bench_obs.py \\
        --rates 100 400 --requests 48 --reps 5 -o /tmp/obs.json

Every repetition of both modes asserts bit-identity against the serial
single-image forward, and the two modes' outputs are compared
byte-for-byte — the instrumentation is proven numerics-invisible before
any timing lands.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf import merge_records_into_file, run_obs_point  # noqa: E402
from repro.perf.obs import OBS_OVERHEAD_BUDGET_PCT             # noqa: E402
from repro.reram import DieCache                               # noqa: E402

#: offered arrival rates (requests/s) per mode — a *saturating* rate on
#: purpose: with every arrival effectively immediate, batch formation is
#: deterministic (all full batches), so the armed and disabled runs do
#: the identical work in the identical batch mix and the service-time
#: comparison measures instrument cost, not batch-amortization jitter
#: (at mid rates the timing-dependent batch mix swings the per-request
#: mean by more than the budget)
SMOKE_RATES = (2000.0,)
FULL_RATES = (2000.0,)


def format_point(record: dict) -> str:
    results, meta = record["results"], record["meta"]
    return (f"{record['name']:26s} offered {results['offered_rate_rps']:6.0f} "
            f"rps: service on {results['service_mean_on_s'] * 1e3:6.2f} ms / "
            f"off {results['service_mean_off_s'] * 1e3:6.2f} ms -> "
            f"overhead {results['overhead_pct']:+6.2f}% "
            f"(p50 on {results['latency_p50_on_s'] * 1e3:.2f} ms; "
            f"budget {meta['budget_pct']:.0f}%, reps {meta['reps']}, "
            f"w={meta['workers']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: one rate point, fewer requests, "
                             "overhead budget warns instead of failing")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="offered arrival rates in requests/s "
                             "(default: one saturating point)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per repetition (default 32 smoke / 96)")
    parser.add_argument("--reps", type=int, default=None,
                        help="interleaved on/off repetitions per rate "
                             "(default 2 smoke / 5)")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-pool size (default: FORMS_WORKERS or "
                             "CPU count)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_engine.json",
                        help="BENCH json to merge records into (default: "
                             "BENCH_engine.json at the repo root)")
    args = parser.parse_args(argv)

    rates = args.rates if args.rates is not None else (
        list(SMOKE_RATES) if args.smoke else list(FULL_RATES))
    requests = args.requests if args.requests is not None else (
        32 if args.smoke else 96)
    reps = args.reps if args.reps is not None else (2 if args.smoke else 5)

    records = []
    over_budget = []
    die_cache = DieCache()   # shared: every rep rebuilds identical engines
    for rate in rates:
        record = run_obs_point(
            rate, requests, reps=reps, max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms, workers=args.workers,
            seed=args.seed, die_cache=die_cache)
        print(format_point(record))
        records.append(record)
        if not record["meta"]["within_budget"]:
            over_budget.append(record["name"])

    try:
        merge_records_into_file(args.output, records)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    print(f"[{len(records)} obs overhead records merged into {args.output}]")
    if over_budget:
        message = (f"overhead past the {OBS_OVERHEAD_BUDGET_PCT:.0f}% "
                   f"budget at: {', '.join(over_budget)}")
        if args.smoke:
            print(f"WARNING (smoke, not gating): {message}")
        else:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Experiment driver tests.

Hardware-only tables (III/IV/V structure) run at full fidelity; training-based
drivers run at a deliberately tiny scale — these tests check plumbing and
qualitative shape, not paper-level numbers (the benchmarks do that at FAST+).
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # Training-based experiment drivers

from repro.analysis import (DATASET_KEEP, FAST, ExperimentScale,
                            compression_rows, eic_experiment, forms_config_for,
                            fps_experiment, fps_stack_configs, table3, table4,
                            table5, table6, train_baseline)
from repro.analysis.experiments import _spread_indices
from repro.arch import PAPER_TABLE5
from repro.core import CrossbarShape

TINY = ExperimentScale(
    name="tiny", train_size=200, test_size=80, baseline_epochs=4,
    width_mult=0.3, depth_scale=0.4, admm_iterations=1, admm_epochs=1,
    retrain_epochs=1, sample_images=2, variation_runs=2,
    crossbar=CrossbarShape(16, 16))


class TestHardwareTables:
    def test_table3_structure(self):
        table = table3(8)
        assert "ADC" in table.rendered
        assert "sign indicator" in table.rendered
        assert len(table.rows) == 7

    def test_table4_chip_totals(self):
        table = table4()
        totals = [r for r in table.rows if r[0] == "chip total"][0]
        assert totals[1] == pytest.approx(66360.8, rel=1e-3)
        assert totals[3] == pytest.approx(65808.08, rel=1e-3)

    def test_table4_extras(self):
        table = table4()
        assert table.extras["forms"]["crossbars"] == 16128


class TestScalePresets:
    def test_fast_admm_config(self):
        admm = FAST.admm()
        assert admm.iterations == FAST.admm_iterations

    def test_scaled_override(self):
        scaled = FAST.scaled(train_size=10)
        assert scaled.train_size == 10
        assert scaled.baseline_epochs == FAST.baseline_epochs

    def test_dataset_keep_ordering(self):
        # pruning aggressiveness mirrors the paper: CIFAR-10 > CIFAR-100 > ImageNet
        assert DATASET_KEEP["cifar10"] < DATASET_KEEP["cifar100"] < DATASET_KEEP["imagenet"]


class TestTrainingDrivers:
    @pytest.fixture(scope="class")
    def baseline(self):
        return train_baseline("lenet5", "mnist", TINY, seed=1)

    def test_train_baseline(self, baseline):
        assert baseline.accuracy > 0.2
        assert baseline.dataset_name == "mnist"

    def test_compression_rows_shape(self, baseline):
        rows = compression_rows(baseline, TINY, fragment_sizes=(4, 8), seed=1)
        assert len(rows) == 2
        for row in rows:
            assert row[3] in (4, 8)
            assert row[5] > 1.0  # crossbar reduction

    def test_forms_config_for_toggles(self):
        config = forms_config_for(TINY, "cifar10", do_prune=False)
        assert not config.do_prune and config.do_polarize

    def test_eic_experiment_shape(self):
        table = eic_experiment("lenet5", "mnist", fragment_sizes=(4, 16),
                               scale=TINY, seed=1)
        assert len(table.rows) == 2
        merged = table.extras["merged_stats"]
        assert merged[4].average <= merged[16].average + 1e-9

    def test_table5_rows_complete(self):
        table = table5(TINY, seed=1)
        names = [row[0] for row in table.rows]
        assert "ISAAC" in names
        assert any("full optimization, 8" in n for n in names)
        assert len(table.rows) == len(PAPER_TABLE5)

    def test_fps_experiment_columns(self):
        table = fps_experiment((("lenet5", "mnist"),), scale=TINY, seed=1)
        assert len(table.headers) == len(fps_stack_configs())  # name + 6 stacks
        speedups = table.extras["speedups"]["lenet5/mnist"]
        assert all(v > 0 for v in speedups.values())

    def test_table6_shape(self):
        table = table6(TINY, seed=1, dataset_names=("mnist",),
                       model_name="lenet5")
        assert len(table.rows) == 1
        assert len(table.rows[0]) == 5  # dataset + 4 variants


class TestHelpers:
    def test_spread_indices(self):
        assert _spread_indices(10, 3) == [0, 4, 9]
        assert _spread_indices(2, 3) == [0, 1]

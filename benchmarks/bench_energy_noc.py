"""Extension — per-inference energy breakdown and NoC traffic.

Not a paper table, but the mechanism behind two of its claims: zero-skipping
"saves dynamic power consumption by feeding fewer input bits" (Sec. IV-B) and
the mesh interconnect carries inter-layer feature maps (Fig. 10).  Reports
the energy split (analog / digital / static / NoC) for ISAAC vs FORMS with
and without zero-skipping on a full-size VGG-16 workload, plus the mesh-link
utilization at the achieved FPS.
"""

import numpy as np

from repro.analysis import FAST, ExperimentTable, train_baseline
from repro.arch import (MeshNoC, analyze_traffic, extract_workload,
                        forms_config, inference_energy, isaac16_config,
                        layer_crossbars, network_performance, place_layers,
                        zero_skip_energy_saving)
from repro.arch.workload import trace_dimensions, transfer_measurements
from repro.nn import build_model, set_init_seed


def run_experiment(seed: int = 0):
    baseline = train_baseline("vgg16", "cifar100", FAST, seed=seed)
    measured = extract_workload(baseline.model, baseline.test_set,
                                fragment_sizes=(4, 8, 16),
                                sample_images=FAST.sample_images)
    set_init_seed(seed + 5)
    full = build_model("vgg16", 100, 3, 32, width_mult=1.0)
    workload = transfer_measurements(
        trace_dimensions(full, 3, 32, network="VGG16"), measured)

    configs = [
        isaac16_config(),
        forms_config(8, pruned=False, zero_skip=False,
                     name="FORMS-8 (no skip)"),
        forms_config(8, pruned=False, zero_skip=True, name="FORMS-8 (skip)"),
    ]
    rows = []
    extras = {}
    for config in configs:
        perf = network_performance(workload, config)
        mesh = MeshNoC.for_tiles(config.chip.tiles)
        demands = {l.name: layer_crossbars(l, config) for l in workload.layers}
        placements = place_layers(workload, mesh, demands,
                                  crossbars_per_tile=config.chip.tile.crossbars)
        traffic = analyze_traffic(workload, mesh, placements)
        energy = inference_energy(workload, config, perf=perf,
                                  noc_energy_j=traffic.energy_j)
        saving = zero_skip_energy_saving(workload, config)
        rows.append([config.name,
                     energy.analog_j * 1e3, energy.digital_j * 1e3,
                     energy.static_j * 1e3, energy.noc_j * 1e3,
                     energy.total_j * 1e3, saving * 100.0,
                     traffic.aggregate_utilization(perf.fps) * 100.0,
                     traffic.max_link_utilization(perf.fps) * 100.0])
        extras[config.name] = {"energy": energy, "saving": saving}
    table = ExperimentTable(
        "Extension: per-inference energy (mJ) and NoC utilization, VGG-16",
        ["config", "analog mJ", "digital mJ", "static mJ", "NoC mJ",
         "total mJ", "zero-skip saving %", "mesh util %", "hotspot util %"],
        rows)
    table.extras.update(extras)
    return table


def test_energy_noc(benchmark, save_table):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_table("extension_energy_noc", result)
    benchmark.extra_info["table"] = result.rendered
    extras = result.extras
    skip = extras["FORMS-8 (skip)"]
    noskip = extras["FORMS-8 (no skip)"]
    assert skip["energy"].analog_j < noskip["energy"].analog_j
    assert skip["saving"] > 0.1
    for row in result.rows:
        # Feasibility bound: the mesh has the raw capacity (balanced load
        # stays well under saturation) ...
        assert row[7] < 100.0, "mesh aggregate capacity must suffice"
        # ... while single-path XY routing concentrates a layer's fan-out on
        # one link (the hotspot a real design stripes across paths); a few x
        # the link bandwidth is expected, runaway values are not.
        assert row[8] < 400.0, "hotspot beyond what striping can absorb"

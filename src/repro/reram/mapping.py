"""Weight-to-crossbar mapping schemes.

The paper contrasts three ways to put *signed* weights onto crossbars whose
in-situ MVM only sums same-sign conductances:

* **FORMS** (``"forms"``): weights are polarized per fragment, so only the
  magnitude bits are stored; a 1R array holds one sign bit per fragment and
  the accumulation block adds or subtracts (Fig. 5).  1x crossbars + tiny
  sign indicator.
* **ISAAC offset** (``"isaac_offset"``): every weight is stored biased by
  ``2**(bits-1)``; the bias contribution — offset times the number of input
  1s — is counted and subtracted digitally.  1x crossbars + offset circuitry,
  and the large stored bias amplifies device variation.
* **PRIME dual** (``"dual"``): positive and negative magnitudes live in two
  separate crossbars whose results are subtracted.  2x crossbars.

All three produce *identical* ideal results (property-tested); they differ
only in cost and noise sensitivity — exactly the paper's argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.fragments import FragmentGeometry
from ..core.quantization import QuantizationSpec
from .bitslice import bit_slice, num_slices

SCHEMES = ("forms", "isaac_offset", "dual")


@dataclass
class MappedLayer:
    """Cell codes (and digital metadata) for one layer under one scheme.

    ``code_planes`` maps plane name -> integer codes shaped
    ``(n_fragments, fragment_size, cols, slices)``; FORMS and ISAAC have one
    plane (``"main"``), the dual scheme has ``"positive"`` and ``"negative"``.
    """

    scheme: str
    geometry: FragmentGeometry
    spec: QuantizationSpec
    code_planes: Dict[str, np.ndarray]
    signs: Optional[np.ndarray] = None     # (n_frag, cols), FORMS only
    offset: int = 0                        # ISAAC bias per weight

    @property
    def crossbar_copies(self) -> int:
        return len(self.code_planes)

    @property
    def slices(self) -> int:
        return next(iter(self.code_planes.values())).shape[-1]


def _stack_levels(levels_matrix: np.ndarray, geometry: FragmentGeometry) -> np.ndarray:
    """Fragment-stack an integer matrix, padding with zeros."""
    return geometry.fragment_stack(levels_matrix).astype(np.int64)


def map_layer(levels_matrix: np.ndarray, geometry: FragmentGeometry,
              spec: QuantizationSpec, scheme: str = "forms",
              signs: Optional[np.ndarray] = None) -> MappedLayer:
    """Produce crossbar cell codes for integer weight ``levels_matrix``.

    ``levels_matrix`` is the policy-ordered 2-D matrix of integer levels in
    ``[-qmax, qmax]`` (shape ``(rows, cols)``).  For the FORMS scheme the
    matrix must be fragment-polarized and ``signs`` must be supplied (or
    inferable): storing magnitudes only is *valid* only because every
    fragment is single-signed.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; options: {SCHEMES}")
    levels_matrix = np.asarray(levels_matrix)
    if not np.issubdtype(levels_matrix.dtype, np.integer):
        raise TypeError("map_layer expects integer weight levels")
    if levels_matrix.shape != (geometry.rows, geometry.cols):
        raise ValueError(f"levels shape {levels_matrix.shape} != "
                         f"({geometry.rows}, {geometry.cols})")
    qmax = spec.qmax
    if np.abs(levels_matrix).max(initial=0) > qmax:
        raise ValueError(f"levels exceed the {spec.weight_bits}-bit range")
    slices = num_slices(spec.weight_bits, spec.cell_bits)
    stack = _stack_levels(levels_matrix, geometry)

    if scheme == "forms":
        if signs is None:
            raise ValueError("FORMS mapping requires fragment signs")
        agree = stack * signs[:, None, :].astype(np.int64) >= 0
        if not agree.all():
            raise ValueError(
                "FORMS mapping requires polarized weights: found fragment "
                "entries whose sign disagrees with the fragment sign")
        magnitudes = np.abs(stack)
        codes = bit_slice(magnitudes, spec.cell_bits, slices)
        return MappedLayer(scheme, geometry, spec, {"main": codes}, signs=signs)

    if scheme == "isaac_offset":
        offset = 2 ** (spec.weight_bits - 1)
        biased = stack + offset
        # Zero-pad fragments must stay at code 0 (no device is programmed),
        # so remove the bias there; their inputs are structurally zero.
        pad_rows = geometry.padded_rows - geometry.rows
        if pad_rows:
            biased[-1, -pad_rows:, :] = 0
        # Biased values lie in [1, 2**bits - 1], which fits the same slice
        # count as FORMS magnitudes (2**bits - 1 < 2**(cell_bits * slices)).
        codes = bit_slice(biased, spec.cell_bits, slices)
        return MappedLayer(scheme, geometry, spec, {"main": codes}, offset=offset)

    # dual (PRIME-style)
    positive = np.where(stack > 0, stack, 0)
    negative = np.where(stack < 0, -stack, 0)
    return MappedLayer(scheme, geometry, spec, {
        "positive": bit_slice(positive, spec.cell_bits, slices),
        "negative": bit_slice(negative, spec.cell_bits, slices),
    })


def infer_signs(levels_matrix: np.ndarray, geometry: FragmentGeometry) -> np.ndarray:
    """Fragment signs inferred from a polarized integer matrix (sum rule)."""
    stack = _stack_levels(levels_matrix, geometry)
    return np.where(stack.sum(axis=1) >= 0, 1.0, -1.0)

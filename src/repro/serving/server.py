"""The batching inference server over the ``repro.runtime`` executor.

:class:`InferenceServer` is the "traffic" front end of the stack: callers
submit *single images*; the server coalesces concurrent submissions into
batches under a latency budget (``max_batch`` / ``max_wait_s``) and
dispatches each batch through :func:`repro.runtime.infer_tiles` on one
shared :class:`~repro.runtime.WorkerPool` — one tile per request, so every
worker chews on a different request of the batch and deep batches pipeline
through different layers concurrently.

Bit-identity guarantee
----------------------
A served result is **bit-identical** to a direct single-image
``run_network_serial`` call on the same image — at any batch composition,
arrival order and worker count.  Three properties of the lower layers make
this structural (see ``repro/runtime/network.py``):

* one tile per request: batching never changes the quantization grid an
  image sees, because the engines are called per image exactly as in the
  serial path;
* worker-count invariance of the tiled executor (ordered merge, no
  cross-tile floating-point accumulation);
* per-job keyed read-noise substreams: a noisy engine draws each job's
  noise from (input digest, plane, bit, fragment), so *which batch* a
  request rode in cannot change its noise.

``tests/serving/`` asserts the guarantee end to end, read noise included.

Per-request stats
-----------------
Each result carries a :class:`~repro.serving.stats.RequestStats`: queue
wait, the batch it rode in, and the exact slice of the shared engines'
:class:`~repro.reram.engine.EngineStats` its tile accounted for (summing
the slices over requests reproduces the engines' merged totals — tested).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..reram import DieCache
from ..runtime import WorkerPool, infer_tiles
from .queue import Batcher, PendingRequest, QueueClosed, RequestQueue
from .stats import RequestStats, ServedResult, ServerStats


class InferenceServer:
    """Batching single-image inference over a shared in-situ network.

    Parameters
    ----------
    model:
        A callable network (typically the in-situ model returned by
        :func:`repro.reram.build_insitu_network`) mapping a
        ``(batch, ...)`` :class:`~repro.nn.tensor.Tensor` to logits.
    max_batch / max_wait_s:
        The coalescing latency budget: a batch dispatches as soon as
        ``max_batch`` requests are waiting, or when the oldest waiting
        request has aged ``max_wait_s``, whichever comes first.
    workers / pool:
        The shared :class:`~repro.runtime.WorkerPool` tiles fan out on.
        A borrowed ``pool`` is left open at shutdown; otherwise the server
        owns a pool of ``workers``.

    Use as a context manager, or call :meth:`shutdown` — in-flight and
    queued requests are drained before the server stops.
    """

    def __init__(self, model, *, max_batch: int = 8,
                 max_wait_s: float = 0.002,
                 workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None):
        self.model = model
        self.queue = RequestQueue()
        self.stats = ServerStats()
        self._ids = itertools.count()
        self._batch_ids = itertools.count()
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else WorkerPool(workers)
        self.engines: Dict = {}          # filled by from_model
        self.die_cache: Optional[DieCache] = None
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        self._image_shape = None     # pinned by the first submission
        self.batcher = Batcher(self.queue, self._dispatch,
                               max_batch=max_batch, max_wait_s=max_wait_s)
        self.batcher.start()

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model, config, device, *, adc=None,
                   activation_bits: int = 16, engine_cls=None,
                   die_cache: Optional[DieCache] = None,
                   max_batch: int = 8, max_wait_s: float = 0.002,
                   workers: Optional[int] = None,
                   pool: Optional[WorkerPool] = None,
                   **engine_kwargs) -> "InferenceServer":
        """Build the in-situ network and serve it.

        Convenience constructor: lowers ``model`` through
        :func:`repro.reram.build_insitu_network` with a shared
        :class:`~repro.reram.DieCache` (created if not given), so a server
        rebuilt across sweep points — or several servers over the same
        weights — reuses programmed dies.  The engines dict and the cache
        are exposed as ``server.engines`` / ``server.die_cache``.
        """
        from ..reram.inference import build_insitu_network
        cache = die_cache if die_cache is not None else DieCache()
        build_kwargs = dict(adc=adc, activation_bits=activation_bits,
                            die_cache=cache, **engine_kwargs)
        if engine_cls is not None:
            build_kwargs["engine_cls"] = engine_cls
        net, engines = build_insitu_network(model, config, device,
                                            **build_kwargs)
        server = cls(net, max_batch=max_batch, max_wait_s=max_wait_s,
                     workers=workers, pool=pool)
        server.engines = engines
        server.die_cache = cache
        return server

    # ------------------------------------------------------------------
    def submit_async(self, image: np.ndarray) -> Future:
        """Enqueue one image; the future resolves to a :class:`ServedResult`."""
        image = np.asarray(image)
        if image.ndim < 1:
            raise ValueError("image must be at least 1-D (no batch axis)")
        with self._shutdown_lock:
            if self._shut_down:
                raise RuntimeError("server is shut down")
            # shape mismatches must be rejected here, at the offending
            # request — discovered at batch stacking they would fail
            # innocent batch mates
            if self._image_shape is None:
                self._image_shape = image.shape
            elif image.shape != self._image_shape:
                raise ValueError(
                    f"image shape {image.shape} does not match this "
                    f"server's request shape {self._image_shape}")
            request = PendingRequest(next(self._ids), image)
            self.queue.put(request)
        return request.future

    def submit(self, image: np.ndarray,
               timeout: Optional[float] = None) -> ServedResult:
        """Serve one image, blocking until its batch completes."""
        return self.submit_async(image).result(timeout)

    def submit_many(self, images: Iterable[np.ndarray],
                    timeout: Optional[float] = None) -> List[ServedResult]:
        """Enqueue every image first, then wait — they may share batches."""
        futures = [self.submit_async(image) for image in images]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------
    def server_stats(self) -> Dict:
        """Operational snapshot (see :meth:`ServerStats.snapshot`)."""
        return self.stats.snapshot(queue_depth=self.queue.depth)

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Drain queued and in-flight requests, then stop.

        New submissions are refused immediately; everything already
        accepted is served.  Idempotent.  The owned worker pool is closed
        once the batcher has drained; if ``timeout`` expires first the
        pool is left open so the background drain can still complete
        (closing it would fail accepted requests with a pool error) — a
        borrowed pool is always left open.
        """
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
            self.queue.close()
        self.batcher.join(timeout)
        if self._owns_pool and not self.batcher.is_alive():
            self.pool.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def _dispatch(self, batch: List[PendingRequest]) -> None:
        """Run one coalesced batch: one tile per request, shared pool."""
        dispatch_t = time.monotonic()
        batch_id = next(self._batch_ids)
        tiles = [slice(i, i + 1) for i in range(len(batch))]
        try:
            stacked = np.stack([request.image for request in batch])
            results = infer_tiles(self.model, stacked, tiles, pool=self.pool,
                                  collect_stats=True)
        except BaseException:
            self.stats.record_failure(len(batch))
            raise  # the batcher fails this batch's futures

        done_t = time.monotonic()
        self.stats.record_batch(len(batch), done_t - dispatch_t)
        for request, (output, engine_stats) in zip(batch, results):
            stats = RequestStats(
                request_id=request.request_id,
                batch_id=batch_id,
                batch_size=len(batch),
                queue_wait_s=dispatch_t - request.enqueue_t,
                service_s=done_t - dispatch_t,
                latency_s=done_t - request.enqueue_t,
                engine_stats=engine_stats.as_dict(),
            )
            self.stats.record_request(stats)
            # a client may have cancelled its future (e.g. a timed-out
            # submit); that must not poison its batch mates
            if not request.future.done():
                try:
                    request.future.set_result(ServedResult(output[0], stats))
                except InvalidStateError:   # cancelled between check and set
                    pass

"""The cross-backend differential matrix: serial == thread == process.

The tentpole proof of the process tier: for every cell of
{serial, thread, process} x workers {1, 2} (workers 4 under ``slow``)
x {ideal, read-noise} x {sparse, dense scheduler}, tiled whole-network
inference produces

* bit-identical outputs, tile by tile,
* identical per-tile ``StatsScope`` aggregates (``collect_stats=True``),
* identical merged per-engine ``EngineStats`` totals,

against the serial workers=1 baseline.  Read noise is the hard cell: it
only passes because :class:`repro.reram.nonideal.ReadNoise` keys its
substreams on (input digest, plane, bit, fragment) — never on thread or
process identity — so the proof covers the determinism contract end to
end, not just the ideal-arithmetic path.
"""

import numpy as np
import pytest

from repro.perf.suite import _post_relu_network
from repro.reram import (ADCSpec, DeviceSpec, DieCache, ReRAMDevice,
                         paper_adc_bits)
from repro.reram.inference import build_insitu_network
from repro.reram.nonideal import ReadNoise
from repro.reram.nonideal_engine import NonidealEngine
from repro.runtime import (WorkerPool, infer_tiles, iter_tiles,
                           shared_memory_available)

pytestmark = pytest.mark.skipif(
    not shared_memory_available()[0],
    reason=f"shared memory unavailable: {shared_memory_available()[1]}")

BACKENDS = ("serial", "thread", "process")
TILE_SIZE = 2


@pytest.fixture(scope="module")
def case():
    model, config, images = _post_relu_network()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    # one die cache across every cell's build: programming is deterministic,
    # so sharing dies is invisible to the bits and saves most of the setup
    return model, config, images, device, adc, DieCache(maxsize=None)


def build(case, *, noise: bool, sparse: bool):
    model, config, images, device, adc, die_cache = case
    kwargs = {}
    if noise:
        spec = DeviceSpec()
        kwargs.update(
            engine_cls=NonidealEngine,
            read_noise=ReadNoise.for_fragment(
                config.fragment_size, spec.g_max, spec.read_voltage,
                relative_sigma=0.05, seed=3))
    net, engines = build_insitu_network(model, config, device, adc=adc,
                                        activation_bits=12,
                                        die_cache=die_cache, **kwargs)
    if not sparse:
        for engine in engines.values():
            engine.sparse_enabled = False
    return net, engines, images


def engine_totals(engines):
    return {name: (e.stats.conversions, e.stats.saturated, e.stats.cycles_fed,
                   e.stats.jobs_scheduled, e.stats.jobs_skipped,
                   e.stats.pairs_scheduled, e.stats.pairs_skipped)
            for name, e in engines.items()}


@pytest.fixture(scope="module")
def pools():
    """Module-scoped pools: pay each backend's spawn cost once."""
    opened = {}
    for backend in BACKENDS:
        for workers in (1, 2, 4):
            opened[backend, workers] = WorkerPool(workers, backend=backend)
    yield opened
    for pool in opened.values():
        pool.close()


@pytest.fixture(scope="module")
def baselines(case):
    """Serial workers=1 ground truth per (noise, sparse) variant."""
    truth = {}
    for noise in (False, True):
        for sparse in (True, False):
            net, engines, images = build(case, noise=noise, sparse=sparse)
            tiles = list(iter_tiles(images.shape[0], TILE_SIZE))
            results = infer_tiles(net, images, tiles, workers=1,
                                  collect_stats=True)
            truth[noise, sparse] = (
                [out for out, _ in results],
                [stats.as_dict() for _, stats in results],
                engine_totals(engines))
    return truth


def assert_cell(case, pools, baselines, backend, workers, noise, sparse):
    want_outs, want_scopes, want_totals = baselines[noise, sparse]
    net, engines, images = build(case, noise=noise, sparse=sparse)
    tiles = list(iter_tiles(images.shape[0], TILE_SIZE))
    results = infer_tiles(net, images, tiles, pool=pools[backend, workers],
                          collect_stats=True)
    label = f"{backend} w{workers} noise={noise} sparse={sparse}"
    assert len(results) == len(want_outs)
    for i, ((out, _), want) in enumerate(zip(results, want_outs)):
        np.testing.assert_array_equal(out, want,
                                      err_msg=f"{label}: tile {i} diverged")
    assert [stats.as_dict() for _, stats in results] == want_scopes, \
        f"{label}: per-tile stats scopes diverged"
    assert engine_totals(engines) == want_totals, \
        f"{label}: merged engine stats diverged"


@pytest.mark.parametrize("sparse", (True, False), ids=("sparse", "dense"))
@pytest.mark.parametrize("noise", (False, True), ids=("ideal", "noise"))
@pytest.mark.parametrize("workers", (1, 2))
@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matrix(case, pools, baselines, backend, workers, noise,
                        sparse):
    assert_cell(case, pools, baselines, backend, workers, noise, sparse)


@pytest.mark.slow
@pytest.mark.parametrize("sparse", (True, False), ids=("sparse", "dense"))
@pytest.mark.parametrize("noise", (False, True), ids=("ideal", "noise"))
@pytest.mark.parametrize("backend", ("thread", "process"))
def test_backend_matrix_w4(case, pools, baselines, backend, noise, sparse):
    assert_cell(case, pools, baselines, backend, 4, noise, sparse)


def test_explicit_backend_argument_owns_a_pool(case, baselines):
    """``infer_tiles(..., workers=2, backend="process")`` without a pool."""
    want_outs, _, _ = baselines[False, True]
    net, _, images = build(case, noise=False, sparse=True)
    tiles = list(iter_tiles(images.shape[0], TILE_SIZE))
    outs = infer_tiles(net, images, tiles, workers=2, backend="process")
    for out, want in zip(outs, want_outs):
        np.testing.assert_array_equal(out, want)

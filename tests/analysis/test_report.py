"""Report generator tests (fast artifacts only)."""

import pytest

pytestmark = pytest.mark.slow  # Report generation drives real experiment artifacts

from repro.analysis.report import (DEFAULT_ARTIFACTS, ReportSection,
                                   generate_report, write_report)
from repro.cli import run

FAST_ARTIFACTS = ("table3", "table4", "dse", "irdrop")


class TestGenerate:
    def test_contains_every_requested_section(self):
        report = generate_report(FAST_ARTIFACTS)
        for name in FAST_ARTIFACTS:
            assert f"## {name}" in report

    def test_header_and_footer(self):
        report = generate_report(("table3",))
        assert report.startswith("# FORMS reproduction")
        assert "1 artifacts regenerated" in report

    def test_tables_fenced(self):
        report = generate_report(("table3",))
        assert report.count("```") == 2

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ValueError):
            generate_report(("table99",))

    def test_default_artifacts_are_registered(self):
        from repro.cli import EXPERIMENTS
        for name in DEFAULT_ARTIFACTS:
            assert name in EXPERIMENTS


class TestWrite:
    def test_writes_file(self, tmp_path):
        path = write_report(tmp_path / "sub" / "report.md",
                            artifacts=("table3",))
        assert path.exists()
        assert "# FORMS reproduction" in path.read_text()


class TestCLIReport:
    def test_report_command(self, capsys, tmp_path):
        # 'report' regenerates the default fast set; table5 included.
        assert run(["report", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "# FORMS reproduction" in out
        assert (tmp_path / "report.md").exists()

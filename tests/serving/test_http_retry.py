"""``HttpClient`` retry policy: idempotent GETs only, deterministic.

The contract: with ``retries > 0`` the idempotent GETs — ``/v1/stats``,
``/v1/models``, ``/healthz``, ``/metrics``, ``/v1/usage`` and
``/v1/trace/<id>`` — retry connection errors (and, for all but
``healthz``, HTTP 503) with capped exponential backoff and seeded
jitter — same seed, same sleep schedule.  ``healthz`` never retries a
503 (a draining body must surface immediately), a trace 404 is a
definitive answer (evicted ≠ transient), POSTs are never retried, and
the default ``retries=0`` keeps the historical fail-fast behaviour byte
for byte.
"""

import numpy as np
import pytest

from repro.perf.suite import _post_relu_network
from repro.reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
from repro.serving import (HttpClient, HttpError, HttpFrontend,
                           InferenceServer)

STATS_BODY = {"queue_depth": 0}
DRAIN_BODY = {"status": "draining", "error": {"code": "draining"}}


def make_client(**kwargs):
    kwargs.setdefault("backoff_s", 1e-4)   # keep real sleeps negligible
    return HttpClient("localhost", 1, **kwargs)


class ScriptedTransport:
    """Stands in for ``HttpClient.request``: plays back a scripted
    sequence of ``(status, payload)`` responses or exception instances,
    recording every call."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def __call__(self, method, path, body=None):
        self.calls.append((method, path))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def scripted(client, *outcomes):
    transport = ScriptedTransport(outcomes)
    client.request = transport
    return transport


class TestConnectionErrorRetry:
    def test_stats_retries_connection_errors_then_succeeds(self):
        client = make_client(retries=2)
        transport = scripted(client, ConnectionResetError(),
                             ConnectionRefusedError(), (200, STATS_BODY))
        assert client.stats() == STATS_BODY
        assert transport.calls == [("GET", "/v1/stats")] * 3

    def test_models_and_healthz_also_retry_connection_errors(self):
        for call, path in ((lambda c: c.models(), "/v1/models"),
                           (lambda c: c.healthz(), "/healthz")):
            client = make_client(retries=1)
            transport = scripted(client, ConnectionResetError(),
                                 (200, STATS_BODY))
            assert call(client) == STATS_BODY
            assert transport.calls == [("GET", path)] * 2

    def test_exhausted_budget_raises_the_last_error(self):
        client = make_client(retries=2)
        transport = scripted(client, ConnectionResetError(),
                             ConnectionResetError(), ConnectionResetError())
        with pytest.raises(OSError):
            client.stats()
        assert len(transport.calls) == 3

    def test_default_zero_retries_fails_fast(self):
        client = make_client()
        transport = scripted(client, ConnectionResetError())
        with pytest.raises(OSError):
            client.stats()
        assert len(transport.calls) == 1


class TestStatusRetry:
    def test_stats_retries_503_then_returns_recovered_body(self):
        client = make_client(retries=2)
        transport = scripted(client, (503, DRAIN_BODY), (200, STATS_BODY))
        assert client.stats() == STATS_BODY
        assert len(transport.calls) == 2

    def test_stats_503_surfaces_after_budget(self):
        client = make_client(retries=1)
        scripted(client, (503, DRAIN_BODY), (503, DRAIN_BODY))
        with pytest.raises(HttpError) as info:
            client.stats()
        assert info.value.status == 503

    def test_healthz_never_retries_503(self):
        """A draining server answers 503 *with a valid body* — callers
        must see it on the first round trip, not after a backoff."""
        client = make_client(retries=3)
        transport = scripted(client, (503, DRAIN_BODY))
        assert client.healthz() == DRAIN_BODY
        assert len(transport.calls) == 1

    def test_non_retryable_status_surfaces_immediately(self):
        client = make_client(retries=3)
        transport = scripted(client, (404, {"error": {"code": "not_found"}}))
        with pytest.raises(HttpError) as info:
            client.stats()
        assert info.value.status == 404
        assert len(transport.calls) == 1


class ScriptedTextTransport:
    """Stands in for ``HttpClient.request_text`` (the raw-text sibling
    the ``/metrics`` exposition travels on): plays back scripted
    ``(status, text)`` responses or exceptions."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def __call__(self, method, path):
        self.calls.append((method, path))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def scripted_text(client, *outcomes):
    transport = ScriptedTextTransport(outcomes)
    client.request_text = transport
    return transport


EXPOSITION = "# TYPE forms_requests_total counter\n"
USAGE_BODY = {"totals": {"requests": 3, "sheds": 0}}
TRACE_BODY = {"trace_id": "req-1", "spans": [{"name": "request"}]}
DRAIN_503 = (503, {"error": {"code": "shutting_down"}})


class TestObservabilityGetsRetry:
    """The allowlist extension: /metrics, /v1/usage and /v1/trace/<id>
    are idempotent reads and retry exactly like /v1/stats."""

    def test_usage_retries_connection_errors_then_succeeds(self):
        client = make_client(retries=2)
        transport = scripted(client, ConnectionResetError(),
                             (200, USAGE_BODY))
        assert client.usage() == USAGE_BODY
        assert transport.calls == [("GET", "/v1/usage")] * 2

    def test_usage_retries_503_then_returns_recovered_body(self):
        client = make_client(retries=2)
        transport = scripted(client, DRAIN_503, (200, USAGE_BODY))
        assert client.usage() == USAGE_BODY
        assert len(transport.calls) == 2

    def test_trace_retries_connection_and_503(self):
        client = make_client(retries=3)
        transport = scripted(client, ConnectionResetError(), DRAIN_503,
                             (200, TRACE_BODY))
        assert client.trace("req-1") == TRACE_BODY
        assert transport.calls == [("GET", "/v1/trace/req-1")] * 3

    def test_trace_404_is_definitive_no_retry(self):
        """An evicted trace is an answer, not a transient: surface the
        404 on the first round trip."""
        client = make_client(retries=3)
        transport = scripted(client,
                             (404, {"error": {"code": "not_found"}}))
        with pytest.raises(HttpError) as info:
            client.trace("req-gone")
        assert info.value.status == 404
        assert len(transport.calls) == 1

    def test_metrics_retries_connection_errors_then_succeeds(self):
        client = make_client(retries=2)
        transport = scripted_text(client, ConnectionResetError(),
                                  (200, EXPOSITION))
        assert client.metrics() == EXPOSITION
        assert transport.calls == [("GET", "/metrics")] * 2

    def test_metrics_retries_503_honoring_the_server_hint(self,
                                                          monkeypatch):
        client = make_client(retries=2)
        hinted = (503, '{"error": {"code": "shutting_down", '
                       '"retry_after_s": 0.05}}')
        scripted_text(client, hinted, (200, EXPOSITION))
        sleeps = []
        from repro.serving import http as http_module
        monkeypatch.setattr(http_module.time, "sleep", sleeps.append)
        assert client.metrics() == EXPOSITION
        assert sleeps == [0.05]

    def test_metrics_exhausted_503_raises(self):
        client = make_client(retries=1)
        text_503 = (503, '{"error": {"code": "shutting_down"}}')
        transport = scripted_text(client, text_503, text_503)
        with pytest.raises(HttpError) as info:
            client.metrics()
        assert info.value.status == 503
        assert len(transport.calls) == 2

    def test_metrics_non_json_error_text_is_wrapped(self):
        client = make_client(retries=0)
        scripted_text(client, (500, "exposition exploded"))
        with pytest.raises(HttpError) as info:
            client.metrics()
        assert info.value.status == 500
        assert "exposition exploded" in str(info.value)

    def test_metrics_zero_retries_fails_fast(self):
        client = make_client()
        transport = scripted_text(client, ConnectionResetError())
        with pytest.raises(OSError):
            client.metrics()
        assert len(transport.calls) == 1


class TestPostsNeverRetried:
    def test_infer_fails_fast_even_with_retries(self, ):
        client = make_client(retries=5)
        transport = scripted(client, ConnectionResetError())
        with pytest.raises(OSError):
            client.infer(np.zeros((1, 4, 4), dtype=np.int64))
        assert len(transport.calls) == 1
        assert transport.calls[0][0] == "POST"


class TestBackoffSchedule:
    def test_exponential_capped_and_jittered(self):
        client = HttpClient("localhost", 1, retries=8, backoff_s=0.05,
                            backoff_cap_s=0.4, backoff_seed=0)
        delays = [client.backoff_delay(attempt) for attempt in range(8)]
        for attempt, delay in enumerate(delays):
            base = min(0.4, 0.05 * 2 ** attempt)
            assert 0.5 * base <= delay < 1.5 * base
        assert max(delays) < 0.4 * 1.5   # the cap holds under max jitter

    def test_same_seed_same_schedule(self):
        a = [make_client(backoff_seed=42).backoff_delay(i) for i in range(6)]
        b = [make_client(backoff_seed=42).backoff_delay(i) for i in range(6)]
        assert a == b

    def test_different_seeds_diverge(self):
        a = [make_client(backoff_seed=1).backoff_delay(i) for i in range(6)]
        b = [make_client(backoff_seed=2).backoff_delay(i) for i in range(6)]
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            HttpClient("localhost", 1, retries=-1)
        with pytest.raises(ValueError):
            HttpClient("localhost", 1, backoff_s=-0.1)
        with pytest.raises(ValueError):
            HttpClient("localhost", 1, backoff_cap_s=-1.0)


class TestAgainstRealFrontend:
    def test_retrying_client_behaves_normally_on_a_healthy_server(self):
        """retries > 0 is purely additive: stats / models / healthz and
        inference against a live front end look exactly like retries=0."""
        model, config, images = _post_relu_network()
        device = ReRAMDevice(DeviceSpec(), 0.0)
        adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
        server = InferenceServer.from_model(model, config, device, adc=adc,
                                            activation_bits=12)
        with server:
            with HttpFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend, retries=2,
                                                 backoff_s=0.001,
                                                 backoff_seed=7)
                assert client.healthz()["status"] == "ok"
                assert client.stats()["requests_completed"] == 0
                baseline = server.submit(images[0])
                wire = client.infer(images[0])
                np.testing.assert_array_equal(wire.output, baseline.output)
                host, port = frontend.host, frontend.port
        # the frontend is gone: connection errors are retried, then raised
        dead = HttpClient(host, port, timeout=5.0, retries=2,
                          backoff_s=0.001)
        with pytest.raises(OSError):
            dead.stats()

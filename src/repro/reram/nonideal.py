"""Crossbar non-idealities: IR drop, stuck-at faults, read noise.

The paper argues (Sec. I, II-C, IV-B) that fine-grained sub-arrays are "less
susceptible to non-idealities and noise than coarse-grained architectures".
This module makes that claim quantitative:

* **IR drop** — the word/bit lines have finite wire resistance, so cells far
  from the driver/sense amplifier see an attenuated voltage and the column
  current under-reports the ideal dot product.  Two solvers: an exact sparse
  nodal analysis of the resistive network (:func:`solve_ir_drop`) and a fast
  first-order estimate (:func:`first_order_currents`), validated against
  each other.

  A subtlety worth stating (it is asserted in the tests): in a *purely
  linear* network with inactive rows grounded, superposition makes the sum
  of per-fragment reads exactly equal to one all-rows read — granularity
  alone changes nothing.  The fine-grained advantage appears through the
  cell's *nonlinear I-V curve* (:class:`CellIV`): cells are calibrated at
  the nominal read voltage, and the conductance error grows superlinearly
  as IR drop pushes the operating point away from it.  Activating only a
  fragment (4-16 rows, FORMS) keeps wire currents, hence voltage droop,
  hence the nonlinear calibration error, far smaller than activating all
  128 rows at once (ISAAC).
* **Stuck-at faults** — fabrication defects freeze a cell at its lowest
  (SA0) or highest (SA1) conductance regardless of programming; modelled by
  :class:`FaultModel` and consumed by :mod:`repro.core.fault_tolerance`.
* **Read noise** — thermal/shot noise on the sensed current, modelled as
  additive Gaussian noise relative to the full-scale fragment current.

``ir_drop_study`` packages the headline experiment: relative MVM error as a
function of rows active per conversion (``bench_ablation_nonideality``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import splu


# ---------------------------------------------------------------------------
# Wire model and exact nodal solver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WireModel:
    """Parasitic resistances of the crossbar wiring.

    ``r_wire_ohm`` is the resistance of one wire segment between adjacent
    cells (typical 1-5 Ohm for a 128-wide array at 32 nm); ``r_driver_ohm``
    and ``r_sense_ohm`` are the source/sink access resistances.
    """

    r_wire_ohm: float = 2.5
    r_driver_ohm: float = 1.0
    r_sense_ohm: float = 1.0

    def __post_init__(self):
        if self.r_wire_ohm < 0:
            raise ValueError("r_wire_ohm must be non-negative")
        if self.r_driver_ohm <= 0 or self.r_sense_ohm <= 0:
            raise ValueError("driver and sense resistances must be positive")


@dataclass(frozen=True)
class CellIV:
    """Nonlinear cell I-V curve, calibrated at the nominal read voltage.

    Real ReRAM cells conduct superlinearly in voltage (trap-assisted
    tunnelling gives a roughly sinh-shaped I-V [61]); programming calibrates
    the *chord* conductance at the nominal read voltage, so

        I(dv) = g * v_read * sinh(k * dv / v_read) / sinh(k)

    which satisfies ``I(v_read) = g * v_read`` exactly and loses current
    superlinearly as IR drop pulls ``dv`` below ``v_read``.  ``nonlinearity``
    (k) of 0 recovers the linear cell; 2-3 is typical for HfOx ReRAM.

    ``table_points > 0`` evaluates the sinh through a precomputed uniform
    interpolation table over ``|dv| <= table_range * v_read`` instead of the
    transcendental — the hot-loop form of the analog engine tier.  The
    interpolation error is orders of magnitude below the ADC's rounding
    threshold (asserted against the closed form in the tests), and voltages
    outside the tabulated range fall back to the closed form, so the table
    is an accuracy-neutral speed knob.
    """

    nonlinearity: float = 2.0
    v_read: float = 0.3
    table_points: int = 0
    table_range: float = 1.5

    def __post_init__(self):
        if self.nonlinearity < 0:
            raise ValueError("nonlinearity must be non-negative")
        if self.v_read <= 0:
            raise ValueError("v_read must be positive")
        if self.table_points < 0:
            raise ValueError("table_points must be non-negative")
        if self.table_points and self.table_points < 2:
            raise ValueError("a usable table needs at least 2 points")
        if self.table_range <= 0:
            raise ValueError("table_range must be positive")

    @property
    def is_linear(self) -> bool:
        return self.nonlinearity == 0.0

    def tabulated(self, points: int = 8193) -> "CellIV":
        """Copy of this curve with the sinh lookup table enabled."""
        from dataclasses import replace
        return replace(self, table_points=points)

    def _table(self):
        """Cached ``(inv_step, values)`` of sinh(k u)/sinh(k), u in +-range."""
        cached = getattr(self, "_table_cache", None)
        if cached is None:
            k = self.nonlinearity
            u = np.linspace(-self.table_range, self.table_range,
                            self.table_points)
            values = np.sinh(k * u) / np.sinh(k)
            inv_step = (self.table_points - 1) / (2.0 * self.table_range)
            cached = (inv_step, values)
            object.__setattr__(self, "_table_cache", cached)  # frozen class
        return cached

    def _sinh_ratio(self, u: np.ndarray) -> np.ndarray:
        """sinh(k u)/sinh(k) — tabulated linear interpolation when enabled."""
        k = self.nonlinearity
        if not self.table_points:
            return np.sinh(k * u) / np.sinh(k)
        inv_step, values = self._table()
        pos = (u + self.table_range) * inv_step
        idx = np.clip(np.floor(pos), 0, self.table_points - 2).astype(np.intp)
        frac = pos - idx
        lo = values[idx]
        interp = lo + (values[idx + 1] - lo) * frac
        outside = np.abs(u) > self.table_range
        if np.any(outside):
            interp = np.where(outside, np.sinh(k * u) / np.sinh(k), interp)
        return interp

    def current(self, g: np.ndarray, dv: np.ndarray) -> np.ndarray:
        """Cell current at chord conductance ``g`` and applied voltage ``dv``."""
        g = np.asarray(g, dtype=np.float64)
        dv = np.asarray(dv, dtype=np.float64)
        if self.is_linear:
            return g * dv
        return g * self.v_read * self._sinh_ratio(dv / self.v_read)

    def effective_conductance(self, g: np.ndarray, dv: np.ndarray) -> np.ndarray:
        """Secant conductance ``I(dv)/dv`` with a finite ``dv -> 0`` limit."""
        g = np.asarray(g, dtype=np.float64)
        dv = np.asarray(dv, dtype=np.float64)
        if self.is_linear:
            return np.broadcast_to(g, np.broadcast(g, dv).shape).copy()
        k = self.nonlinearity
        limit = g * k / np.sinh(k)
        with np.errstate(invalid="ignore", divide="ignore"):
            secant = self.current(g, dv) / dv
        return np.where(np.abs(dv) < 1e-12 * self.v_read, limit, secant)


#: a linear cell (superposition holds exactly; see the module docstring)
LINEAR_CELL = CellIV(nonlinearity=0.0)


def ideal_currents(conductance: np.ndarray, v_in: np.ndarray) -> np.ndarray:
    """Parasitic-free column currents ``I_j = sum_i v_i g_ij``.

    ``v_in`` is ``(rows,)`` or ``(rows, batch)``; returns ``(cols,)`` or
    ``(cols, batch)``.
    """
    conductance = np.asarray(conductance, dtype=np.float64)
    v_in = np.asarray(v_in, dtype=np.float64)
    return np.tensordot(conductance, v_in, axes=([0], [0]))


class _CrossbarNetwork:
    """Reusable nodal-analysis scaffolding for one crossbar geometry.

    The wire/driver/sense stamps are constant across nonlinear iterations;
    only the 2RC cell stamps change, so they are kept separate and the
    matrix is re-assembled cheaply per iteration.
    """

    def __init__(self, rows: int, cols: int, wire: WireModel):
        self.rows, self.cols, self.wire = rows, cols, wire
        n = 2 * rows * cols
        self.n_nodes = n
        g_wire = 1.0 / wire.r_wire_ohm
        g_drv = 1.0 / wire.r_driver_ohm
        self.g_sns = 1.0 / wire.r_sense_ohm
        self.g_drv = g_drv

        ii, jj = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
        self.rnodes = (ii * cols + jj).ravel()
        self.cnodes = (rows * cols + ii * cols + jj).ravel()
        self.foot = rows * cols + (rows - 1) * cols + np.arange(cols)
        self.heads = np.arange(rows) * cols

        rows_idx: List[np.ndarray] = []
        cols_idx: List[np.ndarray] = []
        data: List[np.ndarray] = []

        def stamp_pairs(a: np.ndarray, b: np.ndarray, g: float) -> None:
            rows_idx.extend((a, b, a, b))
            cols_idx.extend((b, a, a, b))
            data.extend((np.full(a.shape, -g), np.full(a.shape, -g),
                         np.full(a.shape, g), np.full(a.shape, g)))

        horiz_a = (ii[:, :-1] * cols + jj[:, :-1]).ravel()
        stamp_pairs(horiz_a, horiz_a + 1, g_wire)
        vert_a = (rows * cols + ii[:-1, :] * cols + jj[:-1, :]).ravel()
        stamp_pairs(vert_a, vert_a + cols, g_wire)
        rows_idx.append(self.heads)
        cols_idx.append(self.heads)
        data.append(np.full(rows, g_drv))
        rows_idx.append(self.foot)
        cols_idx.append(self.foot)
        data.append(np.full(cols, self.g_sns))

        self._wire_rows = np.concatenate(rows_idx)
        self._wire_cols = np.concatenate(cols_idx)
        self._wire_data = np.concatenate(data)

    def solve(self, g_cells: np.ndarray, v_mat: np.ndarray) -> np.ndarray:
        """Node voltages for per-cell conductances and driver voltages."""
        flat = g_cells.ravel()
        rows_idx = np.concatenate([self._wire_rows, self.rnodes, self.cnodes,
                                   self.rnodes, self.cnodes])
        cols_idx = np.concatenate([self._wire_cols, self.cnodes, self.rnodes,
                                   self.rnodes, self.cnodes])
        data = np.concatenate([self._wire_data, -flat, -flat, flat, flat])
        matrix = coo_matrix((data, (rows_idx, cols_idx)),
                            shape=(self.n_nodes, self.n_nodes)).tocsc()
        b = np.zeros((self.n_nodes, v_mat.shape[1]))
        b[self.heads] = self.g_drv * v_mat
        return splu(matrix).solve(b)

    def cell_voltages(self, x: np.ndarray) -> np.ndarray:
        """Per-cell voltage drop (rows, cols, batch) from node voltages."""
        dv = x[self.rnodes] - x[self.cnodes]
        return dv.reshape(self.rows, self.cols, -1)

    def foot_currents(self, x: np.ndarray) -> np.ndarray:
        return x[self.foot] * self.g_sns


def solve_ir_drop(conductance: np.ndarray, v_in: np.ndarray,
                  wire: WireModel = WireModel(),
                  cell_iv: Optional[CellIV] = None,
                  max_iterations: int = 40, tolerance: float = 1e-10) -> np.ndarray:
    """Exact column currents of a crossbar with wire parasitics.

    Nodal analysis of the full resistive network: every cell (i, j) is a
    conductance between word-line node (i, j) and bit-line node (i, j);
    adjacent nodes on the same wire are linked by ``1/r_wire``; row drivers
    connect at column 0 through ``1/r_driver``; sense amplifiers (virtual
    ground) connect at the bottom row through ``1/r_sense``.

    With a nonlinear ``cell_iv``, the network is solved by secant fixed-point
    iteration: each pass replaces every cell by its secant conductance
    ``I(dv)/dv`` at the previous pass's operating point and re-solves, until
    the sensed currents converge to ``tolerance`` (relative).

    ``v_in`` has shape ``(rows,)`` or ``(rows, batch)``; returns ``(cols,)``
    or ``(cols, batch)`` currents flowing into the sense amplifiers.
    """
    conductance = np.asarray(conductance, dtype=np.float64)
    if conductance.ndim != 2:
        raise ValueError("conductance must be 2-D (rows, cols)")
    rows, cols = conductance.shape
    v_in = np.asarray(v_in, dtype=np.float64)
    squeeze = v_in.ndim == 1
    v_mat = v_in.reshape(rows, -1)
    if v_mat.shape[0] != rows:
        raise ValueError(f"v_in rows {v_mat.shape[0]} != crossbar rows {rows}")

    if wire.r_wire_ohm == 0.0 and (cell_iv is None or cell_iv.is_linear):
        # Degenerate: no wire resistance and linear cells — analytically ideal
        # up to the (negligible by construction) access resistances.
        out = ideal_currents(conductance, v_mat)
        return out[:, 0] if squeeze else out

    network = _CrossbarNetwork(rows, cols, wire if wire.r_wire_ohm > 0
                               else WireModel(r_wire_ohm=1e-9,
                                              r_driver_ohm=wire.r_driver_ohm,
                                              r_sense_ohm=wire.r_sense_ohm))
    x = network.solve(conductance, v_mat)
    currents = network.foot_currents(x)
    if cell_iv is None or cell_iv.is_linear:
        return currents[:, 0] if squeeze else currents

    for _ in range(max_iterations):
        dv = network.cell_voltages(x)
        # One secant conductance per cell: batches share the matrix only when
        # batch = 1; otherwise solve per batch column.
        new_x = np.empty_like(x)
        for k in range(v_mat.shape[1]):
            g_eff = cell_iv.effective_conductance(conductance, dv[:, :, k])
            new_x[:, k:k + 1] = network.solve(g_eff, v_mat[:, k:k + 1])
        new_currents = network.foot_currents(new_x)
        scale = np.maximum(np.abs(new_currents).max(), 1e-30)
        converged = np.abs(new_currents - currents).max() <= tolerance * scale
        x, currents = new_x, new_currents
        if converged:
            break
    return currents[:, 0] if squeeze else currents


def first_order_currents(conductance: np.ndarray, v_in: np.ndarray,
                         wire: WireModel = WireModel(),
                         cell_iv: Optional[CellIV] = None) -> np.ndarray:
    """First-order IR-drop estimate (one perturbation pass, no linear solve).

    Computes the ideal per-cell currents, charges each wire segment with the
    current it would carry, accumulates the resulting voltage drops along
    the word line (driver to cell) and bit line (cell to sense amplifier),
    and re-evaluates the cell currents at the degraded voltages — through
    the nonlinear I-V curve when ``cell_iv`` is given.  Accurate to a few
    percent for realistic wire resistances (validated against
    :func:`solve_ir_drop` in the tests); cost is O(rows x cols).

    Batched evaluation: ``conductance`` may carry arbitrary leading axes
    ``(..., rows, cols)`` — one independent crossbar (fragment) per leading
    index — with ``v_in`` shaped ``(..., rows)`` or ``(..., rows, batch)``.
    Every fragment and every drive pattern is evaluated in one vectorized
    pass; the in-situ engines feed whole (bit-plane, fragment) job batches
    through here at once.  Returns ``(..., cols)`` or ``(..., cols, batch)``.
    """
    conductance = np.asarray(conductance, dtype=np.float64)
    v_in = np.asarray(v_in, dtype=np.float64)
    if conductance.ndim < 2:
        raise ValueError("conductance must be at least 2-D (..., rows, cols)")
    rows = conductance.shape[-2]
    squeeze = v_in.ndim == conductance.ndim - 1
    v = v_in[..., None] if squeeze else v_in
    if v.shape[:-1] != conductance.shape[:-1]:
        raise ValueError(f"v_in shape {v_in.shape} incompatible with "
                         f"conductance shape {conductance.shape}")

    # Ideal per-cell currents, batch axis last: (..., rows, cols, B).
    cell_i = conductance[..., None] * v[..., :, None, :]
    zeros_col = np.zeros_like(cell_i[..., :, :1, :])
    zeros_row = np.zeros_like(cell_i[..., :1, :, :])
    # Word line: segment j carries the current of every cell at >= j;
    # the drop accumulated at cell (i, j) sums segments 0..j-1 plus the
    # driver resistance carrying the whole row current.
    row_tail = np.flip(np.cumsum(np.flip(cell_i, axis=-2), axis=-2), axis=-2)
    row_drop = wire.r_driver_ohm * row_tail[..., :, :1, :] + wire.r_wire_ohm * (
        np.concatenate([zeros_col,
                        np.cumsum(row_tail[..., :, 1:, :], axis=-2)], axis=-2))
    # Bit line: segment below row i carries the current of every cell at
    # <= i; the lift at cell (i, j) sums segments i..rows-2 plus the
    # sense resistance carrying the whole column current.
    col_head = np.cumsum(cell_i, axis=-3)
    col_lift = wire.r_sense_ohm * col_head[..., rows - 1:rows, :, :] + \
        wire.r_wire_ohm * np.concatenate(
            [np.flip(np.cumsum(np.flip(col_head[..., :-1, :, :], axis=-3),
                               axis=-3), axis=-3),
             zeros_row], axis=-3)
    effective_v = v[..., :, None, :] - row_drop - col_lift
    if cell_iv is not None and not cell_iv.is_linear:
        out = cell_iv.current(conductance[..., None], effective_v).sum(axis=-3)
    else:
        out = (conductance[..., None] * effective_v).sum(axis=-3)
    return out[..., 0] if squeeze else out


# ---------------------------------------------------------------------------
# IR-drop study (fine vs coarse granularity)
# ---------------------------------------------------------------------------

@dataclass
class IRDropPoint:
    """Relative MVM error at one activation granularity."""

    active_rows: int
    relative_error: float
    ideal_current_a: float
    actual_current_a: float


def ir_drop_study(rows: int = 128, cols: int = 8,
                  active_row_options: Optional[List[int]] = None,
                  wire: WireModel = WireModel(),
                  cell_iv: Optional[CellIV] = CellIV(),
                  g_min: float = 1e-7, g_max: float = 1e-5,
                  read_voltage: float = 0.3, seed: int = 0,
                  solver: str = "exact") -> List[IRDropPoint]:
    """Relative column-current error versus rows active per conversion.

    Models the FORMS-vs-ISAAC comparison directly: the same physical
    ``rows x cols`` crossbar is read either a fragment at a time (only the
    fragment's rows driven, FORMS) or all rows at once (ISAAC).  For each
    granularity the *total* dot product is assembled from the per-group
    reads, so the comparison is error-per-result, not error-per-read.

    With the default (nonlinear) ``cell_iv`` the error shrinks with the
    activation granularity — the paper's robustness claim.  Pass
    ``cell_iv=LINEAR_CELL`` (or ``None``) to demonstrate the superposition
    counterpoint: with linear cells the summed group reads equal the coarse
    read *exactly* and granularity is irrelevant.
    """
    if active_row_options is None:
        active_row_options = [4, 8, 16, 32, 64, 128]
    if any(rows % m for m in active_row_options):
        raise ValueError("every active-row option must divide the row count")
    if solver not in ("exact", "first_order"):
        raise ValueError("solver must be 'exact' or 'first_order'")
    solve = solve_ir_drop if solver == "exact" else first_order_currents

    rng = np.random.default_rng(seed)
    conductance = rng.uniform(g_min, g_max, size=(rows, cols))
    points = []
    for m in active_row_options:
        groups = rows // m
        total_ideal = np.zeros(cols)
        total_actual = np.zeros(cols)
        for g in range(groups):
            v = np.zeros(rows)
            v[g * m:(g + 1) * m] = read_voltage
            total_ideal += ideal_currents(conductance, v)
            total_actual += solve(conductance, v, wire, cell_iv=cell_iv)
        error = float(np.mean(np.abs(total_actual - total_ideal) / total_ideal))
        points.append(IRDropPoint(
            active_rows=m,
            relative_error=error,
            ideal_current_a=float(total_ideal.mean()),
            actual_current_a=float(total_actual.mean()),
        ))
    return points


def fragment_read_error(rows: int, fragment_size: int = 8, cols: int = 8,
                        wire: WireModel = WireModel(),
                        cell_iv: Optional[CellIV] = CellIV(),
                        g_min: float = 1e-7, g_max: float = 1e-5,
                        read_voltage: float = 0.3, seed: int = 0) -> float:
    """Mean relative error of a single fragment read vs the column length.

    FORMS activates one fragment at a time, but its current still traverses
    the *whole* physical bit line to the sense amplifier — so taller
    crossbars degrade even fine-grained reads.  Averages the per-read error
    over every fragment position using the first-order solver; this is the
    analog-feasibility signal of the crossbar-size design-space sweep.
    """
    if rows % fragment_size:
        raise ValueError("fragment_size must divide the row count")
    rng = np.random.default_rng(seed)
    conductance = rng.uniform(g_min, g_max, size=(rows, cols))
    errors = []
    for group in range(rows // fragment_size):
        v = np.zeros(rows)
        v[group * fragment_size:(group + 1) * fragment_size] = read_voltage
        ideal = ideal_currents(conductance, v)
        actual = first_order_currents(conductance, v, wire, cell_iv=cell_iv)
        errors.append(float(np.mean(np.abs(actual - ideal) / ideal)))
    return float(np.mean(errors))


# ---------------------------------------------------------------------------
# Stuck-at faults
# ---------------------------------------------------------------------------

#: fault-mask encoding
FAULT_NONE, FAULT_SA0, FAULT_SA1 = 0, 1, 2


@dataclass
class FaultModel:
    """Random stuck-at fault injector.

    ``sa0_rate`` / ``sa1_rate`` are independent per-cell probabilities of a
    cell being stuck at the lowest / highest conductance level.  Rates of
    0.1-1% are typical for ReRAM yield studies.
    """

    sa0_rate: float = 0.005
    sa1_rate: float = 0.0005
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        if not 0 <= self.sa0_rate <= 1 or not 0 <= self.sa1_rate <= 1:
            raise ValueError("fault rates must lie in [0, 1]")
        if self.sa0_rate + self.sa1_rate > 1:
            raise ValueError("combined fault rate cannot exceed 1")
        self._rng = np.random.default_rng(self.seed)

    def sample(self, shape) -> np.ndarray:
        """Draw a fault mask: 0 = healthy, 1 = SA0, 2 = SA1."""
        u = self._rng.random(shape)
        mask = np.full(shape, FAULT_NONE, dtype=np.int8)
        mask[u < self.sa0_rate] = FAULT_SA0
        mask[(u >= self.sa0_rate) & (u < self.sa0_rate + self.sa1_rate)] = FAULT_SA1
        return mask

    @staticmethod
    def apply_to_codes(codes: np.ndarray, mask: np.ndarray,
                       levels: int) -> np.ndarray:
        """Force faulty cells to their stuck level."""
        codes = np.asarray(codes)
        if codes.shape != mask.shape:
            raise ValueError("codes and fault mask shapes must match")
        out = codes.copy()
        out[mask == FAULT_SA0] = 0
        out[mask == FAULT_SA1] = levels - 1
        return out


# ---------------------------------------------------------------------------
# Read noise
# ---------------------------------------------------------------------------

@dataclass
class ReadNoise:
    """Additive Gaussian current noise at the sense amplifier.

    ``relative_sigma`` scales the noise to the full-scale fragment current
    (``m`` cells at ``g_max`` driven at the read voltage), matching how ADC
    input-referred noise is specified [32].

    Two draw disciplines coexist:

    * :meth:`apply` consumes a sequential stream — the draw depends on call
      history (a fresh physical read every time);
    * :meth:`apply_jobs` draws each kernel job from a *substream* keyed by
      the job's identity (activation-block content hash, plane, bit-plane,
      fragment).  The draw is then a pure function of (noise seed, input,
      job), independent of chunk packing, evaluation order and worker
      count — the property that makes noisy engine results bit-identical
      across the fused kernel, the reference loop and any
      ``repro.runtime`` worker configuration.  The trade-off is that
      re-running the *same* input block repeats the same noise; treat the
      seed as selecting one noise realization per distinct input.

    An unseeded model draws a fresh base seed at construction, so
    substreams stay deterministic *within* one instance but differ across
    instances — matching the unseeded contract of the sequential stream.
    """

    relative_sigma: float = 0.005
    full_scale_a: float = 1.0
    seed: Optional[int] = None

    def __post_init__(self):
        if self.relative_sigma < 0:
            raise ValueError("relative_sigma must be non-negative")
        if self.full_scale_a <= 0:
            raise ValueError("full_scale_a must be positive")
        self._rng = np.random.default_rng(self.seed)
        if self.seed is not None:
            self._base_seed = int(self.seed)
        else:
            self._base_seed = int(np.random.SeedSequence().entropy) % (1 << 63)

    @classmethod
    def for_fragment(cls, fragment_size: int, g_max: float,
                     read_voltage: float, relative_sigma: float = 0.005,
                     seed: Optional[int] = None) -> "ReadNoise":
        return cls(relative_sigma=relative_sigma,
                   full_scale_a=fragment_size * g_max * read_voltage,
                   seed=seed)

    def apply(self, currents: np.ndarray) -> np.ndarray:
        if self.relative_sigma == 0.0:
            return np.asarray(currents, dtype=np.float64)
        sigma = self.relative_sigma * self.full_scale_a
        noise = self._rng.normal(0.0, sigma, size=np.shape(currents))
        return np.asarray(currents, dtype=np.float64) + noise

    def substream(self, key) -> np.random.Generator:
        """Deterministic generator for one job key (non-negative ints)."""
        return np.random.default_rng(
            np.random.SeedSequence([self._base_seed, *map(int, key)]))

    def apply_jobs(self, currents: np.ndarray, keys) -> np.ndarray:
        """Per-job keyed noise on a ``(jobs, ...)`` current batch.

        ``keys`` carries one identity tuple per job along the leading axis;
        each job's noise comes from its own substream, so the result does
        not depend on how jobs were packed into this batch.
        """
        out = np.asarray(currents, dtype=np.float64).copy()
        if self.relative_sigma == 0.0:
            return out
        if len(keys) != out.shape[0]:
            raise ValueError(f"{len(keys)} keys for {out.shape[0]} jobs")
        sigma = self.relative_sigma * self.full_scale_a
        for j, key in enumerate(keys):
            out[j] += self.substream(key).normal(0.0, sigma,
                                                 size=out[j].shape)
        return out

    def snr_db(self, signal_rms_a: float) -> float:
        """Signal-to-noise ratio of a given RMS signal current."""
        if signal_rms_a <= 0:
            raise ValueError("signal_rms_a must be positive")
        sigma = self.relative_sigma * self.full_scale_a
        if sigma == 0:
            return float("inf")
        return 20.0 * float(np.log10(signal_rms_a / sigma))

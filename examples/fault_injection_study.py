"""Fault-tolerant deployment: surviving stuck-at faults on real dies.

The paper's variation analysis (Sec. V-E) points at [29] for robustness
mitigations.  This example walks the full deployment story:

1. train and FORMS-optimize a model (prune -> polarize -> quantize);
2. simulate defective dies at several stuck-at fault rates;
3. deploy naively (direct storage, identity column mapping) and with the
   [29]-style mitigations — optimal column remapping plus differential
   fragment encoding, both of which preserve fragment polarization;
4. report paired accuracies and the impact-reduction statistics of the
   mitigation planner.

Run:  python examples/fault_injection_study.py
"""

import numpy as np

from repro.analysis import bar_chart, render_table
from repro.core import (ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline,
                        MitigationConfig, collect_layer_artifacts,
                        fault_tolerance_study, plan_mitigation)
from repro.core.fault_tolerance import apply_fault_injection
from repro.nn import (Adam, LeNet5, Tensor, classification_report, evaluate,
                      fit, no_grad, predictions_from_logits, set_init_seed,
                      synthetic_mnist)
from repro.reram import FaultModel

FAULT_RATES = [(0.002, 0.0002), (0.01, 0.001), (0.03, 0.003), (0.08, 0.008)]


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Baseline + FORMS optimization.
    # ------------------------------------------------------------------
    set_init_seed(3)
    train_set, test_set = synthetic_mnist(train_size=512, test_size=256, seed=3)
    model = LeNet5(num_classes=10, in_channels=1, image_size=16)
    print("training LeNet-5 on synthetic MNIST ...")
    fit(model, train_set, Adam(model.parameters(), lr=1e-3), epochs=6,
        batch_size=32)
    admm = ADMMConfig(iterations=2, epochs_per_iteration=1, retrain_epochs=2)
    config = FORMSConfig(fragment_size=8, crossbar=CrossbarShape(32, 32),
                         filter_keep=0.5, shape_keep=0.5,
                         prune_admm=admm, polarize_admm=admm,
                         quantize_admm=admm)
    FORMSPipeline(config).optimize(model, train_set, test_set, seed=3)
    clean_acc = evaluate(model, test_set).accuracy
    print(f"optimized model accuracy (clean die): {clean_acc:.3f}\n")

    # ------------------------------------------------------------------
    # 2. What the mitigation planner does to one die's fault impact.
    # ------------------------------------------------------------------
    artifacts = collect_layer_artifacts(model, config)
    name, art = max(artifacts.items(),
                    key=lambda kv: kv[1].int_weights.size)
    levels = art.geometry.matrix(art.int_weights)
    magnitudes = np.abs(levels)
    mask = FaultModel(0.03, 0.003, seed=7).sample(magnitudes.shape)
    max_level = 2 ** (config.weight_bits - 1) - 1
    plan = plan_mitigation(magnitudes, mask, max_level,
                           art.geometry.fragment_size, MitigationConfig())
    print(f"layer {name}: planner on one die at SA0=3% / SA1=0.3%")
    print(f"  baseline fault impact : {plan.baseline_impact:10.0f} level units")
    print(f"  planned fault impact  : {plan.planned_impact:10.0f} level units")
    print(f"  impact removed        : {plan.impact_reduction * 100:9.1f} %")
    moved = int((plan.permutation != np.arange(len(plan.permutation))).sum())
    flipped = int(plan.complement.sum())
    print(f"  columns remapped      : {moved}")
    print(f"  fragments complemented: {flipped}\n")

    # ------------------------------------------------------------------
    # 3. Accuracy across fault rates, paired dies.
    # ------------------------------------------------------------------
    print("running paired-die study (3 dies per rate) ...")
    points = fault_tolerance_study(model, config, test_set,
                                   fault_rates=FAULT_RATES, runs=3, seed=11)
    rows = [[f"{p.sa0_rate:.3f}", f"{p.sa1_rate:.4f}",
             p.unmitigated_mean * 100.0, p.mitigated_mean * 100.0,
             p.accuracy_recovered * 100.0]
            for p in points]
    print(render_table(
        ["SA0 rate", "SA1 rate", "naive acc %", "mitigated acc %",
         "recovered %"],
        rows, title="Accuracy vs stuck-at fault rate"))

    print()
    print(bar_chart(
        [f"SA0={p.sa0_rate:.3f}" for p in points],
        [p.accuracy_recovered * 100.0 for p in points],
        title="Accuracy recovered by [29]-style mitigation (percent points)",
        width=40))

    # ------------------------------------------------------------------
    # 4. Per-class view on the heaviest die: aggregate accuracy can hide a
    #    collapsed class; worst-class recall cannot.
    # ------------------------------------------------------------------
    sa0, sa1 = FAULT_RATES[-1]
    rows = []
    for label, mitigation in (("naive", None),
                              ("mitigated", MitigationConfig())):
        die = apply_fault_injection(model, config,
                                    FaultModel(sa0, sa1, seed=99),
                                    mitigation=mitigation)
        die.eval()
        with no_grad():
            logits = die(Tensor(test_set.images)).data
        report = classification_report(
            test_set.labels, predictions_from_logits(logits),
            num_classes=test_set.num_classes)
        rows.append([label, report.accuracy * 100.0,
                     report.macro_f1 * 100.0,
                     report.recall.min() * 100.0, report.worst_class()])
    print()
    print(render_table(
        ["deployment", "accuracy %", "macro F1 %", "worst-class recall %",
         "worst class"],
        rows, title=f"Per-class impact on one die at SA0={sa0:.0%}"))


if __name__ == "__main__":
    main()

"""Design-space exploration tests (paper Sec. IV-C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.dse import (MIN_LEVEL_MARGIN_SIGMAS, CrossbarSizeEvaluation,
                            DesignEvaluation, DesignPoint,
                            best_energy_efficiency, cell_bits_sweep,
                            crossbar_size_sweep, design_chip, design_mcu,
                            evaluate_design, fragment_sweep, pareto_front)
from repro.reram.converters import paper_adc_bits, required_adc_bits
from repro.reram.nonideal import fragment_read_error


class TestDesignPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            DesignPoint(fragment_size=0)
        with pytest.raises(ValueError):
            DesignPoint(cell_bits=0)
        with pytest.raises(ValueError):
            DesignPoint(cell_bits=4, weight_bits=2)
        with pytest.raises(ValueError):
            DesignPoint(adcs_per_crossbar=3)   # does not divide 128
        with pytest.raises(ValueError):
            DesignPoint(adc_rule="spice")

    def test_exact_adc_rule_covers_worst_case(self):
        point = DesignPoint(fragment_size=8, cell_bits=2, adc_rule="exact")
        assert point.adc_bits == required_adc_bits(8, 2) == 5

    def test_paper_adc_rule_matches_published_pairing(self):
        # 3/4/5 bits at fragments 4/8/16 with 2-bit cells (Sec. IV-C).
        for m in (4, 8, 16):
            point = DesignPoint(fragment_size=m, cell_bits=2, adc_rule="paper")
            assert point.adc_bits == paper_adc_bits(m)

    def test_sar_frequency_scales_inversely_with_bits(self):
        fast = DesignPoint(fragment_size=4, adc_rule="paper")    # 3-bit
        slow = DesignPoint(fragment_size=16, adc_rule="paper")   # 5-bit
        assert fast.adc_frequency_hz > slow.adc_frequency_hz
        # anchored at the published 4-bit / 2.1 GS/s point
        anchor = DesignPoint(fragment_size=8, adc_rule="paper")
        assert anchor.adc_frequency_hz == pytest.approx(2.1e9)

    def test_cells_per_weight(self):
        assert DesignPoint(cell_bits=2, weight_bits=8).cells_per_weight == 4
        assert DesignPoint(cell_bits=8, weight_bits=8).cells_per_weight == 1

    def test_level_margin_collapses_with_cell_bits(self):
        margins = [DesignPoint(cell_bits=c).level_margin_sigmas(0.1)
                   for c in (1, 2, 4, 8)]
        assert margins == sorted(margins, reverse=True)
        assert DesignPoint(cell_bits=2).level_margin_sigmas(0.0) == float("inf")


class TestDesignRollup:
    def test_fragment8_mcu_matches_catalog_shape(self):
        mcu = design_mcu(DesignPoint(fragment_size=8, adc_rule="paper"))
        assert mcu.adc_bits == 4
        assert mcu.rows_per_activation == 8
        assert mcu.adcs_per_crossbar == 4
        assert mcu.power_mw > 0 and mcu.area_mm2 > 0

    def test_chip_budget_scales_with_tiles(self):
        small = design_chip(DesignPoint(tiles=10))
        large = design_chip(DesignPoint(tiles=20))
        assert large.crossbars == 2 * small.crossbars

    def test_more_adc_bits_cost_more_power(self):
        lean = design_mcu(DesignPoint(fragment_size=4))
        rich = design_mcu(DesignPoint(fragment_size=32))
        assert rich.adc_bits > lean.adc_bits
        assert rich.power_mw > lean.power_mw


class TestEvaluation:
    def test_fields_populated(self):
        result = evaluate_design(DesignPoint())
        assert isinstance(result, DesignEvaluation)
        assert result.gops > 0
        assert 0 < result.adc_power_fraction < 1
        assert result.gops_per_w == pytest.approx(result.gops / result.power_w)

    def test_zero_skip_raises_throughput(self):
        plain = evaluate_design(DesignPoint())
        skipped = evaluate_design(DesignPoint(), average_eic=10.7)
        assert skipped.gops > plain.gops


class TestCellBitsSweep:
    @pytest.mark.parametrize("rule", ["exact", "paper"])
    def test_two_bit_cells_win_energy_efficiency(self, rule):
        # The headline Sec. IV-C conclusion, under either ADC sizing rule.
        evals = cell_bits_sweep(adc_rule=rule)
        best = best_energy_efficiency(evals, require_feasible=True)
        assert best.point.cell_bits == 2

    def test_dense_cells_are_variation_infeasible(self):
        evals = {e.point.cell_bits: e for e in cell_bits_sweep()}
        assert evals[1].variation_feasible
        assert evals[2].variation_feasible
        assert not evals[4].variation_feasible
        assert not evals[8].variation_feasible

    def test_adc_share_grows_with_cell_bits(self):
        fractions = [e.adc_power_fraction for e in cell_bits_sweep()]
        assert fractions == sorted(fractions)

    def test_unrestricted_best_under_exact_rule_is_still_two_bits(self):
        evals = cell_bits_sweep(adc_rule="exact")
        best = best_energy_efficiency(evals, require_feasible=False)
        assert best.point.cell_bits == 2

    def test_no_feasible_points_raises(self):
        evals = cell_bits_sweep(options=(4, 8))
        with pytest.raises(ValueError):
            best_energy_efficiency(evals, require_feasible=True)


class TestFragmentSweep:
    def test_peak_efficiency_grows_with_fragment(self):
        # Larger fragments amortize conversions (Table V: fragment 16 beats
        # 8 on peak throughput); accuracy (Fig. 6) is what caps the size.
        effs = [e.gops_per_w for e in fragment_sweep(options=(4, 8, 16))]
        assert effs == sorted(effs)


class TestCrossbarSizeSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return crossbar_size_sweep(options=(64, 128, 256))

    def test_density_grows_with_size(self, sweep):
        densities = [r.evaluation.weights_per_mm2 for r in sweep]
        assert densities == sorted(densities)

    def test_analog_error_grows_with_size(self, sweep):
        errors = [r.analog_error for r in sweep]
        assert errors == sorted(errors)
        assert all(e > 0 for e in errors)

    def test_paper_choice_is_densest_feasible(self, sweep):
        # 128x128 (the published design) is the largest analog-feasible size.
        feasible = [r for r in sweep if r.analog_feasible]
        assert max(r.size for r in feasible) == 128

    def test_fragment_read_error_validation(self):
        with pytest.raises(ValueError):
            fragment_read_error(rows=66, fragment_size=8)

    def test_crossbar_dimension_validation(self):
        with pytest.raises(ValueError):
            DesignPoint(crossbar_rows=4, fragment_size=8)
        with pytest.raises(ValueError):
            DesignPoint(crossbar_rows=129, fragment_size=8)

    def test_capacity_scales_quadratically(self):
        small = evaluate_design(DesignPoint(crossbar_rows=64,
                                            crossbar_cols=64))
        large = evaluate_design(DesignPoint(crossbar_rows=128,
                                            crossbar_cols=128))
        assert large.weight_capacity == 4 * small.weight_capacity


class TestParetoFront:
    def test_front_contains_best_of_each_objective(self):
        evals = cell_bits_sweep()
        front = pareto_front(evals)
        best_w = max(evals, key=lambda e: e.gops_per_w)
        best_a = max(evals, key=lambda e: e.gops_per_mm2)
        assert best_w in front
        assert best_a in front

    def test_dominated_points_excluded(self):
        evals = cell_bits_sweep()
        front = pareto_front(evals)
        # 8-bit cells lose on both axes to 4-bit cells -> dominated.
        assert all(e.point.cell_bits != 8 for e in front)

    def test_single_objective_front_is_argmax(self):
        evals = cell_bits_sweep()
        front = pareto_front(evals, objectives=("gops_per_w",))
        assert len(front) == 1
        assert front[0] is max(evals, key=lambda e: e.gops_per_w)

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValueError):
            pareto_front(cell_bits_sweep(), objectives=())

    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                    max_size=4, unique=True))
    @settings(max_examples=15, deadline=None)
    def test_front_never_empty(self, bits_options):
        evals = cell_bits_sweep(options=sorted(bits_options))
        assert len(pareto_front(evals)) >= 1

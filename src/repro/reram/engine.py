"""Bit-serial in-situ computation engine (paper Figs. 5, 11, 12).

:class:`InSituLayerEngine` executes one layer's matrix-vector products the way
the hardware does:

1. activations arrive as unsigned integers; each cycle the DACs drive one bit
   of every input onto the word lines (LSB first);
2. each fragment's column current is sampled, pedestal-corrected and
   digitized by the fragment's ADC;
3. shift-and-add recombines cell slices (x4 for 8-bit weights on 2-bit cells)
   and input bits (x2 per cycle);
4. the accumulation block adds or subtracts the fragment result according to
   the sign-indicator bit (FORMS), applies the offset correction (ISAAC), or
   subtracts the negative-plane result (PRIME dual);
5. fragment results accumulate into the layer output.

With ideal devices and sufficiently wide ADCs the engine reproduces the
integer matmul **exactly** — the anchor correctness property of the simulator
(see ``tests/reram/test_engine.py``).  With device variation or undersized
ADCs, the deviation is the physically meaningful error the paper's Table VI
and our ADC ablation measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.fragments import FragmentGeometry
from ..core.quantization import QuantizationSpec
from .bitslice import slice_weights
from .converters import ADCSpec, DACSpec, SampleHold, required_adc_bits
from .device import ReRAMDevice, codes_to_digital
from .mapping import MappedLayer, map_layer


class SignIndicator:
    """1R array holding one sign bit per fragment (paper Fig. 5).

    The accumulation block consults it to run its adder in add or subtract
    mode; cost-wise it is a single resistive cell per fragment (Table III's
    0.012 mW / 3.1e-6 mm2 row).
    """

    def __init__(self, signs: np.ndarray):
        signs = np.asarray(signs)
        if not np.isin(signs, (-1.0, 1.0)).all():
            raise ValueError("signs must be +1/-1")
        self.bits = (signs < 0).astype(np.int8)  # 1 encodes negative

    def apply(self, fragment_values: np.ndarray) -> np.ndarray:
        """Negate values of fragments whose sign bit is set.

        ``fragment_values`` shaped ``(n_frag, cols, ...)`` — the leading two
        axes must match the sign array.
        """
        signs = np.where(self.bits == 1, -1, 1).astype(fragment_values.dtype)
        extra = fragment_values.ndim - signs.ndim
        return fragment_values * signs.reshape(signs.shape + (1,) * extra)


@dataclass
class EngineStats:
    """Non-ideality accounting of one engine run."""

    conversions: int = 0
    saturated: int = 0
    cycles_fed: int = 0

    @property
    def saturation_fraction(self) -> float:
        return self.saturated / self.conversions if self.conversions else 0.0

    def merge(self, other: "EngineStats") -> None:
        self.conversions += other.conversions
        self.saturated += other.saturated
        self.cycles_fed += other.cycles_fed


class InSituLayerEngine:
    """Computes ``levels.T @ x`` for one mapped layer via crossbar simulation.

    Parameters
    ----------
    mapped:
        Output of :func:`repro.reram.mapping.map_layer` for any scheme.
    device:
        The ReRAM population (carries variation).  Each engine instance
        programs its own die.
    adc:
        ADC spec; ``None`` sizes it exactly for the worst-case fragment sum
        (the configuration under which the engine is exact).
    activation_bits:
        Input bit width (paper: 16, with 8 also evaluated).
    """

    def __init__(self, mapped: MappedLayer, device: ReRAMDevice,
                 adc: Optional[ADCSpec] = None, activation_bits: int = 16):
        if activation_bits < 1:
            raise ValueError("activation_bits must be >= 1")
        self.mapped = mapped
        self.device = device
        self.activation_bits = activation_bits
        spec = mapped.spec
        geometry = mapped.geometry
        if adc is None:
            adc = ADCSpec(bits=required_adc_bits(geometry.fragment_size, spec.cell_bits))
        self.adc = adc
        self.dac = DACSpec()
        self.sample_hold = SampleHold()
        self.sign_indicator = (SignIndicator(mapped.signs)
                               if mapped.signs is not None else None)
        # Program one conductance plane per code plane (a fresh die each).
        self.conductance: Dict[str, np.ndarray] = {
            plane: device.program(codes) for plane, codes in mapped.code_planes.items()
        }
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    def _plane_pass(self, plane: str, bits_stack: np.ndarray) -> np.ndarray:
        """One bit-cycle through one conductance plane.

        ``bits_stack``: (n_frag, m, positions) of 0/1.
        Returns digital fragment values (n_frag, positions, cols) after ADC
        and slice recombination.
        """
        conductance = self.conductance[plane]              # (n_frag, m, cols, slices)
        spec = self.device.spec
        drive = self.dac.convert(bits_stack)
        currents = spec.read_voltage * np.einsum(
            "fmp,fmcs->fpcs", drive, conductance, optimize=True)
        held = self.sample_hold.hold(currents)
        active = bits_stack.sum(axis=1)                    # (n_frag, positions)
        analog = codes_to_digital(held, spec, active[:, :, None, None])
        digital = self.adc.convert(analog)
        self.stats.conversions += digital.size
        self.stats.saturated += int((np.rint(analog) > self.adc.max_code).sum())
        place = slice_weights(conductance.shape[-1], self.mapped.spec.cell_bits)
        return (digital * place).sum(axis=-1)              # (n_frag, positions, cols)

    def matvec_int(self, x_int: np.ndarray) -> np.ndarray:
        """Integer MVM: returns ``(cols, positions)`` given ``(rows, positions)``.

        ``x_int`` holds unsigned ``activation_bits``-bit integers in im2col
        layout, rows already permuted to the layer's polarization policy.
        """
        x_int = np.asarray(x_int)
        if not np.issubdtype(x_int.dtype, np.integer):
            raise TypeError("engine inputs must be integer activations")
        geometry = self.mapped.geometry
        if x_int.ndim == 1:
            x_int = x_int[:, None]
        if x_int.shape[0] != geometry.rows:
            raise ValueError(f"input rows {x_int.shape[0]} != matrix rows {geometry.rows}")
        if x_int.min(initial=0) < 0 or x_int.max(initial=0) >= (1 << self.activation_bits):
            raise ValueError(f"inputs outside unsigned {self.activation_bits}-bit range")
        positions = x_int.shape[1]
        pad = geometry.padded_rows - geometry.rows
        if pad:
            x_int = np.vstack([x_int, np.zeros((pad, positions), dtype=x_int.dtype)])
        stacked = x_int.reshape(geometry.fragments_per_column,
                                geometry.fragment_size, positions)

        out = np.zeros((geometry.cols, positions), dtype=np.int64)
        for bit in range(self.activation_bits):
            remaining = stacked >> bit
            if not remaining.any():
                break  # zero-skipping: every shift register is empty
            bits_stack = remaining & 1
            self.stats.cycles_fed += 1
            if self.mapped.scheme == "dual":
                frag = (self._plane_pass("positive", bits_stack)
                        - self._plane_pass("negative", bits_stack))
            else:
                frag = self._plane_pass("main", bits_stack)
            if self.sign_indicator is not None:
                frag = self.sign_indicator.apply(np.transpose(frag, (0, 2, 1)))
                frag = np.transpose(frag, (0, 2, 1))
            out += (1 << bit) * frag.sum(axis=0).T          # (cols, positions)
        if self.mapped.scheme == "isaac_offset":
            # Digital 1-count correction: the stored bias contributes
            # offset * sum(inputs) to every column (paper Sec. II-B).
            input_totals = x_int.sum(axis=0).astype(np.int64)
            out -= self.mapped.offset * input_totals[None, :]
        return out

    def matvec_float(self, x_int: np.ndarray, weight_scale: float,
                     activation_scale: float) -> np.ndarray:
        """Dequantized MVM result in real units."""
        return self.matvec_int(x_int).astype(np.float64) * weight_scale * activation_scale


def build_engine(levels_matrix: np.ndarray, geometry: FragmentGeometry,
                 spec: QuantizationSpec, device: ReRAMDevice,
                 scheme: str = "forms", signs: Optional[np.ndarray] = None,
                 adc: Optional[ADCSpec] = None,
                 activation_bits: int = 16) -> InSituLayerEngine:
    """Map integer levels and construct the engine in one step."""
    if scheme == "forms" and signs is None:
        from .mapping import infer_signs
        signs = infer_signs(levels_matrix, geometry)
    mapped = map_layer(levels_matrix, geometry, spec, scheme=scheme, signs=signs)
    return InSituLayerEngine(mapped, device, adc=adc, activation_bits=activation_bits)


# ---------------------------------------------------------------------------
# Fast effective-weight path (network-scale variation studies, Table VI)
# ---------------------------------------------------------------------------

def effective_levels(mapped: MappedLayer, device: ReRAMDevice) -> np.ndarray:
    """Real-valued weight levels as realized by a noisy die.

    Equivalent to the bit-serial engine when ADC quantization is exact:
    variation multiplies each cell's level code, and shift-and-add recombines
    the noisy slices.  Note how the three schemes differ in noise coupling —
    the ISAAC offset plane carries the large bias through the same noisy
    cells (variation on the bias is *not* cancelled by the digital
    correction, which subtracts the ideal offset), while FORMS stores bare
    magnitudes.  This is the mechanism behind the robustness gap the paper
    cites ([29]).
    """
    spec = mapped.spec
    geometry = mapped.geometry
    place = slice_weights(next(iter(mapped.code_planes.values())).shape[-1], spec.cell_bits)

    def noisy_plane(codes: np.ndarray) -> np.ndarray:
        factors = device.variation_factors(codes.shape)
        return (codes * factors * place).sum(axis=-1)      # (n_frag, m, cols)

    if mapped.scheme == "forms":
        stack = noisy_plane(mapped.code_planes["main"])
        signed = stack * mapped.signs[:, None, :]
        return geometry.from_fragment_stack(signed)
    if mapped.scheme == "isaac_offset":
        stack = noisy_plane(mapped.code_planes["main"])
        pad_rows = geometry.padded_rows - geometry.rows
        corrected = stack - mapped.offset
        if pad_rows:  # padding rows were never biased
            corrected[-1, -pad_rows:, :] += mapped.offset
        return geometry.from_fragment_stack(corrected)
    # dual
    pos = noisy_plane(mapped.code_planes["positive"])
    neg = noisy_plane(mapped.code_planes["negative"])
    return geometry.from_fragment_stack(pos - neg)

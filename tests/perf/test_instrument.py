"""Perf subsystem tests: timing, metering, and the suite's JSON contract."""

import json

import numpy as np
import pytest

from repro.core import QuantizationSpec
from repro.perf import EngineMeter, TimingResult, time_callable
from repro.perf.suite import (HEADLINE_BENCH, bench_die_cache, bench_mvm,
                              default_suite, make_polarized_layer,
                              write_payload)
from repro.reram import DeviceSpec, ReRAMDevice, build_engine


class TestTimeCallable:
    def test_returns_positive_times(self):
        result = time_callable(lambda: sum(range(100)), name="sum",
                               repeats=3, calls_per_repeat=2)
        assert result.name == "sum"
        assert 0 < result.best_s <= result.mean_s
        assert len(result.all_s) == 3
        assert result.per_call_s == result.best_s / 2

    def test_counts_invocations(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=2,
                      calls_per_repeat=3, warmup=1)
        assert len(calls) == 1 + 2 * 3

    def test_speedup_vs(self):
        fast = TimingResult("f", 1, 1, 0.5, 0.5, (0.5,))
        slow = TimingResult("s", 1, 1, 2.0, 2.0, (2.0,))
        assert fast.speedup_vs(slow) == 4.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_record_roundtrips_through_json(self):
        record = time_callable(lambda: None, repeats=2).to_record()
        assert json.loads(json.dumps(record)) == record


class TestEngineMeter:
    def test_delta_tracks_conversions(self):
        levels, geom = make_polarized_layer(shape=(4, 2, 3, 3),
                                            fragment_size=4)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2),
                              ReRAMDevice(DeviceSpec(), 0.0),
                              activation_bits=8)
        x = np.random.default_rng(0).integers(0, 256, size=(geom.rows, 4))
        meter = EngineMeter([engine])
        assert meter.delta()["conversions"] == 0
        engine.matvec_int(x)
        delta = meter.delta()
        assert delta["conversions"] > 0
        assert delta["cycles_fed"] == engine.stats.cycles_fed
        meter.reset()
        assert meter.delta()["conversions"] == 0


class TestSuite:
    def test_headline_bench_in_every_mode(self):
        assert HEADLINE_BENCH in default_suite(smoke=True)
        assert HEADLINE_BENCH in default_suite(smoke=False)

    def test_bench_mvm_record_contract(self):
        record = bench_mvm("forms", repeats=1)
        assert record["kind"] == "paired"
        assert record["speedup"] > 0
        assert record["fused"]["per_call_s"] > 0
        assert record["engine_stats_per_call"]["conversions"] > 0
        assert record["meta"]["activation_bits"] == 16
        assert record["meta"]["positions"] == 128

    def test_die_cache_bench_reuses_dies(self):
        record = bench_die_cache(repeats=1, engines_per_sweep=3)
        assert record["meta"]["cache_misses"] == 1
        assert record["meta"]["cache_hits"] >= 2

    def test_write_payload(self, tmp_path):
        path = tmp_path / "bench.json"
        write_payload(path, {"schema": "x", "records": []})
        assert json.loads(path.read_text()) == {"schema": "x", "records": []}

#!/usr/bin/env python
"""Chaos serving benchmark: fault injection and live-recovery recorder.

Drives the two-tenant mixed-traffic scenario with a scripted chaos
scenario armed — stuck-at faults flipped onto both tenants' live dies at
dispatch boundaries mid-traffic, plus a dispatch-path stall — through
open-loop Poisson arrivals at several offered rates, and records one
``"chaos"`` record per rate into ``BENCH_engine.json``: detection /
recovery / receipt accounting next to the usual throughput and latency
percentiles, merged so the engine suite's and the serving recorders'
records are preserved (schema in ``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke     # < 30 s
    PYTHONPATH=src python benchmarks/bench_chaos.py             # full curve
    PYTHONPATH=src python benchmarks/bench_chaos.py \\
        --rates 100 800 --requests 48 -o /tmp/chaos.json

Every rate point asserts — before anything is recorded — that every
completed request is bit-identical to its tenant's *pre-fault* serial
single-image forward, that every submitted future resolves within a
bounded wait (zero hung futures), and that every injected stuck-at fault
was detected and recovered.  Exits non-zero if any assertion fails or if
fewer than two rate points were recorded.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf import (merge_records_into_file,  # noqa: E402
                        run_chaos_point)

#: offered arrival rates (requests/s) per mode — a light-load point and a
#: saturating one, so recovery cost is readable at both ends of the curve
SMOKE_RATES = (50.0, 400.0)
FULL_RATES = (25.0, 100.0, 400.0, 1600.0)


def format_point(record: dict) -> str:
    results, meta = record["results"], record["meta"]
    health = meta["die_health"]
    return (f"{record['name']:22s} offered {results['offered_rate_rps']:6.0f}"
            f" rps -> served {results['throughput_rps']:6.1f} rps "
            f"(p95 {results['latency_p95_s'] * 1e3:7.2f} ms); "
            f"{results['faults_injected']} events -> "
            f"{results['faults_detected']} detected, "
            f"{results['fault_recoveries']} recovered, "
            f"{results['requests_recovered']} requests carried receipts; "
            f"dies {health['healthy']} healthy / "
            f"{health['quarantined']} quarantined "
            f"(w={meta['workers']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: two rate points, fewer requests")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="offered arrival rates in requests/s "
                             "(default: two smoke points / four full points)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per rate point (default 12 smoke / 48)")
    parser.add_argument("--interactive-fraction", type=float, default=0.4,
                        help="fraction of traffic in the interactive class")
    parser.add_argument("--max-fault-retries", type=int, default=2,
                        help="dispatch retry budget after a detected fault")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-pool size (default: FORMS_WORKERS or "
                             "CPU count)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_engine.json",
                        help="BENCH json to merge records into (default: "
                             "BENCH_engine.json at the repo root)")
    args = parser.parse_args(argv)

    rates = args.rates if args.rates is not None else (
        list(SMOKE_RATES) if args.smoke else list(FULL_RATES))
    requests = args.requests if args.requests is not None else (
        12 if args.smoke else 48)
    if len(rates) < 2:
        print("ERROR: need at least two arrival-rate points for a curve",
              file=sys.stderr)
        return 1

    records = []
    for rate in rates:
        record = run_chaos_point(
            rate, requests, interactive_fraction=args.interactive_fraction,
            max_fault_retries=args.max_fault_retries,
            workers=args.workers, seed=args.seed)
        print(format_point(record))
        records.append(record)

    try:
        merge_records_into_file(args.output, records)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    print(f"[{len(records)} chaos records merged into {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Process-backend mechanics: spawn, ship, fall back, clean up.

The mechanical half of the differential proof (the numerics half lives in
``test_backend_equivalence.py``): worker placement, eager error and
KeyboardInterrupt propagation, closure rejection, graceful fallback when
shared memory is unavailable, nested re-entrancy, per-process die caches
that re-program bit-identical dies, engine pickling that never carries a
lock, and — the leak contract — every ``forms_shm_*`` segment unlinked on
close *and* on terminate.
"""

import glob
import pickle
from functools import partial

import numpy as np
import pytest

from repro.reram import DeviceSpec, DieCache, ReRAMDevice
from repro.runtime import (WorkerPool, parallel_map, process_backend_available,
                           resolve_backend, shared_memory_available)
from repro.runtime import probes
from repro.runtime.process import load_shipment
from repro.runtime.shared import SEGMENT_PREFIX, attach_bytes

pytestmark = pytest.mark.skipif(
    not shared_memory_available()[0],
    reason=f"shared memory unavailable: {shared_memory_available()[1]}")


def shm_segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


@pytest.fixture(scope="module")
def process_pool():
    """One spawn cost for the whole module; leak check at teardown."""
    with WorkerPool(2, backend="process") as pool:
        assert pool.backend == "process"
        yield pool
    assert shm_segments() == []


class TestBackendResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("FORMS_BACKEND", "process")
        assert resolve_backend("thread") == "thread"
        assert resolve_backend(None) == "process"

    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("FORMS_BACKEND", raising=False)
        assert resolve_backend() == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            WorkerPool(2, backend="fork")

    def test_serial_backend_never_builds_executors(self):
        with WorkerPool(4, backend="serial") as pool:
            assert pool.map(probes.square, [1, 2, 3]) == [1, 4, 9]
            assert pool._executor is None
            assert pool._process_executor is None
            assert pool.plane_pool is None

    def test_fallback_to_thread_when_shm_unavailable(self, monkeypatch):
        import repro.runtime.process as process_mod
        monkeypatch.setattr(process_mod, "process_backend_available",
                            lambda: (False, "probe says no"))
        with pytest.warns(RuntimeWarning, match="falling back to threads"):
            pool = WorkerPool(2, backend="process")
        try:
            assert pool.requested_backend == "process"
            assert pool.backend == "thread"
            assert "probe says no" in pool.fallback_reason
            # closures are fine on the fallback tier
            assert pool.map(lambda v: v + 1, [1, 2]) == [2, 3]
        finally:
            pool.close()

    def test_single_worker_process_pool_runs_inline(self):
        with WorkerPool(1, backend="process") as pool:
            pids = [pid for pid, _ in pool.map(probes.pid_square, [1, 2])]
        import os
        assert set(pids) == {os.getpid()}


class TestProcessMapContract:
    def test_ordered_results_across_workers(self, process_pool):
        items = list(range(16))
        assert process_pool.map(probes.square, items) == [i * i for i in items]

    def test_work_spreads_over_worker_processes(self, process_pool):
        import os
        run = partial(probes.pid_sleep_echo, delay=0.4)
        tagged = process_pool.map(run, [0, 1, 2, 3])
        assert [v for _, v in tagged] == [0, 1, 2, 3]
        pids = {pid for pid, _ in tagged}
        assert os.getpid() not in pids
        assert len(pids) == 2, "4 x 0.4s tasks must occupy both workers"

    def test_eager_error_propagation(self, process_pool):
        with pytest.raises(ValueError, match="probe failure on 2"):
            process_pool.map(partial(probes.fail_on, trigger=2), range(8))
        # the pool survives a failed map
        assert process_pool.map(probes.square, [3]) == [9]

    def test_keyboard_interrupt_propagates(self, process_pool):
        with pytest.raises(KeyboardInterrupt):
            process_pool.map(partial(probes.interrupt_on, trigger=1),
                             range(4))
        assert process_pool.map(probes.square, [5, 6]) == [25, 36]

    def test_closures_rejected_with_guidance(self, process_pool):
        local = 3
        with pytest.raises(TypeError, match="functools.partial"):
            process_pool.map(lambda v: v + local, [1, 2])

    def test_supports_closures_property(self, process_pool):
        assert not process_pool.supports_closures
        with WorkerPool(2, backend="thread") as threads:
            assert threads.supports_closures
        with WorkerPool(1, backend="process") as inline:
            assert inline.supports_closures

    def test_nested_process_map_runs_inline_in_worker(self, process_pool):
        import os
        results = process_pool.map(probes.nested_square_map, [10, 20])
        for pid, _ in results:
            assert pid != os.getpid()
        assert [nested for _, nested in results] == \
            [[100, 121, 144], [400, 441, 484]]

    def test_map_from_forms_worker_thread_runs_inline(self, process_pool):
        """Thread-tier re-entrancy still applies to a process pool."""
        import threading
        out = []

        def issue():
            out.append(process_pool.map(probes.square, [2, 3]))

        t = threading.Thread(target=issue, name="forms-worker-reentry")
        t.start()
        t.join()
        assert out == [[4, 9]]


class TestPerProcessDieCache:
    def test_worker_caches_are_per_process(self, process_pool):
        import os
        run = partial(probes.pid_sleep_echo, delay=0.3)
        process_pool.map(run, [0, 1, 2, 3])  # warm both workers
        infos = process_pool.map(probes.worker_cache_info, range(4))
        for pid, _cache_id, _entries in infos:
            assert pid != os.getpid()

    def test_worker_cache_reprograms_identical_bits(self, process_pool):
        """Fresh per-process caches are invisible to the numbers: a die
        programmed in a worker is bit-identical to the parent's."""
        rng = np.random.default_rng(42)
        device = ReRAMDevice(DeviceSpec(), 0.1, seed=7)
        codes = rng.integers(0, 4, size=(3, 8, 4), dtype=np.int64)
        local = DieCache().get_or_program(device, codes)
        (pid, plane), = process_pool.map(probes.program_via_worker_cache,
                                         [(device, codes)])
        np.testing.assert_array_equal(plane, local)

    def test_die_cache_pickles_to_fresh_empty_cache(self):
        rng = np.random.default_rng(0)
        device = ReRAMDevice(DeviceSpec(), 0.0)
        cache = DieCache(maxsize=17)
        cache.get_or_program(device, rng.integers(0, 4, size=(2, 4, 4)))
        assert len(cache) == 1
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.maxsize == 17
        assert len(clone) == 0 and clone.hits == 0 and clone.misses == 0
        # the fresh lock works (a pickled threading.Lock would have raised
        # at dumps time; this asserts the clone is fully functional too)
        clone.get_or_program(device, rng.integers(0, 4, size=(2, 4, 4)))
        assert len(clone) == 1


class TestEnginePickling:
    def test_engine_roundtrip_matches_original(self, random_engine_case):
        rng = np.random.default_rng(99)
        engine, x_int, meta = random_engine_case(rng)
        expected = engine.matvec_int(x_int)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.pool is None and clone.guard is None
        np.testing.assert_array_equal(clone.matvec_int(x_int), expected,
                                      err_msg=str(meta))

    def test_engine_stats_pickle_drops_lock(self):
        from repro.reram.engine import EngineStats
        stats = EngineStats()
        stats.merge(EngineStats(conversions=3, cycles_fed=5))
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.conversions == 3 and clone.cycles_fed == 5
        clone.merge(EngineStats(conversions=1))  # fresh lock must work
        assert clone.conversions == 4


class TestShipments:
    def test_ship_memoizes_by_object_and_version(self, process_pool):
        payload = {"planes": np.zeros((4, 4))}
        first = process_pool.ship(payload, version=0)
        assert process_pool.ship(payload, version=0) is first
        bumped = process_pool.ship(payload, version=1)
        assert bumped is not first
        assert bumped.token != first.token

    def test_ship_requires_process_backend(self):
        with WorkerPool(2, backend="thread") as pool:
            with pytest.raises(RuntimeError, match="process-backend"):
                pool.ship(object())

    def test_shipment_loads_in_parent_too(self, process_pool):
        obj = {"k": np.arange(5)}
        shipment = process_pool.ship(obj, version=0)
        loaded = load_shipment(shipment)
        np.testing.assert_array_equal(loaded["k"], obj["k"])
        assert load_shipment(shipment) is loaded  # token-cached


class TestCleanup:
    """Leak checks are delta-based: the module-scoped pool is still open
    here and legitimately holds its own shipment segments."""

    def test_close_unlinks_every_segment(self):
        before = set(shm_segments())
        pool = WorkerPool(2, backend="process")
        big = np.arange(131072, dtype=np.float64)  # over the 64 KiB floor
        pool.map(probes.square, [1, 2])
        shipment = pool.ship({"plane": big}, version=0)
        assert pool.plane_pool.segment_names(), \
            "shipping a >64KiB array must create segments"
        pool.close()
        with pytest.raises(FileNotFoundError):
            attach_bytes(shipment.payload)
        assert set(shm_segments()) == before

    def test_terminate_unlinks_and_kills(self):
        before = set(shm_segments())
        pool = WorkerPool(2, backend="process")
        pool.map(probes.square, [1, 2, 3])  # force spawn
        executor = pool._process_executor
        procs = list(getattr(executor, "_processes", {}).values())
        assert procs
        pool.terminate()
        for proc in procs:
            assert not proc.is_alive()
        assert set(shm_segments()) == before

    def test_double_close_is_idempotent(self):
        before = set(shm_segments())
        pool = WorkerPool(2, backend="process")
        pool.map(probes.square, [1, 2])
        pool.close()
        pool.close()
        assert set(shm_segments()) == before


class TestParallelMapBackend:
    def test_parallel_map_process_roundtrip(self):
        before = set(shm_segments())
        out = parallel_map(probes.square, range(6), workers=2,
                           backend="process")
        assert out == [i * i for i in range(6)]
        assert set(shm_segments()) == before

    def test_process_backend_available_reports(self):
        ok, reason = process_backend_available()
        assert ok, reason

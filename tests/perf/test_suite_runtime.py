"""Contract tests of the sparse/runtime perf-suite additions."""

from repro.perf.suite import (bench_cell_iv_table, bench_insitu_network,
                              bench_mvm_sparse, default_suite)


class TestSparseBench:
    def test_record_contract_and_workload_shape(self):
        record = bench_mvm_sparse(repeats=1)
        assert record["name"] == "mvm_forms_16bit_128pos_sparse"
        assert record["kind"] == "paired"
        # The acceptance workload: at least half the (bit-plane, fragment)
        # jobs of the post-ReLU block are all-zero.
        assert record["meta"]["zero_plane_fraction"] >= 0.5
        assert record["meta"]["pair_skip_fraction"] > \
            record["meta"]["zero_plane_fraction"]
        # The scheduler must beat the dense kernel decisively (the
        # recorded acceptance floor is 2x; leave headroom for CI noise).
        assert record["speedup"] > 2.0
        stats = record["engine_stats_per_call"]
        assert stats["pairs_skipped"] > 0
        assert stats["pairs_scheduled"] > 0

    def test_in_smoke_plan(self):
        names = default_suite(smoke=True)
        assert "mvm_forms_16bit_128pos_sparse" in names
        assert "insitu_network_batch8_w1" in names
        assert "insitu_network_batch8_w4" in names
        full = default_suite(smoke=False)
        assert "mvm_forms_16bit_128pos_sparse_irdrop" in full
        assert "cell_iv_sinh_table" in full


class TestNetworkBench:
    def test_record_contract(self):
        record = bench_insitu_network(2, repeats=1)
        assert record["name"] == "insitu_network_batch8_w2"
        assert record["meta"]["workers"] == 2
        assert record["meta"]["tile_size"] == 2
        assert record["meta"]["layers"] == 3
        assert record["speedup"] > 1.0
        assert record["engine_stats_per_call"]["conversions"] > 0


class TestCellIVTableBench:
    def test_table_error_recorded_and_tiny(self):
        record = bench_cell_iv_table(repeats=1)
        # interpolation error far below any ADC rounding threshold
        assert record["meta"]["max_abs_error_a"] < 1e-9
        assert record["meta"]["table_points"] > 0

"""Benchmark model topology tests."""

import numpy as np
import pytest

from repro.nn import (VGG, LeNet5, Tensor, build_model, resnet18, resnet20,
                      resnet50, set_init_seed)
from repro.nn.layers import Conv2d, Linear
from repro.nn.models import BasicBlock, Bottleneck


def forward_shape(model, channels=3, size=16, batch=2):
    x = np.zeros((batch, channels, size, size), dtype=np.float32)
    return model(Tensor(x)).shape


class TestLeNet:
    def test_output_shape(self):
        set_init_seed(0)
        model = LeNet5(num_classes=10, in_channels=1, image_size=16)
        assert forward_shape(model, channels=1) == (2, 10)

    def test_width_scaling(self):
        small = LeNet5(width_mult=0.5).num_parameters()
        full = LeNet5(width_mult=1.0).num_parameters()
        assert small < full


class TestVGG:
    @pytest.mark.parametrize("config", ["VGG11", "VGG16"])
    def test_output_shape(self, config):
        set_init_seed(0)
        model = VGG(config, num_classes=7, image_size=16, width_mult=0.2)
        assert forward_shape(model) == (2, 7)

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            VGG("VGG99")

    def test_conv_count_vgg16(self):
        model = VGG("VGG16", width_mult=0.2)
        convs = [m for m in model.modules() if isinstance(m, Conv2d)]
        assert len(convs) == 13  # VGG-16 has 13 conv layers

    def test_small_images_do_not_vanish(self):
        model = VGG("VGG16", num_classes=4, image_size=8, width_mult=0.2)
        assert forward_shape(model, size=8) == (2, 4)


class TestResNet:
    def test_resnet18_shape_and_blocks(self):
        set_init_seed(0)
        model = resnet18(num_classes=5, width_mult=0.25)
        assert forward_shape(model) == (2, 5)
        blocks = [m for m in model.modules() if isinstance(m, BasicBlock)]
        assert len(blocks) == 8  # 2 per stage x 4 stages

    def test_resnet50_uses_bottleneck(self):
        set_init_seed(0)
        model = resnet50(num_classes=5, width_mult=0.125, num_blocks=(1, 1, 1, 1))
        assert forward_shape(model) == (2, 5)
        assert any(isinstance(m, Bottleneck) for m in model.modules())

    def test_resnet20_shallow(self):
        model = resnet20(num_classes=3, width_mult=0.25)
        blocks = [m for m in model.modules() if isinstance(m, BasicBlock)]
        assert len(blocks) == 4

    def test_shortcut_projection_on_stride(self):
        block = BasicBlock(8, 16, stride=2)
        assert len(block.shortcut) > 0
        block_same = BasicBlock(16, 16, stride=1)
        assert len(block_same.shortcut) == 0

    def test_classifier_dimension_matches_expansion(self):
        model = resnet50(num_classes=9, width_mult=0.125, num_blocks=(1, 1, 1, 1))
        fc = [m for m in model.modules() if isinstance(m, Linear)][-1]
        assert fc.out_features == 9


class TestBuildModel:
    @pytest.mark.parametrize("name", ["lenet5", "vgg11", "vgg16", "resnet18",
                                      "resnet20", "resnet50"])
    def test_builds_and_runs(self, name):
        set_init_seed(1)
        channels = 1 if name == "lenet5" else 3
        model = build_model(name, 6, channels, 16, width_mult=0.2, depth_scale=0.4)
        assert forward_shape(model, channels=channels) == (2, 6)

    def test_depth_scale_reduces_parameters(self):
        set_init_seed(1)
        deep = build_model("resnet50", 10, 3, 16, width_mult=0.125, depth_scale=1.0)
        shallow = build_model("resnet50", 10, 3, 16, width_mult=0.125, depth_scale=0.34)
        assert shallow.num_parameters() < deep.num_parameters()

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet", 10, 3, 16)

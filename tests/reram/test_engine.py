"""In-situ engine tests — the exactness anchor of the whole simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FragmentGeometry, QuantizationSpec
from repro.core.polarization import compute_signs, project_polarization
from repro.reram import (ADCSpec, DeviceSpec, ReRAMDevice, SignIndicator,
                         build_engine, infer_signs)


def polarized_levels(rng, shape=(4, 2, 3, 3), m=4, qmax=127):
    """Random polarized integer levels + geometry."""
    geom = FragmentGeometry(shape, m)
    w = rng.normal(size=shape)
    signs = compute_signs(w, geom)
    w = project_polarization(w, geom, signs)
    levels = np.clip(np.rint(w * qmax / (np.abs(w).max() + 1e-9)),
                     -qmax, qmax).astype(np.int64)
    return geom.matrix(levels), geom


@pytest.fixture()
def case(rng):
    levels, geom = polarized_levels(rng)
    x = rng.integers(0, 2 ** 12, size=(geom.rows, 7))
    return levels, geom, x


class TestExactness:
    @pytest.mark.parametrize("scheme", ["forms", "isaac_offset", "dual"])
    def test_matches_integer_matmul(self, case, scheme):
        levels, geom, x = case
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                              scheme=scheme, activation_bits=12)
        np.testing.assert_array_equal(engine.matvec_int(x), levels.T @ x)

    def test_matvec_float_scaling(self, case):
        levels, geom, x = case
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                              activation_bits=12)
        out = engine.matvec_float(x, weight_scale=0.5, activation_scale=0.25)
        np.testing.assert_allclose(out, (levels.T @ x) * 0.125)

    def test_1d_input(self, case):
        levels, geom, x = case
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                              activation_bits=12)
        np.testing.assert_array_equal(engine.matvec_int(x[:, 0]).reshape(-1),
                                      levels.T @ x[:, 0])


class TestZeroSkipping:
    def test_cycles_match_max_effective_bits(self, rng):
        levels, geom = polarized_levels(rng)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                              activation_bits=16)
        x = np.full((geom.rows, 3), 0b101, dtype=np.int64)  # 3 effective bits
        engine.matvec_int(x)
        assert engine.stats.cycles_fed == 3

    def test_zero_inputs_feed_nothing(self, rng):
        levels, geom = polarized_levels(rng)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                              activation_bits=16)
        out = engine.matvec_int(np.zeros((geom.rows, 2), dtype=np.int64))
        np.testing.assert_array_equal(out, 0)
        assert engine.stats.cycles_fed == 0

    def test_skipping_never_changes_result(self, rng):
        levels, geom = polarized_levels(rng)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                              activation_bits=16)
        x = rng.integers(0, 16, size=(geom.rows, 5))  # small values -> heavy skip
        np.testing.assert_array_equal(engine.matvec_int(x), levels.T @ x)
        assert engine.stats.cycles_fed <= 4


class TestADCSaturation:
    def test_undersized_adc_clips(self, rng):
        levels, geom = polarized_levels(rng)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        exact = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                             activation_bits=8)
        clipped = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                               scheme="forms", adc=ADCSpec(bits=2),
                               activation_bits=8)
        x = np.full((geom.rows, 4), 255, dtype=np.int64)
        exact_out = exact.matvec_int(x)
        clip_out = clipped.matvec_int(x)
        assert clipped.stats.saturation_fraction > 0.0
        assert np.abs(clip_out).sum() < np.abs(exact_out).sum()

    def test_default_adc_sized_for_exactness(self, rng):
        levels, geom = polarized_levels(rng)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                              activation_bits=8)
        x = np.full((geom.rows, 2), 255, dtype=np.int64)
        engine.matvec_int(x)
        assert engine.stats.saturation_fraction == 0.0


class TestVariation:
    def test_error_grows_with_sigma(self, rng):
        levels, geom = polarized_levels(rng, shape=(8, 4, 3, 3))
        x = rng.integers(0, 2 ** 8, size=(geom.rows, 16))
        expected = levels.T @ x
        errors = []
        for sigma in (0.02, 0.1, 0.3):
            device = ReRAMDevice(DeviceSpec(), variation_sigma=sigma, seed=1)
            engine = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                                  activation_bits=8)
            out = engine.matvec_int(x)
            errors.append(np.abs(out - expected).mean() / np.abs(expected).mean())
        assert errors[0] < errors[1] < errors[2]
        assert errors[0] < 0.05


class TestSignIndicator:
    def test_apply_negates_negative_fragments(self):
        signs = np.array([[1.0, -1.0]])
        si = SignIndicator(signs)
        values = np.ones((1, 2, 3))
        out = si.apply(values)
        np.testing.assert_array_equal(out[0, 0], 1.0)
        np.testing.assert_array_equal(out[0, 1], -1.0)

    def test_rejects_invalid_signs(self):
        with pytest.raises(ValueError):
            SignIndicator(np.array([[0.5]]))

    def test_bits_encoding(self):
        si = SignIndicator(np.array([[1.0, -1.0, 1.0]]))
        np.testing.assert_array_equal(si.bits, [[0, 1, 0]])


class TestInputValidation:
    def test_rejects_float_inputs(self, case):
        levels, geom, _ = case
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2), device)
        with pytest.raises(TypeError):
            engine.matvec_int(np.zeros((geom.rows, 2)))

    def test_rejects_out_of_range(self, case):
        levels, geom, _ = case
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                              activation_bits=4)
        with pytest.raises(ValueError):
            engine.matvec_int(np.full((geom.rows, 1), 16, dtype=np.int64))

    def test_rejects_row_mismatch(self, case):
        levels, geom, _ = case
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QuantizationSpec(8, 2), device)
        with pytest.raises(ValueError):
            engine.matvec_int(np.zeros((geom.rows + 1, 1), dtype=np.int64))


@given(st.integers(0, 10_000), st.sampled_from(["forms", "isaac_offset", "dual"]),
       st.integers(1, 3), st.integers(2, 8))
@settings(max_examples=25, deadline=None)
def test_exactness_property(seed, scheme, cols_scale, m):
    """For ANY polarized weights, ANY inputs, ANY scheme: the ideal bit-serial
    engine reproduces the integer matmul exactly."""
    rng = np.random.default_rng(seed)
    levels, geom = polarized_levels(rng, shape=(2 * cols_scale, 1, 3, 3), m=m)
    x = rng.integers(0, 2 ** 10, size=(geom.rows, 3))
    device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
    engine = build_engine(levels, geom, QuantizationSpec(8, 2), device,
                          scheme=scheme, activation_bits=10)
    np.testing.assert_array_equal(engine.matvec_int(x), levels.T @ x)

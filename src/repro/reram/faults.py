"""Online die-fault injection, checksum detection and live recovery.

The static fault-tolerance machinery (``repro.core.fault_tolerance``,
paper Sec. V-E) assumes the die's fault map is known at programming time.
This module supplies the *online* half for the serving stack:

* :class:`DieGuard` — an ABFT-style checksum guard attached to one
  :class:`~repro.reram.engine.InSituLayerEngine`.  At attach (and after
  every re-program) it records per-fragment **sentinel column sums** of the
  programmed code planes — the simulation image of an all-ones audit read
  driven through the crossbar, exactly what a hardware checksum row yields.
  Every MVM re-derives the audited fragments' sums from the live die and
  raises :class:`DieFaultDetected` on any mismatch, *before* a wrong answer
  can be computed.  Audit placement is **sensitivity-weighted**: fragments
  are ranked by the effective weight mass they carry
  (:func:`fragment_sensitivity`, cf. the sensitivity-aware precision work
  in PAPERS.md), a ``coverage`` fraction of the heaviest fragments is
  audited on every MVM, and a periodic full audit bounds the detection
  latency for the light tail.
* :class:`FaultInjector` — a seeded, deterministic chaos driver that flips
  a live die to a stuck-at fault map (:data:`~repro.reram.nonideal.
  FAULT_SA0` / :data:`~repro.reram.nonideal.FAULT_SA1` semantics via
  :class:`~repro.reram.nonideal.FaultModel`), delays or crashes a dispatch,
  and scripts multi-event scenarios keyed to dispatch counts
  (:class:`FaultEvent`).
* the recovery hand-off — :meth:`DieGuard.diagnose` re-reads the
  quarantined die against the healthy reference and classifies the stuck
  cells (:func:`repro.core.fault_tolerance.diagnose_stuck_codes`);
  :meth:`DieGuard.plan_remap` runs the [29]-style column-remapping /
  differential-encoding planner on the diagnosis; :meth:`DieGuard.restore`
  programs the replacement die through the shared
  :class:`~repro.reram.engine.DieCache` (a cache *hit* — the healthy codes
  are still keyed there — which is exactly why the online re-program is
  cheap) and swaps it in via
  :meth:`~repro.reram.engine.InSituLayerEngine.swap_planes`.

Because recovery restores the exact healthy code planes and conductance,
every request served after (or retried across) a recovery is bit-identical
to a fault-free serial forward — the serving stack's contract, proven in
``tests/serving/test_fault_recovery.py`` and the chaos harness
(``repro.perf.chaos``).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .nonideal import FaultModel

__all__ = [
    "DieFaultDetected", "DieGuard", "FaultEvent", "FaultInjector",
    "InjectedDispatchError", "fragment_sensitivity", "rank_engines_by_sensitivity",
]

#: event kinds a :class:`FaultInjector` scenario may script
EVENT_STUCK_AT = "stuck_at"
EVENT_DELAY = "delay"
EVENT_CRASH = "crash"
_EVENT_KINDS = (EVENT_STUCK_AT, EVENT_DELAY, EVENT_CRASH)


class DieFaultDetected(RuntimeError):
    """A checksum audit found the programmed die diverged from its sentinel.

    ``engine`` is the guarded engine that tripped; ``planes`` the code
    planes whose sentinel sums mismatched; ``fragments`` maps each such
    plane to the indices of its corrupted fragments.  Raised from the MVM
    entry point *before* the faulty die computes anything — detection is
    fail-stop, never a silent wrong answer.
    """

    def __init__(self, engine, planes: Sequence[str],
                 fragments: Dict[str, np.ndarray]):
        detail = ", ".join(
            f"{plane}:{np.asarray(fragments[plane]).tolist()}"
            for plane in planes)
        super().__init__(
            f"die checksum mismatch on plane(s) [{detail}] — "
            f"fragment sentinel sums diverged from the programmed reference")
        self.engine = engine
        self.planes = tuple(planes)
        self.fragments = fragments


class InjectedDispatchError(RuntimeError):
    """A scripted chaos event crashed this dispatch on purpose."""


def fragment_sensitivity(engine) -> np.ndarray:
    """Effective weight mass per fragment — the audit-placement weight.

    Recombines each fragment's code planes through the engine's
    shift-and-add place values and sums the magnitudes: fragments carrying
    the most effective weight corrupt outputs the most when stuck, so they
    are audited first (and always, at any ``coverage``).
    """
    planes = engine.mapped.code_planes
    place = engine._place.astype(np.float64)
    n_frag = next(iter(planes.values())).shape[0]
    weight = np.zeros(n_frag, dtype=np.float64)
    for codes in planes.values():
        weight += (codes.astype(np.float64) * place).sum(axis=(1, 2, 3))
    return weight


def rank_engines_by_sensitivity(engines: Dict[str, object]) -> List[str]:
    """Engine names ordered by total effective weight mass, heaviest first.

    The default targeting order of :class:`FaultInjector` (hit where it
    hurts) and a reasonable arming order when only a budgeted subset of
    layers can carry guards.
    """
    totals = {name: float(fragment_sensitivity(engine).sum())
              for name, engine in engines.items()}
    return sorted(totals, key=lambda name: (-totals[name], name))


class DieGuard:
    """Checksum guard over one engine's programmed die.

    Parameters
    ----------
    engine:
        The :class:`~repro.reram.engine.InSituLayerEngine` to guard.  The
        guard snapshots the healthy code planes (the re-read reference and
        the recovery source) and their sentinel sums at attach time.
    coverage:
        Fraction of fragments audited on *every* MVM, chosen
        sensitivity-first (1.0 = every fragment every MVM — the chaos
        harness default, making detection immediate and deterministic).
    full_audit_every:
        Every Nth check audits all fragments regardless of ``coverage``,
        bounding detection latency for fragments outside the hot set.

    The guard does not attach itself: setting ``engine.guard = guard`` is
    the caller's decision (the serving stack arms guards per model).
    """

    def __init__(self, engine, coverage: float = 1.0,
                 full_audit_every: int = 16):
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        if full_audit_every < 1:
            raise ValueError("full_audit_every must be >= 1")
        self.coverage = coverage
        self.full_audit_every = full_audit_every
        self.reference: Dict[str, np.ndarray] = {
            plane: codes.copy()
            for plane, codes in engine.mapped.code_planes.items()}
        # healthy conductance is retained by reference, not copied: plane
        # arrays are rebound, never mutated (swap_planes contract), so these
        # are exactly the arrays the engine served healthy traffic from
        self._healthy_conductance: Dict[str, np.ndarray] = dict(
            engine.conductance)
        self._sentinels: Dict[str, np.ndarray] = {
            plane: codes.sum(axis=1, dtype=np.int64)
            for plane, codes in self.reference.items()}
        weight = fragment_sensitivity(engine)
        n_frag = weight.shape[0]
        n_audit = max(1, int(math.ceil(coverage * n_frag)))
        order = np.argsort(-weight, kind="stable")
        self.audit_fragments = np.sort(order[:n_audit])
        self._audits_all = n_audit >= n_frag
        self._lock = threading.Lock()
        self.checks = 0
        self.faults_detected = 0

    # ------------------------------------------------------------------
    def check(self, engine) -> None:
        """One per-MVM audit; raises :class:`DieFaultDetected` on mismatch."""
        with self._lock:
            self.checks += 1
            full = self._audits_all or (self.checks % self.full_audit_every
                                        == 0)
        frags = None if full else self.audit_fragments
        bad_planes: List[str] = []
        bad_fragments: Dict[str, np.ndarray] = {}
        for plane, sentinel in self._sentinels.items():
            codes = engine.mapped.code_planes[plane]
            if frags is None:
                observed = codes.sum(axis=1, dtype=np.int64)
                expected = sentinel
                index = np.arange(sentinel.shape[0])
            else:
                observed = codes[frags].sum(axis=1, dtype=np.int64)
                expected = sentinel[frags]
                index = frags
            mismatch = (observed != expected).any(axis=(1, 2))
            if mismatch.any():
                bad_planes.append(plane)
                bad_fragments[plane] = index[mismatch]
        if bad_planes:
            with self._lock:
                self.faults_detected += 1
            raise DieFaultDetected(engine, bad_planes, bad_fragments)

    # ------------------------------------------------------------------
    def diagnose(self, engine) -> Dict[str, np.ndarray]:
        """Re-read the suspect die: per-plane cell-granularity stuck masks."""
        from ..core.fault_tolerance import diagnose_stuck_codes
        levels = 1 << engine.mapped.spec.cell_bits
        return {plane: diagnose_stuck_codes(reference,
                                            engine.mapped.code_planes[plane],
                                            levels)
                for plane, reference in self.reference.items()}

    def plan_remap(self, engine, config=None) -> Dict[str, object]:
        """[29]-style mitigation plans for the quarantined die, per plane.

        Runs :func:`repro.core.fault_tolerance.plan_die_recovery` on every
        plane that diverged — the online re-map decision (could this die be
        rehabilitated in place, and at what residual impact?) recorded on
        the recovery receipt while the replacement is programmed.
        """
        from ..core.fault_tolerance import MitigationConfig, plan_die_recovery
        if config is None:
            config = MitigationConfig()
        levels = 1 << engine.mapped.spec.cell_bits
        plans: Dict[str, object] = {}
        for plane, reference in self.reference.items():
            observed = engine.mapped.code_planes[plane]
            if observed is reference or np.array_equal(observed, reference):
                continue
            _, plan = plan_die_recovery(reference, observed, engine._place,
                                        levels, config)
            plans[plane] = plan
        return plans

    def restore(self, engine, die_cache=None) -> Dict[str, object]:
        """Swap the healthy replacement die in; returns re-program info.

        With ``die_cache`` (the serving path), the replacement conductance
        is programmed through :meth:`DieCache.get_or_program` — the healthy
        codes are still keyed in the cache, so this is a cache *hit*
        returning the very plane the engine served healthy traffic from.
        Without a cache, the retained healthy conductance is re-bound
        directly.  Either way the restored die is bit-identical to the
        original, which is what makes retried requests provably equal to a
        fault-free forward.
        """
        hits_before = die_cache.hits if die_cache is not None else 0
        conductance: Dict[str, np.ndarray] = {}
        for plane, reference in self.reference.items():
            if die_cache is not None:
                conductance[plane] = die_cache.get_or_program(engine.device,
                                                              reference)
            else:
                conductance[plane] = self._healthy_conductance[plane]
        engine.swap_planes(dict(self.reference), conductance)
        return {
            "planes": sorted(self.reference),
            "via_die_cache": die_cache is not None,
            "cache_hits": (die_cache.hits - hits_before
                           if die_cache is not None else 0),
        }


# ---------------------------------------------------------------------------
# Scripted chaos
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultEvent:
    """One scripted chaos event, keyed to a dispatch count.

    ``at_dispatch`` triggers the event at the first dispatch boundary whose
    zero-based dispatch count reaches it (dispatch counts, not wall time,
    keep scenarios deterministic under scheduling jitter).  ``kind``:

    * ``"stuck_at"`` — flip ``model``'s die (``layer``, or the most
      sensitive engine) to a stuck-at fault map sampled at
      ``sa0_rate`` / ``sa1_rate``;
    * ``"delay"`` — sleep ``delay_s`` on the dispatch path (a slow die /
      stalled worker stand-in);
    * ``"crash"`` — raise :class:`InjectedDispatchError` from the dispatch
      (worker-failure containment: the batch fails fast and loud, the
      server keeps serving).
    """

    kind: str
    at_dispatch: int = 0
    model: Optional[str] = None
    layer: Optional[str] = None
    sa0_rate: float = 0.01
    sa1_rate: float = 0.002
    delay_s: float = 0.0

    def __post_init__(self):
        if self.kind not in _EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; "
                             f"expected one of {_EVENT_KINDS}")
        if self.at_dispatch < 0:
            raise ValueError("at_dispatch must be >= 0")
        if not 0.0 <= self.sa0_rate <= 1.0 or not 0.0 <= self.sa1_rate <= 1.0:
            raise ValueError("fault rates must lie in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def as_dict(self) -> Dict:
        return {"kind": self.kind, "at_dispatch": self.at_dispatch,
                "model": self.model, "layer": self.layer,
                "sa0_rate": self.sa0_rate, "sa1_rate": self.sa1_rate,
                "delay_s": self.delay_s}


class FaultInjector:
    """Seeded, deterministic chaos driver for the serving stack.

    The server calls :meth:`on_dispatch` at every dispatch boundary (on the
    batcher thread — the only safe point to mutate dies, since no MVMs are
    in flight between dispatches).  Scripted :class:`FaultEvent`\\ s whose
    ``at_dispatch`` has come due are applied there, each exactly once.
    Fault maps are sampled from per-event substreams of ``seed``, so a
    scenario replays the same stuck cells on every run.

    :meth:`flip_die` is also directly callable (tests, notebooks): it
    samples a stuck-at map, realizes it on the engine's code planes,
    re-programs the die's conductance from the faulty codes and invalidates
    the engine's folded tier constants — all three bit-exact compute tiers
    then serve the faulty die, which is what makes checksum detection (and
    nothing else) the thing standing between a stuck cell and a wrong
    answer.
    """

    def __init__(self, events: Sequence[FaultEvent] = (), seed: int = 0):
        self.seed = seed
        self._pending: List[Tuple[int, FaultEvent]] = sorted(
            enumerate(events), key=lambda pair: (pair[1].at_dispatch, pair[0]))
        self._lock = threading.Lock()
        self.dispatch_count = 0
        #: application log, one dict per applied event (JSON-ready)
        self.injected: List[Dict] = []

    # ------------------------------------------------------------------
    def flip_die(self, engine, *, sa0_rate: float = 0.01,
                 sa1_rate: float = 0.002, plane: Optional[str] = None,
                 substream: int = 0) -> Dict:
        """Flip a live die to a sampled stuck-at fault map; returns a log
        entry with the per-plane stuck-cell counts."""
        levels = 1 << engine.mapped.spec.cell_bits
        planes = ([plane] if plane is not None
                  else sorted(engine.mapped.code_planes))
        faulty_codes: Dict[str, np.ndarray] = {}
        conductance: Dict[str, np.ndarray] = {}
        cells: Dict[str, int] = {}
        for index, name in enumerate(planes):
            codes = engine.mapped.code_planes[name]
            model = FaultModel(sa0_rate, sa1_rate,
                               seed=self.seed * 1000003 + substream * 101
                               + index)
            mask = model.sample(codes.shape)
            faulty = FaultModel.apply_to_codes(codes, mask, levels)
            faulty_codes[name] = faulty
            conductance[name] = engine.device.program(faulty)
            cells[name] = int((mask != 0).sum())
        engine.swap_planes(faulty_codes, conductance)
        return {"planes": planes, "stuck_cells": cells,
                "stuck_cells_total": int(sum(cells.values()))}

    # ------------------------------------------------------------------
    def _resolve_engine(self, server, event: FaultEvent):
        entry = server.registry.get(event.model)
        if not entry.engines:
            return entry.name, None, None
        if event.layer is not None:
            return entry.name, event.layer, entry.engines[event.layer]
        layer = rank_engines_by_sensitivity(entry.engines)[0]
        return entry.name, layer, entry.engines[layer]

    def on_dispatch(self, server) -> None:
        """Apply every scripted event that has come due (exactly once).

        Runs on the batcher thread at a dispatch boundary.  A ``"crash"``
        event raises after any earlier due events applied — the dispatch
        dies, the batch's futures fail with
        :class:`InjectedDispatchError`, and the server keeps serving.
        """
        with self._lock:
            count = self.dispatch_count
            self.dispatch_count += 1
            due = [pair for pair in self._pending
                   if pair[1].at_dispatch <= count]
            for pair in due:
                self._pending.remove(pair)
        crash: Optional[FaultEvent] = None
        for index, event in due:
            entry = dict(event.as_dict(), dispatch=count)
            if event.kind == EVENT_STUCK_AT:
                name, layer, engine = self._resolve_engine(server, event)
                entry["model"] = name
                entry["layer"] = layer
                if engine is None:
                    entry["skipped"] = "model has no in-situ engines"
                else:
                    entry.update(self.flip_die(engine,
                                               sa0_rate=event.sa0_rate,
                                               sa1_rate=event.sa1_rate,
                                               substream=index))
            elif event.kind == EVENT_DELAY:
                time.sleep(event.delay_s)
            else:
                crash = event
            with self._lock:
                self.injected.append(entry)
        if crash is not None:
            raise InjectedDispatchError(
                f"chaos event crashed dispatch {count} on purpose "
                f"(scripted at_dispatch={crash.at_dispatch})")

    # ------------------------------------------------------------------
    @property
    def pending(self) -> List[FaultEvent]:
        """Events not yet applied (scenario progress gauge)."""
        with self._lock:
            return [event for _, event in self._pending]

    def log(self) -> List[Dict]:
        """JSON-ready copy of everything applied so far."""
        with self._lock:
            return [dict(entry) for entry in self.injected]

"""The SLA-scheduled inference server over the ``repro.runtime`` executor.

:class:`InferenceServer` is the "traffic" front end of the stack: callers
submit *single images* — optionally naming a registered model, a priority
class and a per-request deadline — and the server coalesces concurrent
submissions into batches under the :class:`~repro.serving.scheduler.
SlaPolicy` in force, dispatching each batch through
:func:`repro.runtime.infer_tiles` on the shared
:class:`~repro.runtime.WorkerPool` — one tile per request, so every
worker chews on a different request of the batch and deep batches
pipeline through different layers concurrently.

Multi-tenancy and scheduling
----------------------------
The server fronts a :class:`~repro.serving.registry.ModelRegistry`
(several in-situ networks over one pool and one
:class:`~repro.reram.DieCache`) and an
:class:`~repro.serving.scheduler.SlaQueue`: strict class precedence,
earliest-deadline-first within a class, per-class coalescing knobs,
deadline/latency-bound shedding (an explicit
:class:`~repro.serving.scheduler.ShedReceipt` via
:class:`~repro.serving.scheduler.RequestShed`, never a hang) and an
optional :class:`~repro.serving.scheduler.AdmissionController` that
refuses intake from the occupancy/queue-depth gauges before the queue
melts down.

The classic single-model FIFO server is the degenerate configuration —
``InferenceServer(network)`` wraps the network in a private registry and
runs :meth:`SlaPolicy.fifo`: one class, no deadlines, no shedding, the
same ``max_batch`` / ``max_wait_s`` semantics as always.

Bit-identity guarantee
----------------------
A served result is **bit-identical** to a direct single-image
``run_network_serial`` call on the same image through the same model —
at any batch composition, arrival order, worker count, tenant mix and
scheduling outcome (shedding other requests never perturbs survivors).
Three properties of the lower layers make this structural (see
``repro/runtime/network.py``):

* one tile per request: batching never changes the quantization grid an
  image sees, because the engines are called per image exactly as in the
  serial path;
* worker-count invariance of the tiled executor (ordered merge, no
  cross-tile floating-point accumulation);
* per-job keyed read-noise substreams: a noisy engine draws each job's
  noise from (input digest, plane, bit, fragment), so *which batch* a
  request rode in — or which requests were shed around it — cannot
  change its noise.

``tests/serving/`` asserts the guarantee end to end, read noise included.

Per-request stats
-----------------
Each result carries a :class:`~repro.serving.stats.RequestStats`: queue
wait, the batch it rode in, its model and priority class, and the exact
slice of the shared engines' :class:`~repro.reram.engine.EngineStats` its
tile accounted for (summing the slices over requests reproduces the
engines' merged totals — tested).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..reram import DieCache
from ..runtime import WorkerPool, infer_tiles
from .queue import Batcher
from .registry import ModelRegistry, RegisteredModel
from .scheduler import (SHED_ADMISSION, AdmissionController, RequestShed,
                        ShedReceipt, SlaPolicy, SlaQueue, SlaRequest)
from .stats import RequestStats, ServedResult, ServerStats

#: the model name a single-model server registers its network under
DEFAULT_MODEL = "default"


class InferenceServer:
    """SLA-scheduled single-image inference over shared in-situ networks.

    Parameters
    ----------
    model:
        A callable network (typically the in-situ model returned by
        :func:`repro.reram.build_insitu_network`) — the single-model
        convenience path; it is registered as ``"default"`` in a private
        :class:`~repro.serving.registry.ModelRegistry`.  Mutually
        exclusive with ``registry``.
    registry:
        A caller-owned :class:`~repro.serving.registry.ModelRegistry` —
        the multi-tenant path.  The registry (and its pool) is borrowed:
        left open at shutdown.
    policy / admission:
        The :class:`~repro.serving.scheduler.SlaPolicy` scheduling the
        queue (default: :meth:`SlaPolicy.fifo` built from ``max_batch`` /
        ``max_wait_s``) and an optional
        :class:`~repro.serving.scheduler.AdmissionController`.
    max_batch / max_wait_s:
        The FIFO coalescing knobs — used only to build the default
        policy; ignored when ``policy`` is given (each class carries its
        own knobs).
    workers / pool:
        Pool configuration for the private registry of the single-model
        path.  With ``registry`` the pool travels with the registry and
        these must be left unset.

    Use as a context manager, or call :meth:`shutdown` — in-flight and
    queued requests are drained before the server stops (queued requests
    remain subject to deadline/latency-bound shedding while draining).
    """

    def __init__(self, model=None, *, registry: Optional[ModelRegistry] = None,
                 policy: Optional[SlaPolicy] = None,
                 admission: Optional[AdmissionController] = None,
                 max_batch: int = 8, max_wait_s: float = 0.002,
                 workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None):
        if (model is None) == (registry is None):
            raise ValueError("pass exactly one of model= or registry=")
        if registry is not None and (workers is not None or pool is not None):
            raise ValueError("workers/pool travel with the registry; "
                             "configure them on the ModelRegistry")
        if registry is None:
            # private registry: closed at shutdown (ModelRegistry.close
            # leaves a borrowed ``pool`` open, so ownership is safe)
            self.registry = ModelRegistry(pool=pool, workers=workers)
            self.registry.register_network(DEFAULT_MODEL, model)
            self._owns_registry = True
        else:
            self.registry = registry
            self._owns_registry = False
        self.policy = (policy if policy is not None
                       else SlaPolicy.fifo(max_batch=max_batch,
                                           max_wait_s=max_wait_s))
        self.admission = admission
        self.stats = ServerStats()
        self.queue = SlaQueue(self.policy, on_shed=self.stats.record_shed)
        self._ids = itertools.count()
        self._batch_ids = itertools.count()
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        # the SLA queue carries its per-class coalescing knobs in the
        # policy, so the batcher needs none of its own
        self.batcher = Batcher(self.queue, self._dispatch)
        self.batcher.start()

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model, config, device, *, adc=None,
                   activation_bits: int = 16, engine_cls=None,
                   die_cache: Optional[DieCache] = None,
                   policy: Optional[SlaPolicy] = None,
                   admission: Optional[AdmissionController] = None,
                   max_batch: int = 8, max_wait_s: float = 0.002,
                   workers: Optional[int] = None,
                   pool: Optional[WorkerPool] = None,
                   **engine_kwargs) -> "InferenceServer":
        """Build the in-situ network and serve it.

        Convenience constructor: lowers ``model`` through
        :func:`repro.reram.build_insitu_network` into a private
        single-model registry with a shared :class:`~repro.reram.DieCache`
        (created if not given), so a server rebuilt across sweep points —
        or several servers over the same weights — reuses programmed
        dies.  The engines dict and the cache stay reachable as
        ``server.engines`` / ``server.die_cache``.
        """
        registry = ModelRegistry(die_cache=die_cache, pool=pool,
                                 workers=workers)
        try:
            registry.register(DEFAULT_MODEL, model, config, device, adc=adc,
                              activation_bits=activation_bits,
                              engine_cls=engine_cls, **engine_kwargs)
            server = cls(registry=registry, policy=policy,
                         admission=admission, max_batch=max_batch,
                         max_wait_s=max_wait_s)
        except BaseException:
            registry.close()
            raise
        # the private registry is an implementation detail here: the
        # server owns it (and thereby the pool, unless ``pool`` was
        # borrowed — ModelRegistry.close leaves a borrowed pool open)
        server._owns_registry = True
        return server

    # ------------------------------------------------------------------
    # single-model conveniences (the pre-registry surface, kept working)
    @property
    def pool(self) -> WorkerPool:
        return self.registry.pool

    @property
    def die_cache(self) -> DieCache:
        return self.registry.die_cache

    @property
    def model(self):
        """The sole registered network (multi-tenant servers: use
        ``server.registry.get(name).network``)."""
        return self.registry.get(None).network

    @property
    def engines(self) -> Dict:
        """The sole registered model's engines dict (may be empty when
        the server was handed a bare callable)."""
        return self.registry.get(None).engines

    # ------------------------------------------------------------------
    def submit_async(self, image: np.ndarray, *,
                     model: Optional[str] = None,
                     priority: Optional[str] = None,
                     deadline_s: Optional[float] = None) -> Future:
        """Enqueue one image; the future resolves to a
        :class:`ServedResult` — or raises
        :class:`~repro.serving.scheduler.RequestShed` if the request was
        shed (deadline expired in queue, class latency bound hit, or
        refused at admission).

        ``model`` defaults to the sole registered model; ``priority``
        defaults to the policy's lowest-precedence class; ``deadline_s``
        is a relative latency budget — the request is shed, never
        dispatched, once it has been queued that long.
        """
        image = np.asarray(image)
        if image.ndim < 1:
            raise ValueError("image must be at least 1-D (no batch axis)")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 (or None)")
        with self._shutdown_lock:
            if self._shut_down:
                raise RuntimeError("server is shut down")
            # resolve + validate at the offending request, not at batch
            # stacking where failures would hit innocent batch mates
            entry = self.registry.get(model)
            self.registry.pin_shape(entry, image.shape)
            rank = self.policy.rank_of(priority)
            cls = self.policy.classes[rank]
            request_id = next(self._ids)
            if self.admission is not None and not self.admission.admit(
                    self.queue.depth, self.stats.occupancy()):
                receipt = ShedReceipt(
                    request_id=request_id, model=entry.name,
                    priority_class=cls.name, reason=SHED_ADMISSION,
                    queue_wait_s=0.0, deadline_s=deadline_s)
                self.stats.record_shed(receipt)
                refused: Future = Future()
                refused.set_exception(RequestShed(receipt))
                return refused
            request = SlaRequest(
                request_id=request_id, image=image, model=entry.name,
                class_rank=rank, priority_class=cls.name,
                deadline_t=(time.monotonic() + deadline_s
                            if deadline_s is not None else None),
                deadline_s=deadline_s, entry=entry)
            self.queue.put(request)
        return request.future

    def submit(self, image: np.ndarray, timeout: Optional[float] = None,
               **kwargs) -> ServedResult:
        """Serve one image, blocking until its batch completes (raises
        :class:`RequestShed` if it is shed instead)."""
        return self.submit_async(image, **kwargs).result(timeout)

    def submit_many(self, images: Iterable[np.ndarray],
                    timeout: Optional[float] = None,
                    **kwargs) -> List[ServedResult]:
        """Enqueue every image first, then wait — they may share batches."""
        futures = [self.submit_async(image, **kwargs) for image in images]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------
    def server_stats(self) -> Dict:
        """Operational snapshot (see :meth:`ServerStats.snapshot`)."""
        return self.stats.snapshot(queue_depth=self.queue.depth)

    def registry_stats(self) -> Dict:
        """Structural snapshot of the tenant registry (die reuse etc.)."""
        return self.registry.stats()

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Drain queued and in-flight requests, then stop.

        New submissions are refused immediately; everything already
        accepted is served (or shed, if its deadline expires while the
        drain is in progress).  Idempotent.  A server-owned registry
        (single-model path, ``from_model``) is closed once the batcher
        has drained; if ``timeout`` expires first it is left open so the
        background drain can still complete (closing the pool would fail
        accepted requests with a pool error) — a caller-owned registry
        is always left open.
        """
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
            self.queue.close()
        self.batcher.join(timeout)
        if self._owns_registry and not self.batcher.is_alive():
            self.registry.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def _dispatch(self, batch: List[SlaRequest]) -> None:
        """Run one coalesced batch: one tile per request, shared pool.

        The scheduler guarantees every request of a batch targets the
        same model, so one network forward serves them all.  The entry
        was resolved (and pinned on the request) at submit time, so an
        unregister between submit and dispatch cannot fail the batch.
        """
        dispatch_t = time.monotonic()
        batch_id = next(self._batch_ids)
        entry = batch[0].entry
        tiles = [slice(i, i + 1) for i in range(len(batch))]
        try:
            stacked = np.stack([request.image for request in batch])
            results = infer_tiles(entry.network, stacked, tiles,
                                  pool=self.pool, collect_stats=True)
        except BaseException:
            self.stats.record_failure(len(batch))
            raise  # the batcher fails this batch's futures

        done_t = time.monotonic()
        self.stats.record_batch(len(batch), done_t - dispatch_t)
        for request, (output, engine_stats) in zip(batch, results):
            stats = RequestStats(
                request_id=request.request_id,
                batch_id=batch_id,
                batch_size=len(batch),
                queue_wait_s=dispatch_t - request.enqueue_t,
                service_s=done_t - dispatch_t,
                latency_s=done_t - request.enqueue_t,
                engine_stats=engine_stats.as_dict(),
                model=request.model,
                priority_class=request.priority_class,
                deadline_s=request.deadline_s,
            )
            self.stats.record_request(stats)
            # a client may have cancelled its future (e.g. a timed-out
            # submit); that must not poison its batch mates
            if not request.future.done():
                try:
                    request.future.set_result(ServedResult(output[0], stats))
                except InvalidStateError:   # cancelled between check and set
                    pass

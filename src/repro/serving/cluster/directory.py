"""Replica membership, health and placement for the cluster router.

The directory answers two questions the router asks on every request:

* **who is alive?** — a background prober polls each replica's
  ``GET /healthz`` and folds the answers (plus the router's own
  request outcomes, via :meth:`ReplicaDirectory.report_success` /
  :meth:`~ReplicaDirectory.report_failure`) into a three-state health
  machine: ``up`` -> ``suspect`` (after ``suspect_after`` consecutive
  failures) -> ``down`` (after ``down_after``), with any success
  snapping straight back to ``up``.  A PR-6 ``degraded`` die state
  (HTTP 200) keeps the replica ``up`` — it is serving correctly, just
  worth an operator's look; a *draining* replica (HTTP 503) counts as
  a failure — no new work should land there.
* **who should serve model M?** — consistent hashing on the model id
  over a :class:`HashRing` of virtual nodes (sha256, never Python's
  per-process-salted ``hash``), so placement is stable across router
  restarts and moves only ``1/N`` of the keys when a replica joins or
  leaves.  ``replication`` preferred replicas per model; because the
  demo replicas are homogeneous (every replica serves every model),
  :meth:`ReplicaDirectory.candidates` spills past the preferred set to
  any live replica unless ``strict_placement`` pins it.

Everything is lock-protected and snapshot-readable (``/v1/cluster``
serves :meth:`ReplicaDirectory.snapshot` verbatim).
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..http import TRANSPORT_ERRORS, HttpClient

#: replica health states (the /v1/cluster wire vocabulary)
REPLICA_UP = "up"
REPLICA_SUSPECT = "suspect"
REPLICA_DOWN = "down"


def _ring_hash(key: str) -> int:
    """Stable 64-bit ring position (sha256 prefix — process-independent,
    unlike the builtin salted ``hash``)."""
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8],
                          "big")


class HashRing:
    """Consistent hashing over replica names with virtual nodes.

    ``vnodes`` points per replica smooth the arc lengths so load skew
    shrinks as ``1/sqrt(vnodes)``; :meth:`preferred` walks clockwise
    from the key's position collecting *distinct* replicas, which is
    exactly the failover order — replica ``k+1`` is where the keys of a
    dead replica ``k`` land.
    """

    def __init__(self, names: Sequence[str], *, vnodes: int = 64):
        if not names:
            raise ValueError("HashRing needs at least one replica")
        if len(set(names)) != len(names):
            raise ValueError("replica names must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for name in names:
            for v in range(vnodes):
                points.append((_ring_hash(f"{name}#{v}"), name))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]
        self._names = list(names)

    def preferred(self, key: str, count: int) -> List[str]:
        """The first ``count`` *distinct* replicas clockwise of ``key``."""
        count = min(count, len(self._names))
        start = bisect.bisect(self._hashes, _ring_hash(key))
        chosen: List[str] = []
        for i in range(len(self._points)):
            name = self._points[(start + i) % len(self._points)][1]
            if name not in chosen:
                chosen.append(name)
                if len(chosen) == count:
                    break
        return chosen


class ReplicaState:
    """Mutable health + accounting of one replica (guarded by the
    directory's lock)."""

    __slots__ = ("name", "host", "port", "state", "consecutive_failures",
                 "probes", "probe_failures", "attempts", "failures",
                 "last_healthz", "transitions")

    def __init__(self, name: str, host: str, port: int):
        self.name = name
        self.host = host
        self.port = port
        self.state = REPLICA_UP
        self.consecutive_failures = 0
        self.probes = 0
        self.probe_failures = 0
        self.attempts = 0          # proxied request attempts
        self.failures = 0          # ... that failed retryably
        self.last_healthz: Optional[Dict] = None
        self.transitions = 0       # up/suspect/down edges (flap gauge)

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "probes": self.probes,
            "probe_failures": self.probe_failures,
            "attempts": self.attempts,
            "failures": self.failures,
            "transitions": self.transitions,
            "last_healthz": self.last_healthz,
        }


class ReplicaDirectory:
    """Health-checked membership + consistent-hash placement.

    Parameters
    ----------
    replicas:
        ``{name: (host, port)}`` — the backend :class:`HttpFrontend`
        addresses.  Membership is fixed for the directory's lifetime
        (kill/restart of a *known* replica is the supported churn).
    replication:
        Preferred replicas per model (the hot-model knob); capped at the
        replica count.
    suspect_after / down_after:
        Consecutive-failure thresholds of the health machine.  One
        success resets to ``up`` from either state.
    probe_interval_s:
        Background ``/healthz`` poll period (:meth:`start`); probing can
        also be driven synchronously via :meth:`probe_once` (tests, and
        the router's pre-flight).
    probe_timeout_s:
        Socket timeout of one probe round trip.
    strict_placement:
        Refuse to spill beyond the ``replication`` preferred replicas —
        for heterogeneous clusters where only the preferred set holds
        the model's dies.  The homogeneous demo default spills to any
        live replica before giving up.
    client_factory:
        ``(host, port, timeout) -> client`` hook (tests inject scripted
        probes).
    """

    def __init__(self, replicas: Dict[str, Tuple[str, int]], *,
                 replication: int = 2, vnodes: int = 64,
                 suspect_after: int = 1, down_after: int = 3,
                 probe_interval_s: float = 0.2,
                 probe_timeout_s: float = 2.0,
                 strict_placement: bool = False,
                 client_factory: Optional[Callable] = None,
                 log: Optional[Callable[[str], None]] = None):
        if not replicas:
            raise ValueError("a cluster needs at least one replica")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if not 1 <= suspect_after <= down_after:
            raise ValueError("need 1 <= suspect_after <= down_after")
        if probe_interval_s <= 0 or probe_timeout_s <= 0:
            raise ValueError("probe intervals/timeouts must be > 0")
        self.replication = min(replication, len(replicas))
        self.suspect_after = suspect_after
        self.down_after = down_after
        self.probe_interval_s = probe_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.strict_placement = strict_placement
        self.log = log
        self._client_factory = (client_factory if client_factory is not None
                                else HttpClient)
        self._lock = threading.Lock()
        self._replicas: Dict[str, ReplicaState] = {
            name: ReplicaState(name, host, port)
            for name, (host, port) in replicas.items()}
        self.ring = HashRing(list(replicas), vnodes=vnodes)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- membership ---------------------------------------------------------
    def names(self) -> List[str]:
        return list(self._replicas)

    def replica(self, name: str) -> ReplicaState:
        return self._replicas[name]

    def endpoint(self, name: str) -> Tuple[str, int]:
        replica = self._replicas[name]
        return replica.host, replica.port

    # -- health machine -----------------------------------------------------
    def _apply_outcome(self, name: str, ok: bool) -> None:
        """One success/failure observation -> state edge (lock held)."""
        replica = self._replicas[name]
        before = replica.state
        if ok:
            replica.consecutive_failures = 0
            replica.state = REPLICA_UP
        else:
            replica.consecutive_failures += 1
            if replica.consecutive_failures >= self.down_after:
                replica.state = REPLICA_DOWN
            elif replica.consecutive_failures >= self.suspect_after:
                replica.state = REPLICA_SUSPECT
        if replica.state != before:
            replica.transitions += 1
            if self.log is not None:
                self.log(f"replica {name}: {before} -> {replica.state}")

    def report_success(self, name: str) -> None:
        """Fold one successful proxied attempt into the health machine."""
        with self._lock:
            self._replicas[name].attempts += 1
            self._apply_outcome(name, True)

    def report_failure(self, name: str) -> None:
        """Fold one retryable proxied-attempt failure in."""
        with self._lock:
            replica = self._replicas[name]
            replica.attempts += 1
            replica.failures += 1
            self._apply_outcome(name, False)

    # -- probing ------------------------------------------------------------
    def _probe(self, replica: ReplicaState) -> Tuple[bool, Optional[Dict]]:
        """One ``GET /healthz`` round trip (no lock held).

        200 (``ok`` *or* ``degraded``) is healthy; 503 is a draining
        replica — alive, but refusing work, so a routing failure.
        """
        client = self._client_factory(replica.host, replica.port,
                                      self.probe_timeout_s)
        try:
            status, payload = client.request("GET", "/healthz")
        except TRANSPORT_ERRORS:
            return False, None
        return status == 200, payload if isinstance(payload, dict) else None

    def probe_once(self) -> Dict[str, str]:
        """Probe every replica once; returns ``{name: state}`` after."""
        with self._lock:
            targets = list(self._replicas.values())
        outcomes = [(replica.name, *self._probe(replica))
                    for replica in targets]
        with self._lock:
            for name, ok, payload in outcomes:
                replica = self._replicas[name]
                replica.probes += 1
                if not ok:
                    replica.probe_failures += 1
                if payload is not None:
                    replica.last_healthz = payload
                self._apply_outcome(name, ok)
            return {name: replica.state
                    for name, replica in self._replicas.items()}

    def start(self) -> "ReplicaDirectory":
        """Launch the background prober (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._probe_loop,
                                            name="forms-cluster-probe",
                                            daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.probe_interval_s):
            self.probe_once()

    # -- placement ----------------------------------------------------------
    def placement(self, model: Optional[str]) -> List[str]:
        """The ``replication`` preferred replicas of ``model`` (hash
        order = failover order); ``None`` keys the default placement."""
        return self.ring.preferred(model if model is not None else "",
                                   self.replication)

    def candidates(self, model: Optional[str]) -> List[str]:
        """Routable replicas for ``model``, best first.

        Preferred ``up`` replicas in ring order, then preferred
        ``suspect`` ones (they get a chance before spilling — one
        success snaps them back to ``up``), then — unless
        ``strict_placement`` — the remaining ``up`` and ``suspect``
        replicas in ring order.  ``down`` replicas are never returned;
        an empty list means ``cluster_unavailable``.
        """
        preferred = self.placement(model)
        rest = [name for name in
                self.ring.preferred(model if model is not None else "",
                                    len(self._replicas))
                if name not in preferred]
        with self._lock:
            states = {name: replica.state
                      for name, replica in self._replicas.items()}
        ordered = [name for name in preferred
                   if states[name] == REPLICA_UP]
        ordered += [name for name in preferred
                    if states[name] == REPLICA_SUSPECT]
        if not self.strict_placement:
            ordered += [name for name in rest if states[name] == REPLICA_UP]
            ordered += [name for name in rest
                        if states[name] == REPLICA_SUSPECT]
        return ordered

    # -- introspection ------------------------------------------------------
    def snapshot(self) -> Dict:
        """The ``/v1/cluster`` directory view: config, per-replica health
        and counters, and the up/suspect/down tally."""
        with self._lock:
            replicas = {name: replica.as_dict()
                        for name, replica in self._replicas.items()}
        counts = {REPLICA_UP: 0, REPLICA_SUSPECT: 0, REPLICA_DOWN: 0}
        for info in replicas.values():
            counts[info["state"]] += 1
        return {
            "replicas": replicas,
            "counts": counts,
            "replication": self.replication,
            "strict_placement": self.strict_placement,
            "suspect_after": self.suspect_after,
            "down_after": self.down_after,
            "probe_interval_s": self.probe_interval_s,
        }

"""Table V — peak throughput efficiency (GOPs/s/mm2, GOPs/W) vs ISAAC.

Computed rows (ISAAC, FORMS variants, pruned/quantized ISAAC & PUMA) come
from the first-principles peak model fed with a measured VGG-16/CIFAR-100
compression; literature rows are the paper's recorded values.  Expected
shape: polarization-only FORMS below ISAAC (fine-grained conversion deficit),
full-optimization FORMS and pruned-ISAAC far above, fragment 16 above
fragment 8.
"""

from repro.analysis import FAST, table5


def test_table5_throughput(benchmark, save_table):
    result = benchmark.pedantic(lambda: table5(FAST, seed=0),
                                rounds=1, iterations=1)
    save_table("table5_throughput", result)
    benchmark.extra_info["table"] = result.rendered
    benchmark.extra_info["prune_factor"] = result.extras["prune_factor"]
    rows = {r[0]: r for r in result.rows}
    isaac = rows["ISAAC"]
    assert isaac[1] == 1.0 and isaac[2] == 1.0
    # Shape: polarization only < ISAAC < full optimization.
    poln8 = rows["FORMS (polarization only, 8)"]
    poln16 = rows["FORMS (polarization only, 16)"]
    full8 = rows["FORMS (full optimization, 8)"]
    full16 = rows["FORMS (full optimization, 16)"]
    assert 0.2 < poln8[1] < 1.0
    assert poln8[1] < poln16[1] < 1.0
    assert full8[1] > 1.0 and full16[1] > full8[1]
    assert rows["Pruned/Quantized-ISAAC"][1] > 1.0
    assert rows["Pruned/Quantized-PUMA"][1] < rows["Pruned/Quantized-ISAAC"][1]

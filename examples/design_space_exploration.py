"""Design-space exploration: fragment size vs throughput, power and area.

Reproduces the architect's-eye view behind the paper's Sec. IV-C choices:
sweep the fragment size (which fixes ADC resolution and SAR sampling rate),
build the corresponding FORMS chip, and evaluate peak efficiency and
pipelined FPS on a full-size VGG-16 workload.  Shows why the paper picks
fragments of 8/16: smaller fragments skip more zeros but burn row-group
sequencing; larger ones need exponentially costlier ADCs and polarize worse.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import render_table
from repro.arch import (AcceleratorConfig, extract_workload, forms_chip,
                        isaac16_config, isaac32_config, network_performance,
                        peak_throughput)
from repro.arch.workload import trace_dimensions, transfer_measurements
from repro.nn import (Adam, build_model, fit, set_init_seed, synthetic_cifar100)
from repro.reram.converters import paper_adc_bits


def main() -> None:
    # ------------------------------------------------------------------
    # Measured ingredients: train + trace a scaled VGG-16 for EIC stats.
    # ------------------------------------------------------------------
    set_init_seed(2)
    train_set, test_set = synthetic_cifar100(train_size=256, test_size=128)
    scaled = build_model("vgg16", train_set.num_classes, 3,
                         train_set.image_size, width_mult=0.25)
    print("training scaled VGG-16 for activation statistics ...")
    fit(scaled, train_set, Adam(scaled.parameters(), lr=1e-3), epochs=4,
        batch_size=32)
    fragment_sizes = (4, 8, 16, 32)
    measured = extract_workload(scaled, test_set,
                                fragment_sizes=fragment_sizes, sample_images=4)

    # Full-size dimensions with the measured EIC grafted on (DESIGN.md).
    full = build_model("vgg16", 100, 3, 32, width_mult=1.0)
    workload = transfer_measurements(trace_dimensions(full, 3, 32, network="VGG16"),
                                     measured)

    # ------------------------------------------------------------------
    # Sweep fragment sizes.
    # ------------------------------------------------------------------
    isaac = isaac16_config()
    isaac_peak = peak_throughput(isaac)
    isaac_fps = network_performance(workload, isaac32_config()).fps

    rows = []
    for m in fragment_sizes:
        chip = forms_chip(m)
        config = AcceleratorConfig(f"FORMS-{m}", chip, "forms", weight_bits=8,
                                   use_pruned_structure=False, zero_skip=True)
        peak = peak_throughput(config, average_eic=workload.average_eic(m))
        perf = network_performance(workload, config)
        rows.append([
            m,
            paper_adc_bits(m),
            chip.tile.mcu.adc_frequency_hz / 1e9,
            chip.power_w,
            chip.area_mm2,
            workload.average_eic(m),
            peak.gops_per_mm2 / isaac_peak.gops_per_mm2,
            peak.gops_per_w / isaac_peak.gops_per_w,
            perf.fps / isaac_fps,
        ])
    print()
    print(render_table(
        ["fragment", "ADC bits", "ADC GS/s", "chip W", "chip mm2",
         "avg EIC", "peak/mm2 vs ISAAC", "peak/W vs ISAAC", "FPS vs ISAAC-32"],
        rows, title="FORMS design space (dense 8-bit VGG-16, zero-skip on)",
        floatfmt=".3g"))
    print("\nReading: fragment 4 skips the most zeros (lowest EIC) but pays "
          "32 sequential row-groups per crossbar; fragment 32 needs a 6-bit "
          "ADC whose cost grows exponentially.  Fragments 8-16 are the sweet "
          "spot — the paper's chosen design points.")


if __name__ == "__main__":
    main()

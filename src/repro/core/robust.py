"""Variation-aware fine-tuning (the paper's cited mitigation, Sec. V-E).

Table VI shows pruning costs some robustness to device variation; the paper
notes that "prior techniques used to improve robustness [29, 84, 85] can be
applied to FORMS".  This module implements the Vortex-style [84] noise-
injection approach on our substrate: fine-tune the optimized model while
multiplying each compressible layer's weights with fresh lognormal noise of
the target sigma every batch, so the network learns weights whose decision
boundaries tolerate conductance perturbations.

The constraint set is preserved throughout: noise is applied transiently
during the forward pass only, and the true weights are clamped back onto
their masks/signs after every optimizer step (projected SGD, identical to
the ADMM finalize step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.data import Dataset
from ..nn.layers import Module, compressible_layers
from ..nn.optim import Adam
from ..nn.trainer import evaluate, fit, recalibrate_batchnorm
from .admm import Constraint
from .fragments import FragmentGeometry
from .pipeline import FORMSConfig, FrozenMaskConstraint
from .polarization import compute_signs, project_polarization
from .pruning import structured_mask


@dataclass
class RobustTuneConfig:
    """Noise-injection fine-tuning hyperparameters."""

    sigma: float = 0.1          # training-time lognormal noise (match deployment)
    epochs: int = 3
    lr: float = 5e-4
    batch_size: int = 32
    samples_per_batch: int = 1  # fresh noise draws per batch (1 is standard)

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")


class _NoiseInjector:
    """Applies/removes transient multiplicative weight noise around a batch."""

    def __init__(self, model: Module, sigma: float, seed: int):
        self.layers = [layer for _, layer in compressible_layers(model)]
        self.sigma = sigma
        self._rng = np.random.default_rng(seed)
        self._saved: Optional[List[np.ndarray]] = None

    def inject(self) -> None:
        if self._saved is not None:
            raise RuntimeError("noise already injected")
        self._saved = []
        for layer in self.layers:
            clean = layer.weight.data.copy()
            self._saved.append(clean)
            noise = self._rng.lognormal(0.0, self.sigma, size=clean.shape)
            layer.weight.data[...] = clean * noise

    def restore_with_gradients(self) -> None:
        """Put clean weights back, keeping the gradients computed under noise.

        The gradient w.r.t. the noisy weight is a stochastic estimate of the
        variation-averaged loss gradient — exactly the Vortex objective.
        """
        if self._saved is None:
            raise RuntimeError("nothing to restore")
        for layer, clean in zip(self.layers, self._saved):
            layer.weight.data[...] = clean
        self._saved = None


def _feasibility_constraints(model: Module, config: FORMSConfig) -> Dict[str, List[Constraint]]:
    """Freeze the current structure and signs of an optimized model."""
    constraints: Dict[str, List[Constraint]] = {}
    for name, layer in compressible_layers(model):
        geometry = config.geometry_for(layer)
        weight = layer.weight.data
        mask = FrozenMaskConstraint(structured_mask(weight, geometry))
        signs = compute_signs(weight, geometry, config.sign_rule)

        class _SignClamp(Constraint):
            def __init__(self, geom: FragmentGeometry, s: np.ndarray):
                self.geom, self.s = geom, s

            def project(self, w: np.ndarray) -> np.ndarray:
                return project_polarization(w, self.geom, self.s)

        constraints[name] = [mask, _SignClamp(geometry, signs)]
    return constraints


def robust_finetune(model: Module, config: FORMSConfig, train_set: Dataset,
                    tune: RobustTuneConfig = RobustTuneConfig(),
                    test_set: Optional[Dataset] = None, seed: int = 0) -> Module:
    """Noise-injection fine-tuning of an already-FORMS-optimized model.

    Modifies ``model`` in place (clone first to keep the original) and
    returns it.  The pruned structure and fragment signs are preserved
    exactly; quantization is *not* re-applied here — re-project with
    :func:`repro.core.quantization.project_quantization` afterwards if the
    deployment grid must be exact (the residual motion is sub-step).
    """
    if tune.epochs == 0:
        return model
    injector = _NoiseInjector(model, tune.sigma, seed=seed + 17)
    constraints = _feasibility_constraints(model, config)
    layers = dict(compressible_layers(model))

    def grad_hook() -> None:
        # gradients were computed under noise; restore clean weights so the
        # optimizer step applies to the true parameters
        injector.restore_with_gradients()

    def step_hook() -> None:
        # projected SGD: clamp back onto masks and signs, then noise the
        # *next* batch
        for name, constraint_list in constraints.items():
            param = layers[name].weight
            for constraint in constraint_list:
                param.data[...] = constraint.project(param.data)
        injector.inject()

    injector.inject()
    fit(model, train_set, Adam(model.parameters(), lr=tune.lr),
        epochs=tune.epochs, batch_size=tune.batch_size, test_set=test_set,
        grad_hook=grad_hook, step_hook=step_hook, seed=seed)
    injector.restore_with_gradients()
    for name, constraint_list in constraints.items():
        param = layers[name].weight
        for constraint in constraint_list:
            param.data[...] = constraint.project(param.data)
    recalibrate_batchnorm(model, train_set, batch_size=tune.batch_size)
    return model

"""Bit-serial in-situ computation engine (paper Figs. 5, 11, 12).

:class:`InSituLayerEngine` executes one layer's matrix-vector products the way
the hardware does:

1. activations arrive as unsigned integers; each cycle the DACs drive one bit
   of every input onto the word lines (LSB first);
2. each fragment's column current is sampled, pedestal-corrected and
   digitized by the fragment's ADC;
3. shift-and-add recombines cell slices (x4 for 8-bit weights on 2-bit cells)
   and input bits (x2 per cycle);
4. the accumulation block adds or subtracts the fragment result according to
   the sign-indicator bit (FORMS), applies the offset correction (ISAAC), or
   subtracts the negative-plane result (PRIME dual);
5. fragment results accumulate into the layer output.

With ideal devices and sufficiently wide ADCs the engine reproduces the
integer matmul **exactly** — the anchor correctness property of the simulator
(see ``tests/reram/test_engine.py``).  With device variation or undersized
ADCs, the deviation is the physically meaningful error the paper's Table VI
and our ADC ablation measure.

Simulation strategy
-------------------
The hardware is bit-serial, but the simulator is not.  :meth:`matvec_int`
schedules the activation block's *nonzero structure* instead of its dense
shape: a CSR-style job list is built directly from the per-fragment OR of
the activation bits, so all-zero bit-planes, silent fragments **and** silent
positions never materialize — the simulator-side image of the zero-skip
shift registers, now at (bit-plane, fragment, position) granularity.  Each
fragment's surviving ``live bits x live positions`` grid is evaluated in one
fused contraction (a single GEMM on the integer tiers), chunked to the
kernel cache budget; independent chunks can fan out across a
:class:`repro.runtime.WorkerPool`.

The previous dense decomposition — the whole block expanded into a
``(bits, n_frag, m, positions)`` bit-plane tensor with (bit-plane, fragment)
masking only — survives as :meth:`matvec_int_dense` (the scheduling
baseline, and the path taken when read noise forces the full conversion
grid), and the original cycle-by-cycle loop survives as
:meth:`matvec_int_reference`, the forever-testable bit-exactness oracle.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.fragments import FragmentGeometry
from ..core.quantization import QuantizationSpec
from .bitslice import slice_weights
from .converters import ADCSpec, DACSpec, SampleHold, required_adc_bits
from .device import ReRAMDevice
from .mapping import MappedLayer, map_layer

#: default per-kernel-call element budget of the fused bit-plane contraction
#: (elements of the ``(jobs, positions, cols, slices)`` current tensor).
#: Chunking along the jobs/positions axes bounds peak memory *and* keeps each
#: einsum -> pedestal -> ADC -> recombine pipeline stage cache-resident;
#: 2**18 elements (2 MiB of float64) measures fastest on the elementwise-
#: bound analog path.  Changing it never changes any result.  Resolution
#: order at kernel time: per-engine ``kernel_max_elements`` >
#: :func:`set_fused_kernel_max_elements` override > the
#: ``FORMS_FUSED_KERNEL_MAX_ELEMENTS`` environment variable > a cached
#: per-machine autotune (when ``FORMS_FUSED_KERNEL_AUTOTUNE`` is truthy) >
#: this module default.
FUSED_KERNEL_MAX_ELEMENTS = 1 << 18

#: environment knobs of the kernel chunk budget
FUSED_KERNEL_ENV = "FORMS_FUSED_KERNEL_MAX_ELEMENTS"
FUSED_KERNEL_AUTOTUNE_ENV = "FORMS_FUSED_KERNEL_AUTOTUNE"

_kernel_override: Optional[int] = None
_kernel_autotuned: Optional[int] = None

#: minimum average per-fragment grid size (elements of the conversion
#: tensor) for the CSR scheduler to win over the dense masked kernel: below
#: this, per-task Python overhead outweighs the skipped conversions (a
#: many-fragment, few-position layer — e.g. a classifier head on a small
#: batch — is the canonical case) and ``matvec_int`` falls back to the
#: dense path.  Pure dispatch heuristic: results are bit-identical either
#: way.  Per-engine override: ``sparse_min_task_elements``.
SPARSE_MIN_TASK_ELEMENTS = 1 << 12


def set_fused_kernel_max_elements(value: Optional[int]) -> None:
    """Process-wide override of the kernel chunk budget (``None`` resets).

    Takes precedence over the environment variable and the autotuner but
    not over a per-engine ``kernel_max_elements``.
    """
    global _kernel_override
    if value is not None and value < 1:
        raise ValueError("kernel budget must be >= 1 element")
    _kernel_override = value


def autotune_fused_kernel_max_elements(
        candidates: Sequence[int] = (1 << 15, 1 << 16, 1 << 17, 1 << 18,
                                     1 << 19, 1 << 20),
        repeats: int = 3) -> int:
    """Measure the fastest chunk budget for this machine and return it.

    Runs a representative fused-kernel pipeline (bit-plane contraction,
    pedestal correction, ADC rounding) over one fixed workload, *chunked
    along the jobs axis exactly as the engine chunks it* at each candidate
    budget — the budget only moves work between chunks, so the minimum
    wall clock identifies the cache-resident chunk size.  Every call
    measures afresh; the process-wide cache lives in
    :func:`fused_kernel_max_elements` (the "quick per-machine autotune at
    first use" behind ``FORMS_FUSED_KERNEL_AUTOTUNE=1``).
    """
    rng = np.random.default_rng(0)
    m, cols, slices, positions = 8, 16, 4, 128
    per_job = positions * cols * slices
    jobs = max(1, (1 << 21) // per_job)       # fixed ~2^21-element workload
    drive = rng.integers(0, 2, size=(jobs, m, positions)).astype(np.float64)
    cond = rng.uniform(1e-7, 1e-5, size=(jobs, m, cols, slices))
    active = drive.sum(axis=1)
    best_budget, best_time = max(candidates), float("inf")
    for budget in candidates:
        chunk = max(1, budget // per_job)
        elapsed = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for lo in range(0, jobs, chunk):
                hi = lo + chunk
                currents = np.einsum("jmp,jmcs->jpcs", drive[lo:hi],
                                     cond[lo:hi], optimize=True)
                analog = (currents
                          - 1e-8 * active[lo:hi, :, None, None]) * 1e6
                np.clip(np.rint(analog), 0, 15)
            elapsed = min(elapsed, time.perf_counter() - start)
        if elapsed < best_time:
            best_budget, best_time = budget, elapsed
    return int(best_budget)


def fused_kernel_max_elements() -> int:
    """The kernel chunk budget in effect for engines without a local value."""
    global _kernel_autotuned
    if _kernel_override is not None:
        return _kernel_override
    env = os.environ.get(FUSED_KERNEL_ENV, "").strip()
    if env:
        value = int(env)
        if value < 1:
            raise ValueError(f"{FUSED_KERNEL_ENV} must be >= 1, got {value}")
        return value
    if os.environ.get(FUSED_KERNEL_AUTOTUNE_ENV, "").strip().lower() in (
            "1", "true", "yes", "on"):
        if _kernel_autotuned is None:
            _kernel_autotuned = autotune_fused_kernel_max_elements()
        return _kernel_autotuned
    return FUSED_KERNEL_MAX_ELEMENTS


class SignIndicator:
    """1R array holding one sign bit per fragment (paper Fig. 5).

    The accumulation block consults it to run its adder in add or subtract
    mode; cost-wise it is a single resistive cell per fragment (Table III's
    0.012 mW / 3.1e-6 mm2 row).
    """

    def __init__(self, signs: np.ndarray):
        signs = np.asarray(signs)
        if not np.isin(signs, (-1.0, 1.0)).all():
            raise ValueError("signs must be +1/-1")
        self.bits = (signs < 0).astype(np.int8)  # 1 encodes negative

    def apply(self, fragment_values: np.ndarray) -> np.ndarray:
        """Negate values of fragments whose sign bit is set.

        ``fragment_values`` shaped ``(n_frag, cols, ...)`` — the leading two
        axes must match the sign array.
        """
        signs = np.where(self.bits == 1, -1, 1).astype(fragment_values.dtype)
        extra = fragment_values.ndim - signs.ndim
        return fragment_values * signs.reshape(signs.shape + (1,) * extra)


@dataclass
class EngineStats:
    """Non-ideality and throughput accounting of one engine run.

    ``conversions`` / ``cycles_fed`` keep the hardware's view: every
    bit-cycle up to the highest live bit is fed and every fed cycle converts
    every fragment column (zero planes included), exactly as the original
    per-bit loop counted them.  ``jobs_scheduled`` / ``jobs_skipped`` expose
    the simulator's view at (bit-plane, fragment) granularity: how many
    kernel jobs the scheduler emitted versus masked out as all-zero.
    ``pairs_scheduled`` / ``pairs_skipped`` refine that to (bit-plane,
    fragment, position) granularity — the accounting that is exact under the
    sparse CSR scheduler, where silent positions are skipped inside an
    otherwise-live job.  ``macs`` is the metering view: every conversion
    integrates one fragment's worth of cell currents, so the commit path
    derives ``macs = conversions x fragment_size`` — the analog
    multiply-accumulates billed to tenants by ``/v1/usage``.

    Kernel paths accumulate into a per-call (or per-worker) local instance
    and :meth:`merge` it into the engine's stats once at the end; ``merge``
    takes the target's lock, so engines are safe to share across worker
    threads.
    """

    conversions: int = 0
    saturated: int = 0
    cycles_fed: int = 0
    jobs_scheduled: int = 0
    jobs_skipped: int = 0
    pairs_scheduled: int = 0
    pairs_skipped: int = 0
    macs: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    @property
    def jobs_computed(self) -> int:
        """Backward-compatible alias of ``jobs_scheduled``."""
        return self.jobs_scheduled

    @property
    def saturation_fraction(self) -> float:
        return self.saturated / self.conversions if self.conversions else 0.0

    @property
    def skip_fraction(self) -> float:
        """Fraction of kernel jobs eliminated by bit-plane/fragment masking."""
        total = self.jobs_scheduled + self.jobs_skipped
        return self.jobs_skipped / total if total else 0.0

    @property
    def pair_skip_fraction(self) -> float:
        """Fraction of (job, position) conversion groups never evaluated."""
        total = self.pairs_scheduled + self.pairs_skipped
        return self.pairs_skipped / total if total else 0.0

    def merge(self, other: "EngineStats") -> None:
        with self._lock:
            self.conversions += other.conversions
            self.saturated += other.saturated
            self.cycles_fed += other.cycles_fed
            self.jobs_scheduled += other.jobs_scheduled
            self.jobs_skipped += other.jobs_skipped
            self.pairs_scheduled += other.pairs_scheduled
            self.pairs_skipped += other.pairs_skipped
            self.macs += other.macs

    def as_dict(self) -> Dict[str, int]:
        """The eight counters as a plain JSON-ready dict."""
        return {
            "conversions": self.conversions,
            "saturated": self.saturated,
            "cycles_fed": self.cycles_fed,
            "jobs_scheduled": self.jobs_scheduled,
            "jobs_skipped": self.jobs_skipped,
            "pairs_scheduled": self.pairs_scheduled,
            "pairs_skipped": self.pairs_skipped,
            "macs": self.macs,
        }

    # Stats cross the process-backend boundary by value; the lock is a
    # per-process concern and must never be pickled (spawn-safe contract).
    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


_STATS_SCOPES = threading.local()


class StatsScope:
    """Collects every engine-stats commit made by the *current thread*.

    Kernel paths accumulate a per-call :class:`EngineStats` local and commit
    it once, on the calling thread, when the MVM finishes (worker-side chunk
    stats are merged into that local before the commit).  A ``StatsScope``
    entered on a thread therefore observes exactly the engine activity of
    the calls issued from that thread — across *all* engines — which is how
    the serving layer slices one shared network's stats per request: each
    request's tile runs inside its own scope on its worker thread.

    Scopes nest (every active scope on the thread observes the commit) and
    are thread-local, so concurrent tiles on different workers never see
    each other's work::

        with StatsScope() as scope:
            engine.matvec_int(x)
        scope.stats.conversions   # just this call's conversions
    """

    def __init__(self):
        self.stats = EngineStats()

    def __enter__(self) -> "StatsScope":
        stack = getattr(_STATS_SCOPES, "stack", None)
        if stack is None:
            stack = _STATS_SCOPES.stack = []
        stack.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _STATS_SCOPES.stack.pop()


def _active_scopes() -> List["StatsScope"]:
    return getattr(_STATS_SCOPES, "stack", [])


class DieCache:
    """Memoizes programmed conductance planes across engine constructions.

    Sweeps (ADC sizing, fragment ablations, design-space exploration) build
    many engines over the *same* weight codes and the *same* device
    configuration; re-programming a fresh die for each is the dominant setup
    cost and — for deterministic (``variation_sigma == 0``) devices — pure
    waste.  The cache keys on the device identity (spec, sigma, seed) and a
    content hash of the code plane, so identical ``(codes, device-seed)``
    pairs share one programmed die.

    For noisy devices this deliberately changes semantics from "a fresh die
    per engine" to "one die reused across the sweep" — which is what
    block-wise mixed-precision sweeps need to be affordable (and what a real
    lab would do: program once, measure many).  Devices constructed without
    a seed draw irreproducible variation, so they are keyed by object
    identity instead and only share dies with themselves.

    All cache operations hold an internal lock, so one cache can back
    engine construction fanned out across ``repro.runtime`` workers
    (programming is serialized under the lock — the point of the cache is
    that it happens once per die anyway).
    """

    def __init__(self, maxsize: Optional[int] = 64):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1 (or None for unbounded)")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._planes: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._planes)

    @staticmethod
    def _device_key(device: ReRAMDevice) -> Tuple:
        seed = getattr(device, "seed", None)
        if seed is None and device.variation_sigma > 0.0:
            # Key on the object itself (identity hash): the cache entry then
            # pins the device alive, so a freed address can never alias two
            # different anonymous devices.
            return ("anon", device)
        return (device.spec, device.variation_sigma, seed)

    @staticmethod
    def _codes_key(codes: np.ndarray) -> Tuple:
        codes = np.ascontiguousarray(codes)
        digest = hashlib.sha1(codes.tobytes()).hexdigest()
        return (codes.shape, str(codes.dtype), digest)

    def get_or_program(self, device: ReRAMDevice, codes: np.ndarray) -> np.ndarray:
        """Return the programmed conductances for ``codes``, caching the die.

        Cached dies of noisy *seeded* devices are programmed from an RNG
        derived deterministically from ``(device seed, codes)``, so a
        re-program after LRU eviction reproduces the identical die — the
        one-die-per-(codes, device-seed) guarantee survives any eviction
        order.  (Unseeded devices draw from their own stream; they are keyed
        by identity and irreproducible by definition.)
        """
        codes_key = self._codes_key(codes)
        key = (self._device_key(device), codes_key)
        with self._lock:
            plane = self._planes.get(key)
            if plane is not None:
                self.hits += 1
                self._planes.move_to_end(key)
                return plane
            self.misses += 1
            seed = getattr(device, "seed", None)
            if device.variation_sigma > 0.0 and seed is not None:
                digest = int(codes_key[-1][:16], 16)
                rng = np.random.default_rng(
                    np.random.SeedSequence([int(seed), digest]))
                plane = device.program(codes, rng=rng)
            else:
                plane = device.program(codes)
            self._planes[key] = plane
            if self.maxsize is not None and len(self._planes) > self.maxsize:
                self._planes.popitem(last=False)
            return plane

    def clear(self) -> None:
        with self._lock:
            self._planes.clear()

    # A cache never crosses the process boundary by content: workers get a
    # *fresh, empty* per-process cache (configuration only — no lock, no
    # planes, no device references).  Deterministic devices re-program
    # bit-identical dies from ``SeedSequence([seed, codes digest])``, so
    # sharing bits never required sharing state.
    def __getstate__(self):
        return {"maxsize": self.maxsize}

    def __setstate__(self, state):
        self.__init__(maxsize=state.get("maxsize", 64))


class InSituLayerEngine:
    """Computes ``levels.T @ x`` for one mapped layer via crossbar simulation.

    Parameters
    ----------
    mapped:
        Output of :func:`repro.reram.mapping.map_layer` for any scheme.
    device:
        The ReRAM population (carries variation).  Each engine instance
        programs its own die unless a ``die_cache`` is supplied.
    adc:
        ADC spec; ``None`` sizes it exactly for the worst-case fragment sum
        (the configuration under which the engine is exact).
    activation_bits:
        Input bit width (paper: 16, with 8 also evaluated).
    die_cache:
        Optional :class:`DieCache`; identical ``(codes, device)`` pairs then
        reuse one programmed die instead of re-programming per engine.
    kernel_max_elements:
        Per-engine kernel chunk budget; ``None`` defers to the process-wide
        resolution (:func:`fused_kernel_max_elements`).
    """

    def __init__(self, mapped: MappedLayer, device: ReRAMDevice,
                 adc: Optional[ADCSpec] = None, activation_bits: int = 16,
                 die_cache: Optional[DieCache] = None,
                 kernel_max_elements: Optional[int] = None):
        if activation_bits < 1:
            raise ValueError("activation_bits must be >= 1")
        if kernel_max_elements is not None and kernel_max_elements < 1:
            raise ValueError("kernel_max_elements must be >= 1")
        self.mapped = mapped
        self.device = device
        self.activation_bits = activation_bits
        self.kernel_max_elements = kernel_max_elements
        #: scheduling knobs of :meth:`matvec_int` — ``sparse_enabled``
        #: selects the CSR job scheduler (ablation/benchmark knob; results
        #: are bit-identical either way), ``pool`` fans independent job
        #: chunks of one MVM across a :class:`repro.runtime.WorkerPool`.
        self.sparse_enabled = True
        self.sparse_min_task_elements = SPARSE_MIN_TASK_ELEMENTS
        self.pool = None
        spec = mapped.spec
        geometry = mapped.geometry
        if adc is None:
            adc = ADCSpec(bits=required_adc_bits(geometry.fragment_size, spec.cell_bits))
        self.adc = adc
        self.dac = DACSpec()
        self.sample_hold = SampleHold()
        self.sign_indicator = (SignIndicator(mapped.signs)
                               if mapped.signs is not None else None)
        # Program one conductance plane per code plane (a fresh die each,
        # unless the die cache already holds this (codes, device) pair).
        program = (device.program if die_cache is None
                   else lambda codes: die_cache.get_or_program(device, codes))
        self.conductance: Dict[str, np.ndarray] = {
            plane: program(codes) for plane, codes in mapped.code_planes.items()
        }
        # Per-engine constants of the signal path, hoisted out of the per-
        # cycle loop: shift-and-add place values and the pedestal-correction
        # terms of repro.reram.device.codes_to_digital.
        dev = device.spec
        self._place = slice_weights(mapped.slices, spec.cell_bits)
        self._v_g_min = dev.read_voltage * dev.g_min
        self._v_g_step = dev.read_voltage * dev.g_step
        self._inv_v_g_step = 1.0 / self._v_g_step
        if mapped.scheme == "dual":
            self._plane_terms = (("positive", 1), ("negative", -1))
        else:
            self._plane_terms = (("main", 1),)
        # Kernel-task constants (plane signs, signed place values, bit place
        # values, fragment signs), hoisted out of the per-task hot path.
        self._plane_signs = np.array([sign for _, sign in self._plane_terms],
                                     dtype=np.int64)
        self._plane_place_f = np.concatenate(
            [sign * self._place for _, sign in self._plane_terms]
        ).astype(np.float64)
        self._frag_signs_arr = (
            np.where(self.sign_indicator.bits == 1, -1, 1).astype(np.int64)
            if self.sign_indicator is not None else None)
        # Whether the sparse task's float64 recombination is provably exact:
        # the worst partial result is one ADC code at full scale times the
        # summed slice place values times the summed bit place values.
        self._float_recombine_exact = (
            float(self.adc.max_code)
            * float(np.abs(self._plane_place_f).sum())
            * float(np.int64(1) << activation_bits)) < float(1 << 53)
        # Constants of the exact-matmul shortcut and the sparse integer
        # kernel, built lazily on first dispatch: engines that can never
        # take those tiers (noisy die, analog physics) must not pay for
        # them per construction — that would undo exactly the setup cost
        # DieCache eliminates across sweeps.
        self._exact_tier: Optional[Tuple[int, np.ndarray, np.ndarray, bool]] = None
        self._codes_float: Optional[np.ndarray] = None
        self._eff_stack: Optional[Tuple[np.ndarray, np.ndarray, bool]] = None
        self._init_lock = threading.Lock()
        #: optional online checksum guard (:class:`repro.reram.faults.
        #: DieGuard`); when set, every MVM audits the programmed die's
        #: sentinel sums before computing and raises
        #: :class:`repro.reram.faults.DieFaultDetected` on a mismatch.
        self.guard = None
        #: bumped by :meth:`swap_planes`; the process backend's ship memo
        #: keys on it, so a shipped copy of this engine is never stale.
        self._swap_epoch = 0
        #: optional :class:`repro.obs.EngineProfiler`; when set, every
        #: ``matvec_int`` dispatch reports (tier, wall seconds) — timing
        #: only, never an operand, so armed and disarmed engines compute
        #: identical bits.
        self.profile = None
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Online die maintenance (the live-recovery path of repro.reram.faults)
    # ------------------------------------------------------------------
    def reset_plane_caches(self) -> None:
        """Invalidate the lazily-built code-derived tier constants.

        Must be called after any mutation of ``mapped.code_planes`` /
        ``conductance`` (an online die fault or swap): the exact-matmul
        tier, the sparse integer kernel's code stack and the effective
        weight stack are all folded from the codes at first dispatch and
        would otherwise keep serving the stale die.
        """
        with self._init_lock:
            self._exact_tier = None
            self._codes_float = None
            self._eff_stack = None

    def swap_planes(self, code_planes: Dict[str, np.ndarray],
                    conductance: Dict[str, np.ndarray]) -> None:
        """Replace programmed planes in place — the online die swap.

        ``code_planes`` / ``conductance`` map plane names to replacement
        arrays; plane names must already exist on the engine.  Dict entries
        are *rebound, never mutated in place*: a
        :class:`DieCache`-shared conductance array may be aliased by other
        engines (and by the cache itself), so an in-place write would
        corrupt every sharer.  Callers must quiesce concurrent MVMs on this
        engine (the serving stack swaps only at dispatch boundaries, on the
        batcher thread).
        """
        for plane, codes in code_planes.items():
            if plane not in self.mapped.code_planes:
                raise KeyError(f"unknown code plane {plane!r}; engine has "
                               f"{sorted(self.mapped.code_planes)}")
            self.mapped.code_planes[plane] = codes
        for plane, cond in conductance.items():
            if plane not in self.conductance:
                raise KeyError(f"unknown conductance plane {plane!r}; engine "
                               f"has {sorted(self.conductance)}")
            self.conductance[plane] = cond
        self._swap_epoch += 1
        self.reset_plane_caches()

    # ------------------------------------------------------------------
    # Process-backend transport (spawn-safe pickling)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """What ships to a process worker: the die, not the machinery.

        Locks are never pickled (recreated fresh on arrival), an attached
        worker pool is a parent-process object and stays behind, and so
        does the checksum guard — fault detection audits the parent's
        dispatch path, and the serving layer keeps fault-injected models
        on the thread backend.  The lazily-built code-derived tier
        constants are dropped too: workers rebuild them on first dispatch
        from the shipped codes, which keeps the payload to exactly the
        state that determines the bits.
        """
        state = self.__dict__.copy()
        state["_init_lock"] = None
        state["pool"] = None
        state["guard"] = None
        state["profile"] = None
        state["_exact_tier"] = None
        state["_codes_float"] = None
        state["_eff_stack"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._init_lock = threading.Lock()

    def _exact_tier_constants(self) -> Tuple[int, np.ndarray, np.ndarray, bool]:
        """(plane headroom, effective stacks, matmul-exactness) — cached.

        *Headroom* is the worst-case per-conversion partial sum (all input
        bits on); when it fits the ADC, clipping is provably impossible.
        The *effective weight stack* folds slice recombination, fragment
        signs and plane signs into one (padded_rows, cols) integer matrix,
        with a float64 copy for the BLAS product — exact while every
        partial sum is an integer below 2**53, else the int64 product runs.
        """
        cached = self._exact_tier
        if cached is not None:
            return cached
        # Fetch the shared effective-weight stack before taking the lock
        # (plain Lock, not re-entrant).
        _, eff_frag, _ = self._eff_stack_constants()
        with self._init_lock:
            if self._exact_tier is None:
                mapped = self.mapped
                headroom = max(int(codes.sum(axis=1).max(initial=0))
                               for codes in mapped.code_planes.values())
                if self._frag_signs_arr is not None:
                    eff = eff_frag * self._frag_signs_arr[:, None, :]
                else:
                    eff = eff_frag
                stack_int = eff.reshape(-1, mapped.geometry.cols)
                worst = (mapped.geometry.padded_rows
                         * int(np.abs(eff).max(initial=0))
                         * ((1 << self.activation_bits) - 1))
                self._exact_tier = (headroom, stack_int.astype(np.float64),
                                    stack_int, worst < (1 << 53))
            return self._exact_tier

    def _codes_float_stack(self) -> np.ndarray:
        """Per-fragment code planes as one float64 GEMM operand — cached.

        Shape ``(n_frag, m, cols * slices * n_planes)``: the dual scheme's
        positive and negative planes ride the same contraction, stacked
        along the trailing slice axis (their signs live in the recombination
        weights, not here).  Exact: every per-conversion dot product is a
        sum of at most ``m`` products of small non-negative integers, far
        below float64's 2**53 integer range.
        """
        cached = self._codes_float
        if cached is not None:
            return cached
        with self._init_lock:
            if self._codes_float is None:
                mapped = self.mapped
                stacked = np.concatenate(
                    [mapped.code_planes[name] for name, _ in self._plane_terms],
                    axis=-1)                       # (n_frag, m, cols, S)
                n_frag, m = stacked.shape[:2]
                self._codes_float = np.ascontiguousarray(
                    stacked.reshape(n_frag, m, -1).astype(np.float64))
            return self._codes_float

    def _eff_stack_constants(self) -> Tuple[np.ndarray, np.ndarray, bool]:
        """Per-fragment effective weights for the telescoped task tier.

        ``(eff_float, eff_int, matmul_exact)`` where ``eff`` is
        ``(n_frag, m, cols)`` — slice place values and plane signs folded,
        fragment signs *not* (the task applies them at the end).  When no
        conversion of a task can clip, the bit-serial pipeline telescopes
        into ``values.T @ eff`` for that task; ``matmul_exact`` says the
        float64 product is exact (worst partial sum below 2**53).
        """
        cached = self._eff_stack
        if cached is not None:
            return cached
        with self._init_lock:
            if self._eff_stack is None:
                mapped = self.mapped
                eff = np.zeros(
                    mapped.code_planes[self._plane_terms[0][0]].shape[:3],
                    dtype=np.int64)
                for plane, sign in self._plane_terms:
                    eff += sign * (mapped.code_planes[plane]
                                   * self._place).sum(axis=-1)
                worst = (mapped.geometry.fragment_size
                         * int(np.abs(eff).max(initial=0))
                         * ((1 << self.activation_bits) - 1))
                self._eff_stack = (eff.astype(np.float64), eff,
                                   worst < (1 << 53))
            return self._eff_stack

    def _kernel_budget(self) -> int:
        """Chunk budget in effect for this engine's kernel calls."""
        if self.kernel_max_elements is not None:
            return self.kernel_max_elements
        return fused_kernel_max_elements()

    # ------------------------------------------------------------------
    # Shared signal-path pieces
    # ------------------------------------------------------------------
    def _job_currents(self, conductance: np.ndarray, drive: np.ndarray,
                      noise_keys: Optional[Sequence[Tuple[int, ...]]] = None
                      ) -> np.ndarray:
        """Analog bit-line currents for a batch of fragment reads.

        ``conductance``: (jobs, m, cols, slices); ``drive``: (jobs, m,
        positions) word-line levels.  Returns (jobs, positions, cols,
        slices).  The single override point for physics
        (:class:`~repro.reram.nonideal_engine.NonidealEngine` adds IR drop
        and read noise here).  ``noise_keys`` — one integer tuple per job —
        identifies each job for deterministic per-job noise substreams;
        the ideal read ignores it.
        """
        return self.device.spec.read_voltage * np.einsum(
            "jmp,jmcs->jpcs", drive, conductance, optimize=True)

    def _convert_batch(self, held: np.ndarray, active: np.ndarray,
                       stats: EngineStats) -> np.ndarray:
        """Pedestal-correct and ADC-convert one current batch.

        ``held``: (jobs, positions, cols, slices) sampled currents;
        ``active``: (jobs, positions) count of driven rows.  Returns digital
        slice codes (jobs, positions, cols, slices).  Saturation accounting
        covers both ADC rails: overflow past the full-scale code and
        underflow below zero (reachable with read noise / IR drop).
        Accounting lands in ``stats`` (a per-call or per-worker local).
        """
        analog = (held - self._v_g_min * active[:, :, None, None]) * self._inv_v_g_step
        digital, saturated = self.adc.digitize(analog)
        stats.conversions += digital.size
        stats.saturated += saturated
        return digital

    def _digitize(self, held: np.ndarray, active: np.ndarray,
                  stats: EngineStats) -> np.ndarray:
        """:meth:`_convert_batch` plus shift-and-add slice recombination.

        Returns digital fragment values (jobs, positions, cols).
        """
        digital = self._convert_batch(held, active, stats)
        return np.einsum("jpcs,s->jpc", digital, self._place)

    def _plane_pass(self, plane: str, plane_index: int, bit: int,
                    bits_stack: np.ndarray, stats: EngineStats,
                    digest: Optional[int]) -> np.ndarray:
        """One bit-cycle through one conductance plane (reference path).

        ``bits_stack``: (n_frag, m, positions) of 0/1.
        Returns digital fragment values (n_frag, positions, cols) after ADC
        and slice recombination.  ``digest`` (the activation-block content
        hash) seeds the per-job noise substreams so the reference path draws
        the same noise as the fused kernel.
        """
        drive = self.dac.convert(bits_stack)
        keys = None
        if digest is not None:
            keys = [(digest, plane_index, bit, f)
                    for f in range(bits_stack.shape[0])]
        currents = self._job_currents(self.conductance[plane], drive,
                                      noise_keys=keys)
        held = self.sample_hold.hold(currents, copy=False)
        active = bits_stack.sum(axis=1)                    # (n_frag, positions)
        return self._digitize(held, active, stats)

    # ------------------------------------------------------------------
    # Input preparation
    # ------------------------------------------------------------------
    def _prepare(self, x_int: np.ndarray) -> np.ndarray:
        """Validate and fragment-stack one activation block.

        Returns the padded stack ``(n_frag, m, positions)`` as int64.
        """
        x_int = np.asarray(x_int)
        if not np.issubdtype(x_int.dtype, np.integer):
            raise TypeError("engine inputs must be integer activations")
        geometry = self.mapped.geometry
        if x_int.ndim == 1:
            x_int = x_int[:, None]
        if x_int.shape[0] != geometry.rows:
            raise ValueError(f"input rows {x_int.shape[0]} != matrix rows {geometry.rows}")
        if x_int.min(initial=0) < 0 or x_int.max(initial=0) >= (1 << self.activation_bits):
            raise ValueError(f"inputs outside unsigned {self.activation_bits}-bit range")
        positions = x_int.shape[1]
        pad = geometry.padded_rows - geometry.rows
        if pad:
            x_int = np.vstack([x_int, np.zeros((pad, positions), dtype=x_int.dtype)])
        return x_int.reshape(geometry.fragments_per_column,
                             geometry.fragment_size, positions).astype(np.int64)

    def _offset_correction(self, stacked: np.ndarray, out: np.ndarray) -> np.ndarray:
        """ISAAC digital 1-count correction: the stored bias contributes
        ``offset * sum(inputs)`` to every column (paper Sec. II-B)."""
        if self.mapped.scheme == "isaac_offset":
            input_totals = stacked.sum(axis=(0, 1))
            out = out - self.mapped.offset * input_totals[None, :]
        return out

    # ------------------------------------------------------------------
    # Kernel configuration hooks
    # ------------------------------------------------------------------
    def _analog_model_active(self) -> bool:
        """Whether any stochastic/analog effect acts on the signal path."""
        return False

    def _conversion_noise_active(self) -> bool:
        """Whether an all-zero drive pattern can still convert to non-zero.

        True only with read noise: the ADC's zero rail rectifies zero-mean
        noise into a positive pedestal, so even silent fragments contribute.
        The kernel must then feed the full job grid instead of masking
        all-zero jobs (deterministic effects — IR drop, variation — map zero
        drive to zero current exactly, so masking stays lossless for them).
        """
        return False

    def _job_memory_factor(self, m: int) -> int:
        """Per-job memory multiplier of ``_job_currents`` beyond the current
        tensor itself — used to scale the kernel chunk budget.  The base
        einsum read allocates nothing extra; the batched IR-drop solver
        overrides this (several ``m``-row intermediates per job)."""
        return 1

    def _signal_path_ideal(self) -> bool:
        """True when every conversion provably equals the integer dot product.

        Requires a variation-free die, no analog physics, and a
        ``_job_currents`` that is known to reduce to the ideal read.  The
        float signal path then round-trips integers with error orders of
        magnitude below the ADC's rounding threshold, so the integer
        shortcut tiers produce bit-identical results.
        """
        if self.device.variation_sigma != 0.0 or self._analog_model_active():
            return False
        impl = type(self)._job_currents
        return (impl is InSituLayerEngine._job_currents
                or getattr(impl, "_ideal_when_inactive", False))

    def _input_digest(self, stacked: np.ndarray) -> int:
        """Content hash of one activation block — the per-call component of
        the noise substream keys.  Keying noise on (input block, job)
        instead of call order makes noisy results independent of worker
        count, chunk packing and evaluation order."""
        return int.from_bytes(
            hashlib.sha1(np.ascontiguousarray(stacked).tobytes()).digest()[:8],
            "big")

    def _commit_stats(self, local: EngineStats) -> None:
        """Merge one call's stats into the engine and any active scopes.

        Called once per MVM on the calling thread — the property
        :class:`StatsScope` (and through it the serving layer's per-request
        stats slicing) relies on.  The derived ``macs`` meter is settled
        here, once per commit, from this engine's fragment size — locals
        merged across engines with different geometries therefore stay
        exact.
        """
        local.macs = local.conversions * self.mapped.geometry.fragment_size
        self.stats.merge(local)
        for scope in _active_scopes():
            scope.stats.merge(local)

    def _fan_out(self, pool, run_one, tasks: List) -> List:
        """Evaluate independent kernel tasks, optionally on a worker pool.

        Each task runs against its own local :class:`EngineStats`; the
        caller merges them at join, so no stats mutation is shared between
        workers.  Returns ``[(result, stats), ...]`` in task order.
        """

        def wrapped(task):
            local = EngineStats()
            return run_one(task, local), local

        if pool is None:
            pool = self.pool
        if pool is not None and not getattr(pool, "supports_closures", True):
            # In-layer chunk fan-out closes over the call's local arrays,
            # so it cannot ride a process pool; tile-level fan-out is the
            # process backend's unit of work and this stays inline there.
            pool = None
        if pool is not None and getattr(pool, "workers", 1) > 1 and len(tasks) > 1:
            return pool.map(wrapped, tasks)
        return [wrapped(task) for task in tasks]

    # ------------------------------------------------------------------
    # Production path: sparse CSR job scheduler
    # ------------------------------------------------------------------
    def matvec_int(self, x_int: np.ndarray, pool=None) -> np.ndarray:
        """Integer MVM: returns ``(cols, positions)`` given ``(rows, positions)``.

        ``x_int`` holds unsigned ``activation_bits``-bit integers in im2col
        layout, rows already permuted to the layer's polarization policy.

        The kernel schedules only the *nonzero structure* of the block: a
        CSR-style job list of ``(fragment, live bits x live positions)``
        grids built from the per-fragment OR of the activation bits.
        All-zero bit-planes, silent fragments and silent positions are never
        materialized, let alone evaluated.  Three tiers share the stats
        accounting and are all bit-exact against
        :meth:`matvec_int_reference` — the anchor property:

        * **exact matmul** — ideal signal path *and* an ADC wide enough that
          clipping is impossible: the bit-serial pipeline telescopes into
          one matmul against the pre-combined effective weight stack,
          compacted to the live positions;
        * **integer kernel** — ideal signal path with a clipping ADC: each
          fragment's live grid is one exact GEMM, clipped/counted exactly
          as the ADC would;
        * **analog kernel** — any deterministic analog non-ideality
          (variation, IR drop): the full float signal path over the live
          grid.  Read *noise* converts even silent fragments, so it forces
          the dense grid (:meth:`matvec_int_dense`) with deterministic
          per-job noise substreams.

        ``pool`` (or the engine's ``pool`` attribute) fans independent job
        chunks across ``repro.runtime`` workers; results and stats are
        identical at any worker count.
        """
        guard = self.guard
        if guard is not None:
            guard.check(self)
        profile = self.profile
        if profile is None:
            if not self.sparse_enabled or self._conversion_noise_active():
                return self._matvec_dense(self._prepare(x_int), pool)
            return self._matvec_sparse(self._prepare(x_int), pool)
        # Profiling brackets the identical dispatch with two perf_counter
        # reads; the tier label is resolved before timing starts so label
        # classification never lands inside the measured window.
        tier = self.dispatch_tier()
        start = time.perf_counter()
        if tier in ("dense", "dense_noise"):
            out = self._matvec_dense(self._prepare(x_int), pool)
        else:
            out = self._matvec_sparse(self._prepare(x_int), pool)
        profile.record(self, tier, time.perf_counter() - start)
        return out

    def dispatch_tier(self) -> str:
        """Which kernel tier :meth:`matvec_int` selects right now.

        ``dense_noise`` (read noise forces the dense grid), ``dense``
        (scheduler disabled), ``exact`` (ideal path, non-clipping ADC:
        the telescoped matmul), ``integer`` (ideal path, clipping ADC)
        or ``analog`` (deterministic non-ideality).  Dispatch-level:
        per-fragment size heuristics inside the sparse tiers may still
        run tiny grids through the dense executor.
        """
        if self._conversion_noise_active():
            return "dense_noise"
        if not self.sparse_enabled:
            return "dense"
        if not self._signal_path_ideal():
            return "analog"
        if self._exact_tier_constants()[0] <= self.adc.max_code:
            return "exact"
        return "integer"

    def matvec_int_dense(self, x_int: np.ndarray, pool=None) -> np.ndarray:
        """The dense bit-plane kernel (the pre-scheduler production path).

        Decomposes the whole block into a ``(bits, n_frag, m, positions)``
        bit-plane tensor and masks (bit-plane, fragment) jobs only —
        retained as the scheduling baseline of the perf suite and as the
        forced path whenever read noise makes zero-skipping lossy.
        Bit-identical to :meth:`matvec_int`.
        """
        guard = self.guard
        if guard is not None:
            guard.check(self)
        return self._matvec_dense(self._prepare(x_int), pool)

    def _matvec_sparse(self, stacked: np.ndarray, pool=None) -> np.ndarray:
        geometry = self.mapped.geometry
        n_frag, m, positions = stacked.shape
        cols = geometry.cols
        slices = self.mapped.slices
        n_planes = len(self._plane_terms)

        out = np.zeros((cols, positions), dtype=np.int64)
        n_bits = int(stacked.max(initial=0)).bit_length()
        if n_bits == 0:
            return self._offset_correction(stacked, out)

        # CSR construction: the OR over each fragment's rows is the complete
        # nonzero structure — bit b of ``bits_or[f, p]`` says whether the
        # (b, f) job has any live drive at position p.  No dense
        # (bits, n_frag, m, positions) tensor is ever built.
        bits_or = np.bitwise_or.reduce(stacked, axis=1)    # (n_frag, positions)
        shifts = np.arange(n_bits, dtype=np.int64)
        live = ((bits_or[None, :, :] >> shifts[:, None, None]) & 1
                ).astype(bool)                             # (bits, n_frag, pos)
        job_live = live.any(axis=2)                        # (bits, n_frag)
        n_jobs = int(np.count_nonzero(job_live))
        total_jobs = n_bits * n_frag
        total_pairs = total_jobs * positions

        # Hybrid dispatch: when the average per-fragment grid is too small
        # to amortize a kernel task (many fragments, few positions), the
        # dense masked kernel is the faster executor for the same schedule;
        # likewise on the analog tier when position-level sparsity is
        # negligible (the analog task has no telescoped shortcut, so a
        # near-dense grid gains nothing over the one-einsum dense kernel).
        # Both are pure dispatch decisions — results are bit-identical.
        # Skipped for the exact-matmul tier, which has no per-fragment tasks.
        ideal = self._signal_path_ideal()
        exact_tier = (ideal and self._exact_tier_constants()[0]
                      <= self.adc.max_code)
        if not exact_tier:
            live_bits_per_frag = job_live.sum(axis=0)      # (n_frag,)
            live_pos_per_frag = (bits_or != 0).sum(axis=1)  # (n_frag,)
            n_live_frag = int(np.count_nonzero(live_pos_per_frag))
            scheduled = int((live_bits_per_frag * live_pos_per_frag).sum())
            avg_task = (scheduled * cols * slices * n_planes
                        / max(1, n_live_frag))
            # sparse_min_task_elements == 0 disables both fallbacks (tests
            # use it to pin the CSR path).
            if self.sparse_min_task_elements:
                if avg_task < self.sparse_min_task_elements:
                    return self._matvec_dense(stacked, pool)
                if not ideal and scheduled > 0.9 * n_jobs * positions:
                    return self._matvec_dense(stacked, pool)

        local = EngineStats()
        local.cycles_fed += n_bits
        local.jobs_scheduled += n_jobs * n_planes
        local.jobs_skipped += (total_jobs - n_jobs) * n_planes

        if exact_tier:
            # Exact-matmul tier: no conversion can clip (the worst-case
            # fragment partial sum fits the ADC), so slice recombination,
            # bit recombination, fragment signs and plane signs telescope
            # into one matmul — over the live positions only.
            _, stack_f, stack_i, matmul_exact = self._exact_tier_constants()
            live_p = bits_or.any(axis=0)                   # (positions,)
            k = int(np.count_nonzero(live_p))
            local.pairs_scheduled += n_jobs * k * n_planes
            local.pairs_skipped += (total_pairs - n_jobs * k) * n_planes
            local.conversions += total_pairs * n_planes * cols * slices
            if k:
                flat = (stacked[:, :, live_p] if k < positions else stacked
                        ).reshape(n_frag * m, k)
                if matmul_exact:
                    sub = np.rint(stack_f.T @ flat.astype(np.float64)
                                  ).astype(np.int64)
                else:  # exactness bound exceeded: integer contraction
                    sub = stack_i.T @ flat
                if k < positions:
                    out[:, live_p] = sub
                else:
                    out = sub
            self._commit_stats(local)
            return self._offset_correction(stacked, out)

        # Kernel tiers: one task per (fragment, position chunk), each a
        # ``live bits x live positions`` grid.  Tasks are independent —
        # they touch disjoint (fragment, position) conversions — so they
        # can fan out across workers; accumulation happens at join.
        budget = self._kernel_budget()
        mem_factor = self._job_memory_factor(m)
        tasks: List[Tuple[int, np.ndarray, np.ndarray]] = []
        scheduled_pairs = 0
        for f in range(n_frag):
            lp = np.nonzero(bits_or[f])[0]
            if lp.size == 0:
                continue
            lb = np.nonzero(job_live[:, f])[0]
            scheduled_pairs += lb.size * lp.size
            per_pos = max(1, lb.size * n_planes * cols * slices * mem_factor)
            chunk = max(1, budget // per_pos)
            for start in range(0, lp.size, chunk):
                tasks.append((f, lb, lp[start:start + chunk]))
        local.pairs_scheduled += scheduled_pairs * n_planes
        local.pairs_skipped += (total_pairs - scheduled_pairs) * n_planes
        # Hardware view: the skipped conversions still happen (a silent
        # fragment column converts code 0); account them without computing.
        local.conversions += ((total_pairs - scheduled_pairs)
                              * n_planes * cols * slices)

        bit_weight = (np.int64(1) << shifts)
        run = (self._run_sparse_task_ideal if ideal
               else self._run_sparse_task_analog)
        for (f, lp, res), task_stats in self._fan_out(
                pool, lambda task, st: run(stacked, bit_weight, task, st),
                tasks):
            out[:, lp] += res.T
            local.merge(task_stats)
        self._commit_stats(local)
        return self._offset_correction(stacked, out)

    def _frag_signs(self) -> Optional[np.ndarray]:
        return self._frag_signs_arr

    def _run_sparse_task_ideal(self, stacked: np.ndarray,
                               bit_weight: np.ndarray,
                               task: Tuple[int, np.ndarray, np.ndarray],
                               stats: EngineStats):
        """Integer-kernel tier for one (fragment, live grid) task.

        Each conversion is the exact integer dot product, computed as one
        float64 GEMM (exact: sums of small non-negative integers) and
        clipped/counted exactly as the ADC rounds.

        Before expanding bit-planes, the task tests a cheap clipping bound:
        every conversion's dot product is bounded by the same contraction
        over the *nonzero mask* of the fragment's rows (a bit of a value is
        live only where the value is).  When that bound fits the ADC, no
        conversion of this task can clip and the bit-serial pipeline
        telescopes into one value-level GEMM against the effective weight
        stack — the data-dependent, per-task version of the exact-matmul
        tier (the hardware's "typical-case sums don't saturate" argument,
        applied opportunistically and provably).
        """
        f, lb, lp = task
        m = stacked.shape[1]
        cols = self.mapped.geometry.cols
        slices = self.mapped.slices
        n_planes = len(self._plane_terms)
        sub = stacked[f][:, lp]                            # (m, K)
        max_code = float(self.adc.max_code)
        if lb.size > 1:
            nz = (sub != 0).T.astype(np.float64)           # (K, m)
            bound = nz @ self._codes_float_stack()[f]      # (K, cols*S)
            if bound.max(initial=0.0) <= max_code:
                stats.conversions += (lb.size * lp.size * cols * slices
                                      * n_planes)
                eff_f, eff_i, exact = self._eff_stack_constants()
                if exact:
                    res = np.rint(sub.T.astype(np.float64)
                                  @ eff_f[f]).astype(np.int64)
                else:
                    res = sub.T @ eff_i[f]                 # (K, cols)
                frag_signs = self._frag_signs()
                if frag_signs is not None:
                    res = res * frag_signs[f]
                return f, lp, res
        bits = (sub[None, :, :] >> lb[:, None, None]) & 1
        gemm_in = bits.transpose(0, 2, 1).reshape(-1, m).astype(np.float64)
        dots = gemm_in @ self._codes_float_stack()[f]      # (B*K, cols*S)
        # Integer tier underflow is impossible (bits and codes are
        # non-negative), so only the full-scale rail can clip.
        digital = np.minimum(dots, float(self.adc.max_code))
        stats.conversions += dots.size
        stats.saturated += int(np.count_nonzero(digital != dots))
        # Recombination in float64 BLAS when provably exact (the engine
        # checks the worst partial result against 2**53 at construction),
        # else in an int64 contraction.  The trailing GEMM axis is
        # (cols, planes, slices) — _codes_float_stack's stacking order —
        # and _plane_place_f carries the plane signs.
        if self._float_recombine_exact:
            combined = (digital.reshape(-1, cols, n_planes * slices)
                        @ self._plane_place_f).reshape(lb.size, lp.size, cols)
            res = np.tensordot(bit_weight[lb].astype(np.float64), combined,
                               axes=([0], [0]))            # (K, cols)
            res = np.rint(res).astype(np.int64)
        else:
            vals = digital.astype(np.int64).reshape(
                lb.size, lp.size, cols, n_planes, slices)
            res = np.einsum("bkcns,s,n,b->kc", vals, self._place,
                            self._plane_signs, bit_weight[lb], optimize=True)
        frag_signs = self._frag_signs()
        if frag_signs is not None:
            res = res * frag_signs[f]
        return f, lp, res

    def _run_sparse_task_analog(self, stacked: np.ndarray,
                                bit_weight: np.ndarray,
                                task: Tuple[int, np.ndarray, np.ndarray],
                                stats: EngineStats):
        """Analog-kernel tier for one (fragment, live grid) task.

        Runs the full float signal path — the dual scheme's planes stacked
        along the jobs axis — over the fragment's live bits and positions
        only.  Deterministic physics map zero drive to code 0 exactly, so
        dropping silent conversions is lossless (asserted bit-exact against
        the reference loop).
        """
        f, lb, lp = task
        cols = self.mapped.geometry.cols
        slices = self.mapped.slices
        n_planes = len(self._plane_terms)
        bits = (stacked[f][:, lp][None, :, :] >> lb[:, None, None]) & 1
        drive = self.dac.convert(bits)                     # (B, m, K)
        active = bits.sum(axis=1, dtype=np.int64)          # (B, K)
        B = lb.size
        cond = np.concatenate(
            [np.broadcast_to(self.conductance[name][f],
                             (B,) + self.conductance[name][f].shape)
             for name, _ in self._plane_terms])            # (B*n, m, cols, s)
        if n_planes > 1:
            drive = np.concatenate([drive] * n_planes)
            active = np.concatenate([active] * n_planes)
        currents = self._job_currents(cond, drive)
        held = self.sample_hold.hold(currents, copy=False)
        digital = self._convert_batch(held, active, stats)  # (B*n, K, cols, s)
        vals = digital.reshape(n_planes, B, lp.size, cols, slices)
        res = np.einsum("nbkcs,s,n,b->kc", vals, self._place,
                        self._plane_signs, bit_weight[lb],
                        optimize=True)                      # (K, cols)
        frag_signs = self._frag_signs()
        if frag_signs is not None:
            res = res * frag_signs[f]
        return f, lp, res

    # ------------------------------------------------------------------
    # Dense bit-plane kernel (the scheduling baseline / noise path)
    # ------------------------------------------------------------------
    def _matvec_dense(self, stacked: np.ndarray, pool=None) -> np.ndarray:
        geometry = self.mapped.geometry
        n_frag, m, positions = stacked.shape
        cols = geometry.cols
        slices = self.mapped.slices
        n_planes = len(self._plane_terms)

        out = np.zeros((cols, positions), dtype=np.int64)
        n_bits = int(stacked.max(initial=0)).bit_length()
        if n_bits == 0:
            return self._offset_correction(stacked, out)

        local = EngineStats()
        # (bits, n_frag, m, positions) bit-plane tensor, LSB first.
        shifts = np.arange(n_bits, dtype=np.int64)
        planes = ((stacked[None, ...] >> shifts[:, None, None, None]) & 1
                  ).astype(np.uint8)

        # Zero-skipping as masking: keep only (bit, fragment) jobs with at
        # least one live bit.  The hardware still clocks every cycle up to
        # the top live bit, so cycle/conversion accounting stays on the
        # hardware's terms (identical to the per-bit reference loop).  With
        # conversion noise the mask must stay full: silent fragments still
        # convert, and the ADC rectifies their noise into a real pedestal.
        noisy = self._conversion_noise_active()
        if noisy:
            live = np.ones((n_bits, n_frag), dtype=bool)
        else:
            live = planes.any(axis=(2, 3))
        bits_idx, frag_idx = np.nonzero(live)
        n_jobs = bits_idx.size
        local.cycles_fed += n_bits
        local.jobs_scheduled += n_jobs * n_planes
        local.jobs_skipped += (n_bits * n_frag - n_jobs) * n_planes
        local.pairs_scheduled += n_jobs * positions * n_planes
        local.pairs_skipped += (n_bits * n_frag - n_jobs) * positions * n_planes
        local.conversions += ((n_bits * n_frag - n_jobs)
                              * positions * cols * slices * n_planes)
        digest = self._input_digest(stacked) if noisy else None

        ideal = self._signal_path_ideal()
        if ideal:
            headroom, stack_f, stack_i, matmul_exact = self._exact_tier_constants()
            if headroom <= self.adc.max_code:
                # Exact-matmul tier: no conversion can clip (the worst-case
                # fragment partial sum fits the ADC), so slice recombination,
                # bit recombination, fragment signs and plane signs telescope
                # into one matmul against the effective weight stack.
                local.conversions += (n_jobs * positions * cols * slices
                                      * n_planes)
                flat = stacked.reshape(n_frag * m, positions)
                if matmul_exact:
                    out += np.rint(stack_f.T @ flat.astype(np.float64)
                                   ).astype(np.int64)
                else:  # exactness bound exceeded: integer contraction instead
                    out += stack_i.T @ flat
                self._commit_stats(local)
                return self._offset_correction(stacked, out)

        # Per-(job, slice) shift-and-add weights: ADC place value x input-bit
        # place value x plane sign — and per-(job, col) fragment signs.  All
        # digital recombination collapses into one integer contraction per
        # chunk, so no (bits, n_frag, positions, cols) accumulator is ever
        # materialized.
        bit_weight = (np.int64(1) << bits_idx.astype(np.int64))    # (n_jobs,)
        frag_signs = self._frag_signs()

        per_job = max(1, positions * cols * slices * n_planes
                      * self._job_memory_factor(m))
        chunk = max(1, self._kernel_budget() // per_job)
        chunks = [(start, min(start + chunk, n_jobs))
                  for start in range(0, n_jobs, chunk)]

        def run_chunk(bounds: Tuple[int, int], stats: EngineStats) -> np.ndarray:
            start, stop = bounds
            b = bits_idx[start:stop]
            f = frag_idx[start:stop]
            j = b.size
            bit_planes = planes[b, f]                      # (j, m, positions)
            slice_w = bit_weight[start:start + j, None] * self._place[None, :]
            col_w = frag_signs[f] if frag_signs is not None else None
            if n_planes > 1:
                # Dual scheme: positive and negative planes share one kernel
                # call, stacked along the jobs axis with opposite signs.
                slice_w = np.concatenate(
                    [sign * slice_w for _, sign in self._plane_terms])
                if col_w is not None:
                    col_w = np.concatenate([col_w] * n_planes)
            if ideal:
                # Integer kernel tier: each conversion is the integer dot
                # product, clipped at the rails exactly as the ADC rounds.
                codes = (self.mapped.code_planes[self._plane_terms[0][0]][f]
                         if n_planes == 1 else np.concatenate(
                             [self.mapped.code_planes[name][f]
                              for name, _ in self._plane_terms]))
                bits_in = (bit_planes if n_planes == 1
                           else np.concatenate([bit_planes] * n_planes))
                dots = np.einsum("jmp,jmcs->jpcs", bits_in, codes,
                                 optimize=True)
                digital = np.clip(dots, 0, self.adc.max_code)
                stats.conversions += dots.size
                stats.saturated += int(np.count_nonzero(digital != dots))
            else:
                drive = self.dac.convert(bit_planes)
                active = bit_planes.sum(axis=1, dtype=np.int64)
                cond = (self.conductance[self._plane_terms[0][0]][f]
                        if n_planes == 1 else np.concatenate(
                            [self.conductance[name][f]
                             for name, _ in self._plane_terms]))
                keys = None
                if digest is not None:
                    keys = [(digest, pi, int(bb), int(ff))
                            for pi in range(n_planes)
                            for bb, ff in zip(b, f)]
                if n_planes > 1:
                    drive = np.concatenate([drive] * n_planes)
                    active = np.concatenate([active] * n_planes)
                currents = self._job_currents(cond, drive, noise_keys=keys)
                held = self.sample_hold.hold(currents, copy=False)
                digital = self._convert_batch(held, active, stats)
            if col_w is None:
                return np.einsum("jpcs,js->pc", digital, slice_w,
                                 optimize=True)
            return np.einsum("jpcs,js,jc->pc", digital, slice_w, col_w,
                             optimize=True)

        acc = np.zeros((positions, cols), dtype=np.int64)
        for partial, chunk_stats in self._fan_out(pool, run_chunk, chunks):
            acc += partial
            local.merge(chunk_stats)
        out += acc.T
        self._commit_stats(local)
        return self._offset_correction(stacked, out)

    # ------------------------------------------------------------------
    # Reference path (the original cycle-by-cycle loop)
    # ------------------------------------------------------------------
    def matvec_int_reference(self, x_int: np.ndarray) -> np.ndarray:
        """Cycle-by-cycle MVM: the original bit-serial loop, kept forever.

        Semantically identical to :meth:`matvec_int` (asserted across all
        schemes in ``tests/reram/test_engine_fused.py`` and
        ``tests/reram/test_engine_sparse.py``) but evaluates one bit-plane
        per Python iteration — the bit-exactness oracle and the baseline of
        ``benchmarks/run_perf_suite.py``.  With read noise it draws the
        same per-job substreams as the production path, so even noisy
        engines are bit-exact across paths.
        """
        stacked = self._prepare(x_int)
        positions = stacked.shape[-1]
        geometry = self.mapped.geometry
        local = EngineStats()
        digest = (self._input_digest(stacked)
                  if self._conversion_noise_active() else None)

        out = np.zeros((geometry.cols, positions), dtype=np.int64)
        for bit in range(self.activation_bits):
            remaining = stacked >> bit
            if not remaining.any():
                break  # zero-skipping: every shift register is empty
            bits_stack = remaining & 1
            local.cycles_fed += 1
            local.jobs_scheduled += stacked.shape[0] * len(self._plane_terms)
            local.pairs_scheduled += (stacked.shape[0] * positions
                                      * len(self._plane_terms))
            frag = np.zeros((stacked.shape[0], positions, geometry.cols),
                            dtype=np.int64)
            for plane_index, (plane, sign) in enumerate(self._plane_terms):
                frag += sign * self._plane_pass(plane, plane_index, bit,
                                                bits_stack, local, digest)
            if self.sign_indicator is not None:
                frag = self.sign_indicator.apply(np.transpose(frag, (0, 2, 1)))
                frag = np.transpose(frag, (0, 2, 1))
            out += (1 << bit) * frag.sum(axis=0).T          # (cols, positions)
        self._commit_stats(local)
        return self._offset_correction(stacked, out)

    def matvec_float(self, x_int: np.ndarray, weight_scale: float,
                     activation_scale: float) -> np.ndarray:
        """Dequantized MVM result in real units."""
        return self.matvec_int(x_int).astype(np.float64) * weight_scale * activation_scale


def build_engine(levels_matrix: np.ndarray, geometry: FragmentGeometry,
                 spec: QuantizationSpec, device: ReRAMDevice,
                 scheme: str = "forms", signs: Optional[np.ndarray] = None,
                 adc: Optional[ADCSpec] = None,
                 activation_bits: int = 16,
                 die_cache: Optional[DieCache] = None,
                 kernel_max_elements: Optional[int] = None) -> InSituLayerEngine:
    """Map integer levels and construct the engine in one step."""
    if scheme == "forms" and signs is None:
        from .mapping import infer_signs
        signs = infer_signs(levels_matrix, geometry)
    mapped = map_layer(levels_matrix, geometry, spec, scheme=scheme, signs=signs)
    return InSituLayerEngine(mapped, device, adc=adc,
                             activation_bits=activation_bits,
                             die_cache=die_cache,
                             kernel_max_elements=kernel_max_elements)


# ---------------------------------------------------------------------------
# Fast effective-weight path (network-scale variation studies, Table VI)
# ---------------------------------------------------------------------------

def effective_levels(mapped: MappedLayer, device: ReRAMDevice) -> np.ndarray:
    """Real-valued weight levels as realized by a noisy die.

    Equivalent to the bit-serial engine when ADC quantization is exact:
    variation multiplies each cell's level code, and shift-and-add recombines
    the noisy slices.  Note how the three schemes differ in noise coupling —
    the ISAAC offset plane carries the large bias through the same noisy
    cells (variation on the bias is *not* cancelled by the digital
    correction, which subtracts the ideal offset), while FORMS stores bare
    magnitudes.  This is the mechanism behind the robustness gap the paper
    cites ([29]).
    """
    spec = mapped.spec
    geometry = mapped.geometry
    place = slice_weights(next(iter(mapped.code_planes.values())).shape[-1], spec.cell_bits)

    def noisy_plane(codes: np.ndarray) -> np.ndarray:
        factors = device.variation_factors(codes.shape)
        return (codes * factors * place).sum(axis=-1)      # (n_frag, m, cols)

    if mapped.scheme == "forms":
        stack = noisy_plane(mapped.code_planes["main"])
        signed = stack * mapped.signs[:, None, :]
        return geometry.from_fragment_stack(signed)
    if mapped.scheme == "isaac_offset":
        stack = noisy_plane(mapped.code_planes["main"])
        pad_rows = geometry.padded_rows - geometry.rows
        corrected = stack - mapped.offset
        if pad_rows:  # padding rows were never biased
            corrected[-1, -pad_rows:, :] += mapped.offset
        return geometry.from_fragment_stack(corrected)
    # dual
    pos = noisy_plane(mapped.code_planes["positive"])
    neg = noisy_plane(mapped.code_planes["negative"])
    return geometry.from_fragment_stack(pos - neg)

"""WorkerPool / parallel_map contract tests."""

import os
import threading
import time

import pytest

from repro.runtime import WorkerPool, parallel_map, resolve_workers
from repro.runtime.executor import WORKERS_ENV


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers() == 7

    def test_cpu_default(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_invalid_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ValueError):
            resolve_workers()


class TestWorkerPool:
    def test_ordered_results(self):
        with WorkerPool(4) as pool:
            out = pool.map(lambda i: i * i, range(20))
        assert out == [i * i for i in range(20)]

    def test_serial_pool_is_inline(self):
        thread_names = []
        with WorkerPool(1) as pool:
            pool.map(lambda _: thread_names.append(
                threading.current_thread().name), range(3))
        assert all(name == threading.main_thread().name
                   for name in thread_names)

    def test_exceptions_propagate(self):
        def boom(i):
            if i == 3:
                raise RuntimeError("task 3 failed")
            return i

        with WorkerPool(4) as pool:
            with pytest.raises(RuntimeError, match="task 3 failed"):
                pool.map(boom, range(8))

    def test_first_error_is_eager_not_drained(self):
        """The eager-error contract: a fast failure propagates without
        waiting for the slow healthy siblings to finish their work."""
        def task(i):
            if i == 0:
                raise RuntimeError("fast failure")
            time.sleep(0.5)
            return i

        pool = WorkerPool(4)
        try:
            start = time.monotonic()
            with pytest.raises(RuntimeError, match="fast failure"):
                pool.map(task, range(8))
            # serial drain would cost ~3.5 s of sleeps; eager is instant
            assert time.monotonic() - start < 0.4
        finally:
            pool.close()   # joins the in-flight sleepers, bounded

    def test_pending_work_is_cancelled_after_an_error(self):
        """Items the pool has not started when the error surfaces must be
        cancelled, not executed: a die-fault abort mid-batch cannot keep
        burning queued MVMs."""
        release = threading.Event()
        started = []
        lock = threading.Lock()

        def task(i):
            with lock:
                started.append(i)
            if i == 0:
                raise RuntimeError("abort")
            release.wait(timeout=10.0)
            return i

        pool = WorkerPool(2)
        try:
            with pytest.raises(RuntimeError, match="abort"):
                pool.map(task, range(8))
            # each worker can hold at most one blocked task when the
            # error lands; everything still queued was cancelled
            assert len(started) <= 3
        finally:
            release.set()
            pool.close()
        assert len(started) < 8

    def test_earliest_item_error_wins_deterministically(self):
        """When several items fail, the caller sees the error of the
        earliest item in submission order — not a completion-order race."""
        def boom(i):
            raise ValueError(f"item-{i}")

        with WorkerPool(4) as pool:
            with pytest.raises(ValueError, match="item-0"):
                pool.map(boom, range(8))

    def test_error_then_close_never_hangs(self):
        """After an eager-error map, close() must return promptly: no
        orphaned future may keep the pool alive."""
        def task(i):
            if i % 2:
                raise RuntimeError("odd")
            return i

        pool = WorkerPool(3)
        with pytest.raises(RuntimeError, match="odd"):
            pool.map(task, range(9))
        closer = threading.Thread(target=pool.close)
        closer.start()
        closer.join(timeout=10.0)
        assert not closer.is_alive(), "close() hung after an error map"

    def test_reentrant_map_runs_inline(self):
        """A map issued from a worker thread must not deadlock the pool."""
        with WorkerPool(2) as pool:
            def outer(i):
                return sum(pool.map(lambda j: i + j, range(3)))
            assert pool.map(outer, range(4)) == [3, 6, 9, 12]

    def test_single_item_runs_inline(self):
        with WorkerPool(4) as pool:
            assert pool.map(lambda x: threading.current_thread().name,
                            [0]) == [threading.main_thread().name]


class TestParallelMap:
    def test_owned_pool(self):
        assert parallel_map(lambda x: x + 1, range(5), workers=3) == \
            [1, 2, 3, 4, 5]

    def test_borrowed_pool_left_open(self):
        with WorkerPool(2) as pool:
            parallel_map(lambda x: x, range(4), pool=pool)
            assert pool.map(lambda x: x, [1, 2]) == [1, 2]


class TestSweepFanOut:
    def test_dse_sweep_worker_invariant(self):
        from repro.arch.dse import DesignPoint, sweep
        points = [DesignPoint(fragment_size=m) for m in (4, 8, 16)]
        serial = sweep(points)
        pooled = sweep(points, workers=3)
        assert [e.point for e in pooled] == [e.point for e in serial]
        assert [e.gops for e in pooled] == [e.gops for e in serial]

    def test_crossbar_size_sweep_worker_invariant(self):
        from repro.arch.dse import crossbar_size_sweep
        serial = crossbar_size_sweep(options=(64, 128))
        pooled = crossbar_size_sweep(options=(64, 128), workers=2)
        assert [r.analog_error for r in pooled] == \
            [r.analog_error for r in serial]

    def test_die_cache_shared_across_workers(self):
        import numpy as np
        from repro.core import FragmentGeometry, QuantizationSpec
        from repro.core.polarization import compute_signs, project_polarization
        from repro.reram import DeviceSpec, DieCache, ReRAMDevice, build_engine

        rng = np.random.default_rng(0)
        geom = FragmentGeometry((4, 2, 3, 3), 4)
        w = rng.normal(size=(4, 2, 3, 3))
        w = project_polarization(w, geom, compute_signs(w, geom))
        levels = np.clip(np.rint(w * 50), -50, 50).astype(np.int64)
        levels = geom.matrix(levels)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.2, seed=1)
        cache = DieCache()

        engines = parallel_map(
            lambda _: build_engine(levels, geom, QuantizationSpec(8, 2),
                                   device, die_cache=cache),
            range(6), workers=3)
        assert cache.misses == 1
        assert cache.hits == 5
        first = engines[0].conductance["main"]
        assert all(e.conductance["main"] is first for e in engines[1:])

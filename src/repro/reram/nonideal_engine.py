"""Bit-serial engine with physical non-idealities in the signal path.

:class:`NonidealEngine` extends the exact :class:`InSituLayerEngine` with the
device/circuit effects of :mod:`repro.reram.nonideal`, applied where the
physics puts them:

* **stuck-at faults** hit the cell codes at programming time (before the
  conductance plane is written);
* **IR drop + nonlinear cell I-V** perturb the analog column currents of
  every bit-serial cycle — evaluated per fragment with the first-order
  network model (the fragment's m rows and its column wiring are the
  sub-array's electrical extent);
* **read noise** adds to the sensed current at the sample-and-hold.

With every knob off the engine is bit-exact (inherits the anchor property);
each knob degrades the output in a measurable, attributable way — the
methodology behind the paper's Table VI extended to the full signal path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .converters import ADCSpec
from .device import ReRAMDevice
from .engine import InSituLayerEngine
from .mapping import MappedLayer
from .nonideal import CellIV, FaultModel, ReadNoise, WireModel, first_order_currents


class NonidealEngine(InSituLayerEngine):
    """The in-situ engine with faults, IR drop, cell nonlinearity and noise.

    Parameters beyond :class:`InSituLayerEngine`:

    fault_model:
        Stuck-at fault injector applied to every code plane at programming
        time; the realized fault fraction is recorded in ``fault_fraction``.
    wire, cell_iv:
        Wire parasitics and cell I-V curve for the per-fragment IR-drop
        model.  Both must be given to enable the analog-network path;
        ``cell_iv`` may be linear (superposition applies *within* one
        fragment conversion — across fragments FORMS converts separately,
        which is exactly the granularity advantage).
    read_noise:
        Additive Gaussian current noise at the sample-and-hold.
    """

    def __init__(self, mapped: MappedLayer, device: ReRAMDevice,
                 adc: Optional[ADCSpec] = None, activation_bits: int = 16,
                 fault_model: Optional[FaultModel] = None,
                 wire: Optional[WireModel] = None,
                 cell_iv: Optional[CellIV] = None,
                 read_noise: Optional[ReadNoise] = None):
        if (wire is None) != (cell_iv is None):
            raise ValueError("wire and cell_iv must be supplied together")
        self.fault_fraction = 0.0
        if fault_model is not None:
            faulty_planes = {}
            total = faulted = 0
            for plane, codes in mapped.code_planes.items():
                mask = fault_model.sample(codes.shape)
                faulty_planes[plane] = FaultModel.apply_to_codes(
                    codes, mask, device.spec.levels)
                total += mask.size
                faulted += int((mask != 0).sum())
            mapped = MappedLayer(scheme=mapped.scheme, geometry=mapped.geometry,
                                 spec=mapped.spec, code_planes=faulty_planes,
                                 signs=mapped.signs, offset=mapped.offset)
            self.fault_fraction = faulted / total if total else 0.0
        super().__init__(mapped, device, adc=adc,
                         activation_bits=activation_bits)
        self.wire = wire
        self.cell_iv = cell_iv
        self.read_noise = read_noise

    # ------------------------------------------------------------------
    def _analog_currents(self, plane: str, bits_stack: np.ndarray) -> np.ndarray:
        """Column currents of one bit-cycle, with the configured physics.

        Returns shape ``(n_frag, positions, cols, slices)`` like the parent's
        internal convention.
        """
        conductance = self.conductance[plane]     # (n_frag, m, cols, slices)
        spec = self.device.spec
        drive = self.dac.convert(bits_stack)      # (n_frag, m, positions)
        if self.wire is None:
            currents = spec.read_voltage * np.einsum(
                "fmp,fmcs->fpcs", drive, conductance, optimize=True)
        else:
            n_frag, m, cols, slices = conductance.shape
            flat = conductance.reshape(n_frag, m, cols * slices)
            currents = np.empty((n_frag, drive.shape[-1], cols, slices))
            for f in range(n_frag):
                out = first_order_currents(flat[f],
                                           spec.read_voltage * drive[f],
                                           self.wire, cell_iv=self.cell_iv)
                currents[f] = out.reshape(cols, slices, -1).transpose(2, 0, 1)
        if self.read_noise is not None:
            currents = self.read_noise.apply(currents)
        return currents

    def _plane_pass(self, plane: str, bits_stack: np.ndarray) -> np.ndarray:
        from .bitslice import slice_weights
        from .device import codes_to_digital

        currents = self._analog_currents(plane, bits_stack)
        held = self.sample_hold.hold(currents)
        active = bits_stack.sum(axis=1)
        analog = codes_to_digital(held, self.device.spec,
                                  active[:, :, None, None])
        digital = self.adc.convert(analog)
        self.stats.conversions += digital.size
        self.stats.saturated += int((np.rint(analog) > self.adc.max_code).sum())
        place = slice_weights(self.conductance[plane].shape[-1],
                              self.mapped.spec.cell_bits)
        return (digital * place).sum(axis=-1)


def output_error(engine: InSituLayerEngine, reference: InSituLayerEngine,
                 x_int: np.ndarray) -> float:
    """Relative L1 error of ``engine`` against a reference engine's output."""
    noisy = engine.matvec_int(x_int).astype(np.float64)
    exact = reference.matvec_int(x_int).astype(np.float64)
    denom = np.abs(exact).sum()
    return float(np.abs(noisy - exact).sum() / denom) if denom else 0.0

"""The HTTP front end's core contract: the transport is numerics-invisible.

A decoded ``POST /v1/infer`` response must be **bit-identical** to the
in-process ``InferenceServer.submit`` result for the same image — at any
worker count, read noise on and off, JSON or base64 payload encoding —
and to the direct serial single-image forward those are contracted to
equal.  Plus: batch coalescing over the wire, multi-tenant routing with
SLA classes, the operational endpoints, and the draining shutdown.
"""

import threading
import time

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.perf.suite import _post_relu_network
from repro.reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
from repro.reram.nonideal import ReadNoise
from repro.reram.nonideal_engine import NonidealEngine
from repro.runtime import run_network_serial
from repro.serving import (HttpClient, HttpError, HttpFrontend,
                           InferenceServer, ModelRegistry, PriorityClass,
                           SlaPolicy)

WORKER_COUNTS = (1, 3)


@pytest.fixture(scope="module")
def network_case():
    model, config, images = _post_relu_network()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    return model, config, images, device, adc


def make_server(network_case, *, noise=False, **kwargs):
    model, config, images, device, adc = network_case
    build = dict(adc=adc, activation_bits=12)
    if noise:
        spec = DeviceSpec()
        build["engine_cls"] = NonidealEngine
        build["read_noise"] = ReadNoise.for_fragment(
            config.fragment_size, spec.g_max, spec.read_voltage,
            relative_sigma=0.05, seed=3)
    return InferenceServer.from_model(model, config, device,
                                      **build, **kwargs)


class TestWireBitIdentity:
    """The acceptance matrix: workers x {ideal, read noise}, both
    encodings, decoded wire output == in-process submit == serial."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("noise", [False, True],
                             ids=["ideal", "read_noise"])
    def test_infer_equals_inprocess_submit(self, network_case, workers,
                                           noise):
        images = network_case[2][:4]
        decoded = []
        with make_server(network_case, noise=noise, workers=workers,
                         max_batch=4, max_wait_s=0.02) as server:
            with HttpFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                for i, image in enumerate(images):
                    binary = bool(i % 2)   # alternate json / base64 .npy
                    wire = client.infer(image, binary=binary)
                    inproc = server.submit(image)
                    np.testing.assert_array_equal(wire.output, inproc.output)
                    decoded.append(wire.output)
            serial = run_network_serial(server.model, images, tile_size=1)
        # and both equal the serial single-image contract reference
        for output, reference in zip(decoded, serial):
            np.testing.assert_array_equal(output, reference)

    @pytest.mark.parametrize("binary", [False, True], ids=["json", "b64"])
    def test_infer_equals_serial_both_encodings(self, network_case, binary):
        images = network_case[2][:3]
        with make_server(network_case, workers=2,
                         max_batch=4, max_wait_s=0.02) as server:
            with HttpFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                outputs = [client.infer(image, binary=binary).output
                           for image in images]
            serial = run_network_serial(server.model, images, tile_size=1)
        for output, reference in zip(outputs, serial):
            np.testing.assert_array_equal(output, reference)

    def test_infer_batch_equals_submit_many(self, network_case):
        images = network_case[2]
        with make_server(network_case, workers=2, max_batch=4,
                         max_wait_s=0.05) as server:
            with HttpFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                wire = client.infer_batch(images)
                inproc = server.submit_many(images)
        assert len(wire) == len(inproc)
        for wired, direct in zip(wire, inproc):
            np.testing.assert_array_equal(wired.output, direct.output)

    def test_infer_batch_coalesces(self, network_case):
        """Batch-endpoint requests are enqueued before any is waited on,
        so they may ride shared batches (receipts prove it)."""
        images = network_case[2]
        with make_server(network_case, workers=1, max_batch=8,
                         max_wait_s=0.1) as server:
            with HttpFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                results = client.infer_batch(images)
        sizes = [result.stats["batch_size"] for result in results]
        assert max(sizes) > 1

    def test_receipt_travels_with_the_result(self, network_case):
        image = network_case[2][0]
        with make_server(network_case, workers=1) as server:
            with HttpFrontend(server) as frontend:
                wire = HttpClient.for_frontend(frontend).infer(image)
        stats = wire.stats
        assert stats["batch_size"] >= 1
        assert stats["latency_s"] >= stats["queue_wait_s"] >= 0.0
        assert stats["engine_stats"]["conversions"] > 0
        assert stats["model"] == "default"


# ---------------------------------------------------------------------------
# lightweight two-tenant fixture: deterministic fake networks make the
# routing/scheduling semantics fast to exercise (numerics are trivially
# exact; the heavy bit-identity matrix above covers the real engines)
def linear_network(scale, shift):
    def network(tensor):
        return Tensor(tensor.data.reshape(tensor.data.shape[0], -1)
                      * scale + shift)
    return network


@pytest.fixture()
def two_tenant_frontend():
    registry = ModelRegistry(workers=2)
    registry.register_network("fast", linear_network(2.0, 1.0))
    registry.register_network("batch", linear_network(-3.0, 0.5))
    policy = SlaPolicy((
        PriorityClass("interactive", max_batch=2, max_wait_s=0.001),
        PriorityClass("bulk", max_batch=8, max_wait_s=0.004),
    ))
    server = InferenceServer(registry=registry, policy=policy)
    frontend = HttpFrontend(server).start()
    try:
        yield frontend, server
    finally:
        frontend.shutdown()
        server.shutdown()
        registry.close()


class TestMultiTenantOverTheWire:
    def test_routing_and_classes(self, two_tenant_frontend):
        frontend, server = two_tenant_frontend
        client = HttpClient.for_frontend(frontend)
        image = np.arange(6.0)
        fast = client.infer(image, model="fast", priority="interactive",
                            deadline_ms=5000.0)
        bulk = client.infer(image, model="batch", priority="bulk")
        np.testing.assert_array_equal(fast.output, image * 2.0 + 1.0)
        np.testing.assert_array_equal(bulk.output, image * -3.0 + 0.5)
        assert fast.stats["priority_class"] == "interactive"
        assert fast.stats["deadline_s"] == pytest.approx(5.0)
        assert bulk.stats["model"] == "batch"

    def test_concurrent_mixed_class_clients(self, two_tenant_frontend):
        """Many client threads, both tenants and classes interleaved —
        every decoded output equals its tenant's in-process forward."""
        frontend, server = two_tenant_frontend
        client = HttpClient.for_frontend(frontend)
        rng = np.random.default_rng(11)
        images = rng.normal(size=(16, 6))
        cases = [("fast", "interactive", 2.0, 1.0),
                 ("batch", "bulk", -3.0, 0.5)]
        outcomes = [None] * len(images)

        def fire(i):
            model, priority, scale, shift = cases[i % 2]
            result = client.infer(images[i], model=model, priority=priority,
                                  binary=bool(i % 3 == 0))
            outcomes[i] = (result.output, images[i] * scale + shift,
                           result.stats["model"], model)

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(len(images))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for output, expected, served_as, wanted in outcomes:
            np.testing.assert_array_equal(output, expected)
            assert served_as == wanted
        snapshot = client.stats()
        assert snapshot["requests_completed"] >= len(images)
        assert set(snapshot["per_class"]) == {"interactive", "bulk"}

    def test_models_endpoint(self, two_tenant_frontend):
        frontend, _ = two_tenant_frontend
        payload = HttpClient.for_frontend(frontend).models()
        assert sorted(payload["models"]) == ["batch", "fast"]
        assert "die_cache" in payload and "workers" in payload

    def test_stats_endpoint_shape(self, two_tenant_frontend):
        frontend, _ = two_tenant_frontend
        client = HttpClient.for_frontend(frontend)
        client.infer(np.ones(4), model="fast")
        snapshot = client.stats()
        for key in ("requests_completed", "requests_shed", "shed_by_reason",
                    "latency_p50_s", "latency_p95_s", "occupancy",
                    "queue_depth", "per_class", "per_model"):
            assert key in snapshot
        assert snapshot["requests_completed"] >= 1

    def test_healthz(self, two_tenant_frontend):
        frontend, _ = two_tenant_frontend
        payload = HttpClient.for_frontend(frontend).healthz()
        assert payload["status"] == "ok"
        assert payload["draining"] is False
        assert sorted(payload["models"]) == ["batch", "fast"]


# ---------------------------------------------------------------------------
class TestDrainingShutdown:
    def make_slow_frontend(self, delay=0.4):
        registry = ModelRegistry(workers=1)

        def slow(tensor):
            time.sleep(delay)
            return Tensor(tensor.data.reshape(tensor.data.shape[0], -1) * 2.0)

        registry.register_network("slow", slow)
        server = InferenceServer(registry=registry, max_batch=1,
                                 max_wait_s=0.0)
        return HttpFrontend(server, owns_server=True).start(), server

    def test_inflight_completes_new_refused(self):
        frontend, server = self.make_slow_frontend()
        client = HttpClient.for_frontend(frontend)
        image = np.ones(4)
        inflight = {}

        def first():
            inflight["result"] = client.infer(image)

        worker = threading.Thread(target=first)
        worker.start()
        time.sleep(0.15)           # r1 is dispatching inside the batch
        closer = threading.Thread(target=frontend.shutdown)
        closer.start()
        time.sleep(0.1)            # drain flag is up, server still draining
        assert frontend.draining
        with pytest.raises(HttpError) as refused:
            client.infer(image)
        assert refused.value.status == 503
        assert refused.value.code == "shutting_down"
        worker.join(timeout=5.0)
        closer.join(timeout=5.0)
        # the in-flight request was served, bit-exactly, during the drain
        np.testing.assert_array_equal(inflight["result"].output, image * 2.0)
        # and the socket is actually gone
        with pytest.raises(OSError):
            client.healthz()

    def test_healthz_reports_draining(self):
        frontend, server = self.make_slow_frontend(delay=0.5)
        client = HttpClient.for_frontend(frontend)
        threading.Thread(target=lambda: client.infer(np.ones(4)),
                         daemon=True).start()
        time.sleep(0.15)
        closer = threading.Thread(target=frontend.shutdown)
        closer.start()
        time.sleep(0.1)
        payload = client.healthz()     # GETs stay answerable while draining
        assert payload["status"] == "draining"
        assert payload["draining"] is True
        closer.join(timeout=5.0)

    def test_shutdown_is_idempotent(self):
        frontend, server = self.make_slow_frontend(delay=0.0)
        frontend.shutdown()
        frontend.shutdown()            # second call is a no-op, no raise

    def test_borrowed_server_survives_frontend(self):
        """owns_server=False: the wire closes, in-process serving goes on."""
        registry = ModelRegistry(workers=1)
        registry.register_network("toy", linear_network(2.0, 0.0))
        with registry, InferenceServer(registry=registry) as server:
            frontend = HttpFrontend(server).start()
            HttpClient.for_frontend(frontend).infer(np.ones(3))
            frontend.shutdown()
            result = server.submit(np.ones(3))     # still alive
            np.testing.assert_array_equal(result.output, np.ones(3) * 2.0)

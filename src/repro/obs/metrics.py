"""A lock-cheap metrics registry with Prometheus text exposition.

Three instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` (fixed buckets) — each a *family* of labelled
children.  Design constraints, in order:

* **cheap on the hot path** — one lock per family, held only for the
  few arithmetic ops of an update; children are cached per label tuple
  so a steady-state update is a dict hit plus an add;
* **zero allocation when disabled** — a registry built with
  ``enabled=False`` hands out one shared :data:`NULL_CHILD` whose
  methods are no-ops, so instrumented code never branches and never
  allocates for a registry that is off;
* **snapshot-consistent reads** — :meth:`MetricsRegistry.collect` takes
  each family's lock once and copies its children, so a rendered
  scrape never shows a histogram whose ``_count`` disagrees with the
  sum of its buckets.

:func:`MetricsRegistry.render` emits Prometheus text exposition format
0.0.4 (``# HELP`` / ``# TYPE`` / samples, histogram ``_bucket{le=...}``
cumulative counts plus ``_sum`` / ``_count``), and
:func:`parse_prometheus_text` is the strict parser the tests and the
wire smoke use to assert a scrape is well formed — the acceptance
criterion is machine-checked, not eyeballed.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Content-Type of a /metrics response (text exposition format 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: default histogram buckets for serving latencies (seconds)
LATENCY_BUCKETS_S = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                     0.25, 0.5, 1.0, 2.5)

#: default histogram buckets for per-MVM engine dispatch times (seconds)
ENGINE_BUCKETS_S = (1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3,
                    2.5e-3, 5e-3, 1e-2, 2.5e-2)

#: default histogram buckets for batch sizes (requests per batch)
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

_NAME_OK = set("abcdefghijklmnopqrstuvwxyz"
               "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


class _NullChild:
    """The shared do-nothing child a disabled registry hands out."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_CHILD = _NullChild()


class _CounterChild:
    __slots__ = ("_family", "value")

    def __init__(self, family: "_Family"):
        self._family = family
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._family._lock:
            self.value += amount

    def set(self, value: float) -> None:
        """Advance the counter to an externally tracked monotone total.

        For counters that *mirror* a source that already counts
        monotonically (``ServerStats``, ``RouterStats``) a scrape hook
        sets the total instead of replaying increments.  Moving
        backwards raises — the monotonicity contract is the source's to
        keep and this is where a violation would surface.
        """
        with self._family._lock:
            if value < self.value:
                raise ValueError(
                    f"counter {self._family.name} would decrease "
                    f"({self.value} -> {value})")
            self.value = value


class _GaugeChild:
    __slots__ = ("_family", "value", "_fn")

    def __init__(self, family: "_Family"):
        self._family = family
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._family._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self.value += amount

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        """Read the gauge from ``fn()`` at collect time (scrape-pull)."""
        with self._family._lock:
            self._fn = fn

    def _read(self) -> float:
        # caller holds the family lock
        return float(self._fn()) if self._fn is not None else self.value


class _HistogramChild:
    __slots__ = ("_family", "bucket_counts", "sum", "count")

    def __init__(self, family: "_Family"):
        self._family = family
        self.bucket_counts = [0] * (len(family.buckets) + 1)  # + overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self._family.buckets, value)
        with self._family._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1


_CHILD_CLS = {"counter": _CounterChild, "gauge": _GaugeChild,
              "histogram": _HistogramChild}


class _Family:
    """One named metric and its labelled children."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets",
                 "_children", "_lock", "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str, kind: str,
                 help_text: str, label_names: Sequence[str],
                 buckets: Optional[Sequence[float]] = None):
        self.name = _check_name(name)
        self.kind = kind
        self.help = help_text
        self.label_names = tuple(label_names)
        if kind == "histogram":
            buckets = tuple(float(b) for b in (buckets or LATENCY_BUCKETS_S))
            if list(buckets) != sorted(set(buckets)):
                raise ValueError(f"{name}: buckets must be strictly "
                                 "increasing")
            self.buckets = buckets
        else:
            if buckets is not None:
                raise ValueError(f"{name}: only histograms take buckets")
            self.buckets = ()
        self._children: Dict[tuple, object] = {}
        self._lock = threading.Lock()
        self._registry = registry

    def labels(self, *values) -> object:
        """The child for one label-value tuple (created on first use)."""
        if not self._registry.enabled:
            return NULL_CHILD
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {len(values)} value(s)")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(
                    key, _CHILD_CLS[self.kind](self))
        return child

    # unlabelled conveniences -------------------------------------------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        self.labels().set_function(fn)

    def _collect(self) -> List[tuple]:
        """Consistent (labels, payload) snapshot of every child."""
        with self._lock:
            items = list(self._children.items())
            out = []
            for key, child in items:
                if self.kind == "counter":
                    out.append((key, child.value))
                elif self.kind == "gauge":
                    out.append((key, child._read()))
                else:
                    out.append((key, (list(child.bucket_counts),
                                      child.sum, child.count)))
        return out


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def _label_str(names: Sequence[str], values: Sequence[str],
               extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{_escape_label(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class MetricsRegistry:
    """The per-server instrument registry behind ``GET /metrics``.

    ``enabled=False`` builds a registry whose instruments are permanent
    no-ops (they hand out :data:`NULL_CHILD`) and whose render is the
    empty exposition — the ``--no-metrics`` path.  Registration is
    idempotent by name (same kind/labels returns the existing family;
    a conflicting re-registration raises).
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------
    def _register(self, name: str, kind: str, help_text: str,
                  label_names: Sequence[str],
                  buckets: Optional[Sequence[float]] = None) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (existing.kind != kind
                        or existing.label_names != tuple(label_names)):
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{existing.kind}{existing.label_names}")
                return existing
            family = _Family(self, name, kind, help_text, label_names,
                             buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> _Family:
        return self._register(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> _Family:
        return self._register(name, "gauge", help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> _Family:
        return self._register(name, "histogram", help_text, labels, buckets)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    # -- exposition -----------------------------------------------------
    def collect(self) -> List[tuple]:
        """(name, kind, help, buckets, [(label_values, payload)...])."""
        with self._lock:
            families = [self._families[name]
                        for name in sorted(self._families)]
        return [(f.name, f.kind, f.help, f.buckets, f.label_names,
                 f._collect()) for f in families]

    def render(self) -> str:
        """The Prometheus text exposition of every family."""
        lines: List[str] = []
        for name, kind, help_text, buckets, label_names, children \
                in self.collect():
            if not children:
                continue
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            for values, payload in sorted(children):
                if kind in ("counter", "gauge"):
                    labels = _label_str(label_names, values)
                    lines.append(
                        f"{name}{labels} {_format_value(payload)}")
                    continue
                bucket_counts, total_sum, count = payload
                cumulative = 0
                bounds = list(buckets) + [float("inf")]
                for bound, bucket in zip(bounds, bucket_counts):
                    cumulative += bucket
                    labels = _label_str(
                        label_names, values,
                        extra=(("le", _format_value(bound)),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _label_str(label_names, values)
                lines.append(f"{name}_sum{labels} {_format_value(total_sum)}")
                lines.append(f"{name}_count{labels} {count}")
        return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().rstrip()
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value after {name!r}")
        j = eq + 2
        out = []
        while text[j] != '"':
            if text[j] == "\\":
                escape = text[j + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}[escape])
                j += 2
            else:
                out.append(text[j])
                j += 1
        labels[name] = "".join(out)
        i = j + 1
        if i < len(text):
            if text[i] != ",":
                raise ValueError(f"expected ',' in labels at {text[i:]!r}")
            i += 1
    return labels


def parse_prometheus_text(text: str) -> Dict[str, Dict]:
    """Strictly parse text exposition format; raise ValueError if invalid.

    Returns ``{family: {"type", "help", "samples": {(name, labels...):
    value}}}``.  Beyond line syntax it checks the structural invariants
    a scraper relies on: every sample belongs to a ``# TYPE``-declared
    family, histogram bucket counts are cumulative and end in a
    ``+Inf`` bucket that equals ``_count``.
    """
    families: Dict[str, Dict] = {}
    current: Optional[str] = None
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": None,
                                       "samples": {}})["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            entry = families.setdefault(name, {"type": None, "help": None,
                                               "samples": {}})
            if entry["type"] is not None:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            entry["type"] = kind
            current = name
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rindex("}")
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
        if not value_text:
            raise ValueError(f"line {lineno}: sample without value: {raw!r}")
        value = float(value_text.split()[0].replace("+Inf", "inf"))
        family = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[:-len(suffix)] \
                if sample_name.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                family = base
                break
        if family not in families or families[family]["type"] is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no # TYPE")
        if family != current:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} outside its "
                f"family block (current family: {current})")
        key = (sample_name, tuple(sorted(labels.items())))
        if key in families[family]["samples"]:
            raise ValueError(f"line {lineno}: duplicate sample {key}")
        families[family]["samples"][key] = value
    _check_histograms(families)
    return families


def _check_histograms(families: Dict[str, Dict]) -> None:
    for name, entry in families.items():
        if entry["type"] != "histogram":
            continue
        series: Dict[tuple, List[Tuple[float, float]]] = {}
        counts: Dict[tuple, float] = {}
        for (sample, labels), value in entry["samples"].items():
            plain = tuple(kv for kv in labels if kv[0] != "le")
            if sample == f"{name}_bucket":
                le = dict(labels)["le"]
                series.setdefault(plain, []).append(
                    (float(le.replace("+Inf", "inf")), value))
            elif sample == f"{name}_count":
                counts[plain] = value
        for plain, buckets in series.items():
            buckets.sort()
            if not buckets or buckets[-1][0] != float("inf"):
                raise ValueError(f"{name}: missing +Inf bucket")
            values = [v for _, v in buckets]
            if values != sorted(values):
                raise ValueError(f"{name}: bucket counts not cumulative")
            if plain in counts and counts[plain] != values[-1]:
                raise ValueError(
                    f"{name}: _count != +Inf bucket ({counts[plain]} vs "
                    f"{values[-1]})")

"""Worker-pool executor for independent simulation jobs.

A thin, deterministic wrapper over :class:`concurrent.futures.
ThreadPoolExecutor`.  Threads are the right pool for this stack: the hot
kernels are NumPy contractions that release the GIL, engine state
(conductance planes, code planes, constants) is read-only at run time and
shared for free, and the engines' stats discipline (per-worker locals,
locked merge at join) makes concurrent calls safe.

Three properties the callers rely on:

* **Ordered results** — :meth:`WorkerPool.map` returns results in item
  order regardless of completion order.
* **Eager errors** — the first worker exception propagates to the caller
  (remaining futures are cancelled where possible).
* **Re-entrancy** — a ``map`` issued *from inside* a worker thread runs
  inline instead of deadlocking on the pool's own capacity, so layer-level
  fan-out composes with tile-level fan-out without a worker budget
  negotiation.

The determinism contract
------------------------
The pool is deliberately *boring*: it never reorders, samples, batches or
retries.  Everything that makes parallel inference bit-identical to serial
inference lives in the layers around it, but the pool's ordered map is the
keystone — downstream consumers (:func:`repro.runtime.infer_tiled`, the
:mod:`repro.serving` batcher) index results positionally, and the engines'
stats discipline (per-call locals, locked **ordered merge** into integer
counters on the calling thread) plus :class:`repro.reram.nonideal.
ReadNoise`'s **per-job keyed substreams** do the rest.  Integer-counter
merges commute, so stats are worker-count invariant even though the merge
*order* is not; outputs are invariant because no floating-point
accumulation ever crosses tiles.  A ``WorkerPool(1)`` (or a single-item
map, or a re-entrant map) short-circuits to inline execution — the serial
and pooled paths are the identical code, which is what makes the contract
structural rather than a test hope.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: environment override of the default worker count
WORKERS_ENV = "FORMS_WORKERS"

_WORKER_THREAD_PREFIX = "forms-worker"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count in effect: explicit > ``FORMS_WORKERS`` > CPU count."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return workers
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        value = int(env)
        if value < 1:
            raise ValueError(f"{WORKERS_ENV} must be >= 1, got {value}")
        return value
    return os.cpu_count() or 1


class WorkerPool:
    """A fixed-size thread pool with ordered, eager-error mapping.

    ``workers=1`` (or mapping a single item) short-circuits to inline
    execution — the serial path and the pooled path run the identical
    code, which is what makes "bit-identical at any worker count" a
    structural property rather than a test hope.
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = resolve_workers(workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        if self.workers > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix=_WORKER_THREAD_PREFIX)

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in item order."""
        items = list(items)
        if (self._executor is None or len(items) <= 1
                or threading.current_thread().name.startswith(
                    _WORKER_THREAD_PREFIX)):
            return [fn(item) for item in items]
        futures = [self._executor.submit(fn, item) for item in items]
        results: List[R] = []
        error: Optional[BaseException] = None
        for future in futures:
            if error is not None:
                future.cancel()
                continue
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                error = exc
        if error is not None:
            raise error
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None) -> List[R]:
    """One-shot ordered parallel map (borrows ``pool`` or builds its own).

    The convenience entry point for sweep drivers: DSE grids, ablation
    sweeps and benchmark fan-outs call this with their per-point evaluator;
    a shared :class:`~repro.reram.engine.DieCache` inside the evaluator
    then deduplicates die programming across the concurrent points.
    """
    items = list(items)
    if pool is not None:
        return pool.map(fn, items)
    with WorkerPool(workers) as owned:
        return owned.map(fn, items)

"""Table III — MCU component specification, FORMS (fragment 8) vs ISAAC.

Pure catalog reconstruction: every row is calibrated to the published
component numbers, with the ADC scaling law interpolating non-published
fragment sizes.
"""

import pytest

from repro.analysis import table3


def test_table3_mcu_spec(benchmark, save_table):
    result = benchmark.pedantic(lambda: table3(8), rounds=3, iterations=1)
    save_table("table3_mcu_spec", result)
    benchmark.extra_info["table"] = result.rendered
    rows = {r[0]: r for r in result.rows}
    assert rows["ADC"][1] == pytest.approx(15.2)      # FORMS ADC bank power
    assert rows["ADC"][3] == pytest.approx(16.0)      # ISAAC ADC power
    assert rows["sign indicator"][3] is None          # ISAAC has none


def test_table3_other_fragment_sizes(benchmark, save_table):
    """ADC-law interpolation for fragment sizes 4 and 16."""
    def build():
        return table3(4), table3(16)
    t4, t16 = benchmark.pedantic(build, rounds=3, iterations=1)
    save_table("table3_mcu_spec_fragment4", t4)
    save_table("table3_mcu_spec_fragment16", t16)
    adc4 = [r for r in t4.rows if r[0] == "ADC"][0]
    adc16 = [r for r in t16.rows if r[0] == "ADC"][0]
    assert adc4[2] < adc16[2]  # 3-bit bank smaller than 5-bit bank

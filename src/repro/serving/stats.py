"""Per-request and server-wide serving statistics.

:class:`RequestStats` is the receipt attached to every served request:
where its latency went (queue wait vs service), which batch it rode in,
and the exact slice of the shared engines' :class:`~repro.reram.engine.
EngineStats` its tile accounted for (conversions, scheduled/skipped jobs
and pairs — see :func:`repro.runtime.infer_tiles`).

:class:`ServerStats` aggregates those receipts into the operational view:
latency percentiles, queue-wait distribution, batch-size mix, dispatch
occupancy and throughput.  All mutation happens under one lock; reads take
a consistent :meth:`snapshot`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class RequestStats:
    """Accounting of one served request.

    ``latency_s`` is enqueue to completion; ``queue_wait_s`` is enqueue to
    batch dispatch; ``service_s`` is the wall clock of the batch dispatch
    the request rode in (shared with its batch mates — tiles of one batch
    run concurrently, so per-request service time is not separable).
    ``engine_stats`` is this request's exact slice of the shared engines'
    merged stats.
    """

    request_id: int
    batch_id: int
    batch_size: int
    queue_wait_s: float
    service_s: float
    latency_s: float
    engine_stats: Dict[str, int]

    def as_dict(self) -> Dict:
        return {
            "request_id": self.request_id,
            "batch_id": self.batch_id,
            "batch_size": self.batch_size,
            "queue_wait_s": self.queue_wait_s,
            "service_s": self.service_s,
            "latency_s": self.latency_s,
            "engine_stats": dict(self.engine_stats),
        }


@dataclass(frozen=True)
class ServedResult:
    """What :meth:`repro.serving.InferenceServer.submit` returns."""

    output: np.ndarray
    stats: RequestStats


class ServerStats:
    """Thread-safe aggregator of completed-request receipts.

    The batcher records one :meth:`record_batch` per dispatched batch and
    one :meth:`record_request` per completed request; :meth:`snapshot`
    reduces them to the numbers an operator watches — p50/p95 latency,
    mean queue wait, batch-size mix, occupancy (fraction of wall time the
    dispatch path was busy) and completed-request throughput.

    Counters (requests, batches, busy time) are exact over the server's
    lifetime; the latency/queue-wait *distributions* are kept in a sliding
    window of the most recent ``window`` requests (``None`` = unbounded),
    so a long-running server neither grows without bound nor pays more
    than O(window) per snapshot.
    """

    def __init__(self, window: Optional[int] = 4096):
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None for unbounded)")
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.window = window
        self.requests_completed = 0
        self.requests_failed = 0
        self.batches_formed = 0
        self.batch_size_sum = 0
        self.batch_size_max = 0
        self.busy_s = 0.0
        self._latencies: deque = deque(maxlen=window)
        self._queue_waits: deque = deque(maxlen=window)

    # ------------------------------------------------------------------
    def record_batch(self, size: int, service_s: float) -> None:
        with self._lock:
            self.batches_formed += 1
            self.batch_size_sum += size
            self.batch_size_max = max(self.batch_size_max, size)
            self.busy_s += service_s

    def record_request(self, stats: RequestStats) -> None:
        with self._lock:
            self.requests_completed += 1
            self._latencies.append(stats.latency_s)
            self._queue_waits.append(stats.queue_wait_s)

    def record_failure(self, count: int = 1) -> None:
        with self._lock:
            self.requests_failed += count

    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile (0-100) over completed requests."""
        with self._lock:
            if not self._latencies:
                return 0.0
            return float(np.percentile(self._latencies, q))

    def snapshot(self, queue_depth: Optional[int] = None) -> Dict:
        """One consistent JSON-ready view of everything recorded so far."""
        with self._lock:
            elapsed = time.monotonic() - self._started
            latencies = np.asarray(self._latencies, dtype=np.float64)
            waits = np.asarray(self._queue_waits, dtype=np.float64)
            completed = self.requests_completed
            snap = {
                "requests_completed": completed,
                "requests_failed": self.requests_failed,
                "batches_formed": self.batches_formed,
                "mean_batch_size": (self.batch_size_sum / self.batches_formed
                                    if self.batches_formed else 0.0),
                "max_batch_size": self.batch_size_max,
                "elapsed_s": elapsed,
                "occupancy": self.busy_s / elapsed if elapsed > 0 else 0.0,
                "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
                "latency_p50_s": float(np.percentile(latencies, 50))
                if latencies.size else 0.0,
                "latency_p95_s": float(np.percentile(latencies, 95))
                if latencies.size else 0.0,
                "latency_max_s": float(latencies.max())
                if latencies.size else 0.0,
                "queue_wait_mean_s": float(waits.mean())
                if waits.size else 0.0,
                "queue_wait_p95_s": float(np.percentile(waits, 95))
                if waits.size else 0.0,
            }
        if queue_depth is not None:
            snap["queue_depth"] = queue_depth
        return snap

"""Fast qualitative checks of the paper's headline claims.

These run in seconds (no training beyond the shared fixtures) and pin down
the claims that depend only on the hardware models — the training-dependent
shapes are asserted by the benchmarks at FAST scale.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # Whole-stack paper-claim checks

from repro.arch import (forms_chip, forms_config, isaac16_config, isaac_chip,
                        peak_throughput)
from repro.arch.perf import AcceleratorConfig
from repro.core import FragmentGeometry, QuantizationSpec
from repro.core.compression import CrossbarShape, crossbars_for_matrix
from repro.reram import DeviceSpec, ReRAMDevice, build_engine, infer_signs


class TestClaimPolarizationSavesCrossbars:
    def test_half_the_crossbars_of_dual_mapping(self):
        """'our design can save half of the crossbars, which are used to
        store the positive/negative weights separately' (Sec. IV-A)."""
        xbar = CrossbarShape(128, 128)
        forms = crossbars_for_matrix(512, 256, xbar, 4, "forms")
        dual = crossbars_for_matrix(512, 256, xbar, 4, "dual")
        assert dual == 2 * forms

    def test_sign_indicator_cost_is_negligible(self):
        """Sign indicator: 0.012 mW vs a 23 mW MCU (<0.1%)."""
        from repro.arch.components import _SIGN_INDICATOR, bom_power_mw, forms_mcu_components
        mcu_power = bom_power_mw(forms_mcu_components(8))
        assert _SIGN_INDICATOR.power_mw / mcu_power < 0.001


class TestClaimIsoArea:
    def test_chip_power_area_nearly_equal(self):
        forms, isaac = forms_chip(8), isaac_chip()
        assert abs(forms.power_mw - isaac.power_mw) / isaac.power_mw < 0.01
        assert abs(forms.area_mm2 - isaac.area_mm2) / isaac.area_mm2 < 0.05


class TestClaimFineGrainedADC:
    def test_forms_adc_covers_32_columns_not_128(self):
        assert forms_chip(8).tile.mcu.columns_per_adc == 32
        assert isaac_chip().tile.mcu.columns_per_adc == 128

    def test_small_adc_4x_cheaper(self):
        """'If with the same technology, we build a 4-bit ADC, it results in
        almost 4x times less area and power' (Sec. IV-C)."""
        from repro.arch import default_adc_model
        model = default_adc_model()
        power_ratio = model.power_mw(8, 1.2e9) / model.power_mw(4, 1.2e9)
        area_ratio = model.area_mm2(8) / model.area_mm2(4)
        assert power_ratio > 3.0
        assert area_ratio > 3.0


class TestClaimZeroSkipExactness:
    def test_skipping_is_lossless_on_hardware(self, rng):
        """Zero-skipping changes cycle counts, never results."""
        geometry = FragmentGeometry((4, 2, 3, 3), 4)
        spec = QuantizationSpec(8, 2)
        levels = rng.integers(0, spec.qmax, size=(geometry.rows, geometry.cols))
        signs = infer_signs(levels, geometry)
        device = ReRAMDevice(DeviceSpec(), 0.0)
        engine = build_engine(levels, geometry, spec, device,
                              scheme="forms", signs=signs, activation_bits=16)
        x_small = rng.integers(0, 8, size=(geometry.rows, 6))  # heavy skipping
        np.testing.assert_array_equal(engine.matvec_int(x_small),
                                      levels.T @ x_small)
        assert engine.stats.cycles_fed <= 3


class TestClaimThroughputRelations:
    def test_polarization_only_relative_band(self):
        base = peak_throughput(isaac16_config())
        p8 = peak_throughput(AcceleratorConfig("p8", forms_chip(8), "forms",
                                               weight_bits=16))
        rel = p8.gops_per_mm2 / base.gops_per_mm2
        # paper 0.54; our conversion-count model lands in the same band
        assert 0.30 <= rel <= 0.70

    def test_full_opt_beats_isaac_with_measured_like_inputs(self):
        config = forms_config(8)
        pt = peak_throughput(config, effective_ops_factor=4.0, average_eic=11.0)
        base = peak_throughput(isaac16_config())
        assert pt.gops_per_mm2 / base.gops_per_mm2 > 1.0

"""FORMS (ISCA 2021) reproduction.

Fine-grained polarized ReRAM-based in-situ computation for mixed-signal DNN
acceleration: the ADMM co-design framework (:mod:`repro.core`), the numpy DNN
training substrate (:mod:`repro.nn`), the ReRAM device/crossbar simulator
(:mod:`repro.reram`), the accelerator architecture model (:mod:`repro.arch`),
and the evaluation harness (:mod:`repro.analysis`).
"""

__version__ = "1.1.0"

__all__ = ["nn", "core", "reram", "arch", "analysis", "__version__"]

"""Ablation — crossbar array size (the other Sec. IV-C DSE axis).

"We performed design space exploration to find the best size of crossbar
arrays, ADCs, DACs, and eDRAM storage."  The cell-bits axis is covered by
``bench_ablation_cell_bits``; this bench sweeps the array size.  The
trade-off the sweep exposes:

* larger arrays amortize the per-MCU peripherals over quadratically more
  weights — storage density (weights/mm2) rises steeply with size;
* but a fragment read's current traverses the whole physical bit line, so
  the analog error of even fine-grained reads grows with the row count
  (:func:`repro.reram.nonideal.fragment_read_error`) and crosses the
  one-ADC-LSB budget between 128 and 256 rows.

Expected outcome: 128x128 — the paper's published choice — is the densest
analog-feasible size.
"""

from repro.analysis import ExperimentTable
from repro.arch.dse import CrossbarSizeEvaluation, crossbar_size_sweep
from repro.runtime import resolve_workers

SIZES = (64, 128, 256, 512)


def run_sweep(seed: int = 0, workers: int = None, backend: str = None):
    results = crossbar_size_sweep(options=SIZES, seed=seed,
                                  workers=resolve_workers(workers),
                                  backend=backend)
    rows = []
    for r in results:
        e = r.evaluation
        rows.append([f"{r.size}x{r.size}", e.gops_per_w,
                     e.weights_per_mm2 / 1e6, r.analog_error * 100.0,
                     r.analog_feasible])
    table = ExperimentTable(
        "Ablation: crossbar array size (fragment 8, 2-bit cells)",
        ["crossbar", "GOPs/W", "density (Mweights/mm2)",
         "fragment-read error %", "analog feasible"],
        rows)
    table.extras["results"] = results
    return table


def test_ablation_crossbar_size(benchmark, save_table):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_table("ablation_crossbar_size", result)
    benchmark.extra_info["table"] = result.rendered
    results = result.extras["results"]
    by_size = {r.size: r for r in results}
    # Density is what larger arrays buy; analog error is what stops them.
    densities = [by_size[s].evaluation.weights_per_mm2 for s in SIZES]
    assert densities == sorted(densities)
    errors = [by_size[s].analog_error for s in SIZES]
    assert errors == sorted(errors)
    # The paper's 128x128 is the densest analog-feasible size.
    feasible = [r.size for r in results if r.analog_feasible]
    assert max(feasible) == 128

"""Per-inference energy accounting.

Chip power (Table IV) times time gives an upper bound; this module refines it
into an activity-based estimate so the *mechanisms* the paper credits are
visible in the numbers:

* crossbar + ADC + DAC energy scales with the input cycles actually fed —
  zero-skipping converts skipped cycles directly into dynamic-energy savings
  ("feeding zero bits wastes power and energy", Sec. IV-B);
* digital-unit and eDRAM energy scale with the results produced;
* static/leakage energy scales with wall-clock inference time;
* NoC transport energy comes from :mod:`repro.arch.noc`.

The absolute joule numbers inherit the catalog's calibration; the meaningful
outputs are per-configuration comparisons (e.g. zero-skip on vs off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .chip import ChipDesign
from .perf import (AcceleratorConfig, PerfResult, layer_crossbars,
                   layer_input_bits, layer_pass_time_s, network_performance)
from .workload import NetworkWorkload

#: fraction of tile power that is static/leakage at the 32 nm node; the rest
#: is activity-proportional dynamic power.
STATIC_POWER_FRACTION = 0.3


@dataclass
class EnergyBreakdown:
    """Joules per inference, by mechanism."""

    config_name: str
    workload_name: str
    analog_j: float = 0.0      # crossbars + DAC + S&H + ADC, per cycle fed
    digital_j: float = 0.0     # shift&add, activation, eDRAM, per result
    static_j: float = 0.0      # leakage x inference latency
    noc_j: float = 0.0         # inter-tile transport

    @property
    def total_j(self) -> float:
        return self.analog_j + self.digital_j + self.static_j + self.noc_j

    @property
    def total_mj(self) -> float:
        return self.total_j * 1e3

    def as_dict(self) -> Dict[str, float]:
        return {
            "analog_j": self.analog_j,
            "digital_j": self.digital_j,
            "static_j": self.static_j,
            "noc_j": self.noc_j,
            "total_j": self.total_j,
        }


def _mcu_analog_power_w(chip: ChipDesign) -> float:
    """Dynamic power of one MCU's analog path (ADC+DAC+S&H+crossbar), watts."""
    analog_names = {"ADC", "DAC", "S&H", "crossbar array"}
    mcu = chip.tile.mcu
    return sum(c.power_mw for c in mcu.components if c.name in analog_names) / 1e3


def inference_energy(workload: NetworkWorkload, config: AcceleratorConfig,
                     perf: Optional[PerfResult] = None,
                     noc_energy_j: float = 0.0) -> EnergyBreakdown:
    """Estimate the energy of one inference under ``config``.

    Analog energy: every layer pass occupies its crossbars' analog path for
    ``pass_time``; zero-skipping shortens the pass, which is exactly where
    its energy saving appears.  Digital energy: proportional to MACs
    delivered.  Static energy: leakage share of chip power times the
    bottleneck-limited inference latency.
    """
    if perf is None:
        perf = network_performance(workload, config)
    chip = config.chip
    analog_power_per_crossbar = (_mcu_analog_power_w(chip)
                                 / chip.tile.mcu.crossbars)

    analog_j = 0.0
    for layer in workload.layers:
        crossbars = layer_crossbars(layer, config)
        pass_time = layer_pass_time_s(layer, config)
        # every output position requires one pass on each of the layer's
        # crossbars (replication duplicates work and energy equally per image,
        # so it cancels: R copies each handle 1/R of the positions).
        analog_j += crossbars * layer.positions_per_image * pass_time \
            * analog_power_per_crossbar

    # Digital path: calibrate on the digital unit's share of tile power at
    # the chip's peak MAC rate.
    digital_power_w = chip.tile.digital_power_mw * chip.tiles / 1e3
    macs = workload.total_live_macs if config.use_pruned_structure \
        else workload.total_dense_macs
    # time the digital units would need at full rate for these MACs:
    peak_macs_per_s = chip.crossbars * chip.tile.mcu.crossbar_rows \
        * chip.tile.mcu.crossbar_cols / chip.tile.mcu.full_mvm_time_s(
            float(config.activation_bits))
    digital_j = digital_power_w * macs / peak_macs_per_s

    latency_s = 1.0 / perf.fps if perf.fps > 0 else 0.0
    static_j = STATIC_POWER_FRACTION * chip.power_w * latency_s

    return EnergyBreakdown(
        config_name=config.name,
        workload_name=f"{workload.network}/{workload.dataset}",
        analog_j=analog_j,
        digital_j=digital_j,
        static_j=static_j,
        noc_j=noc_energy_j,
    )


def zero_skip_energy_saving(workload: NetworkWorkload,
                            config: AcceleratorConfig) -> float:
    """Fraction of analog energy saved by zero-skipping (0..1).

    Compares the configured EIC-driven input cycles against feeding all
    ``activation_bits`` — the direct energy translation of Fig. 8.
    """
    if not (config.zero_skip and config.is_fine_grained):
        return 0.0
    fed = 0.0
    full = 0.0
    for layer in workload.layers:
        weight = layer.live_macs_per_image
        fed += layer_input_bits(layer, config) * weight
        full += config.activation_bits * weight
    if full == 0.0:
        return 0.0
    return 1.0 - fed / full

"""Parallel execution runtime for the in-situ simulation stack.

The scheduler/executor split of the engine layer: the engines *schedule*
work (CSR job lists over the activation block's nonzero structure — see
``repro.reram.engine``), this package *executes* it — independent job
chunks within one MVM, independent batch tiles across a whole-network
forward pass, and independent sweep points across DSE/ablation grids all
fan out over one :class:`WorkerPool`.

The pool runs on one of two interchangeable backends: ``thread`` (the
default — NumPy kernels release the GIL and engine state is shared for
free) or ``process`` — spawn-safe worker processes with the large arrays
(programmed conductance planes, activation batches) passed through a
:class:`SharedPlanePool` of ``multiprocessing.shared_memory`` segments
instead of per-task pickles, for the parts of the stack the GIL does
serialize.  ``serial`` names the explicit inline tier.

Determinism is a hard contract on *every* backend: every fan-out path
produces bit-identical results and identical
:class:`~repro.reram.engine.EngineStats` at any worker count (including 1
and the no-pool serial path).  Engines keep per-worker stats locals
merged under a lock at join (per-process deltas merged at collect on the
process backend), and :class:`~repro.reram.nonideal.ReadNoise` draws
per-job keyed substreams, so even noisy inference is worker-count — and
backend — invariant.  ``tests/runtime/test_backend_equivalence.py`` is
the differential proof.
"""

from .executor import (BACKEND_ENV, BACKENDS, WORKERS_ENV, WorkerPool,
                       parallel_map, resolve_backend, resolve_workers)
from .network import (attach_pool, collect_engines, detach_pool,
                      evaluate_tiled, infer_tiled, infer_tiles, iter_tiles,
                      run_network_serial)
from .process import in_worker_process, process_backend_available
from .shared import (SharedPlaneHandle, SharedPlanePool,
                     shared_memory_available)

__all__ = [
    "BACKENDS", "BACKEND_ENV", "WORKERS_ENV",
    "WorkerPool", "parallel_map", "resolve_backend", "resolve_workers",
    "attach_pool", "collect_engines", "detach_pool", "evaluate_tiled",
    "infer_tiled", "infer_tiles", "iter_tiles", "run_network_serial",
    "in_worker_process", "process_backend_available",
    "SharedPlaneHandle", "SharedPlanePool", "shared_memory_available",
]

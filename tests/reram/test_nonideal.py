"""Crossbar non-ideality tests: IR drop, stuck-at faults, read noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reram.nonideal import (FAULT_NONE, FAULT_SA0, FAULT_SA1,
                                  LINEAR_CELL, CellIV, FaultModel,
                                  IRDropPoint, ReadNoise, WireModel,
                                  first_order_currents, ideal_currents,
                                  ir_drop_study, solve_ir_drop)


def random_conductance(rows, cols, seed=0, g_min=1e-7, g_max=1e-5):
    rng = np.random.default_rng(seed)
    return rng.uniform(g_min, g_max, size=(rows, cols))


class TestWireModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            WireModel(r_wire_ohm=-1.0)
        with pytest.raises(ValueError):
            WireModel(r_driver_ohm=0.0)
        with pytest.raises(ValueError):
            WireModel(r_sense_ohm=0.0)


class TestCellIV:
    def test_validation(self):
        with pytest.raises(ValueError):
            CellIV(nonlinearity=-1.0)
        with pytest.raises(ValueError):
            CellIV(v_read=0.0)

    def test_calibrated_at_read_voltage(self):
        # The chord calibration: I(v_read) == g * v_read for any k.
        for k in (0.0, 1.0, 2.0, 4.0):
            iv = CellIV(nonlinearity=k, v_read=0.3)
            g = np.array([1e-6, 5e-6])
            np.testing.assert_allclose(iv.current(g, 0.3), g * 0.3)

    def test_sublinear_current_below_read_voltage(self):
        iv = CellIV(nonlinearity=2.0, v_read=0.3)
        g = 1e-5
        half = float(iv.current(g, 0.15))
        assert half < g * 0.15   # superlinear I-V loses more than linear

    def test_linear_cell_is_ohmic(self):
        g = np.array([1e-6, 1e-5])
        dv = np.array([0.1, 0.25])
        np.testing.assert_allclose(LINEAR_CELL.current(g, dv), g * dv)

    def test_secant_conductance_limit(self):
        iv = CellIV(nonlinearity=2.0, v_read=0.3)
        g = np.array([1e-5])
        at_zero = iv.effective_conductance(g, np.array([0.0]))
        expected = g * 2.0 / np.sinh(2.0)
        np.testing.assert_allclose(at_zero, expected)

    def test_odd_symmetry(self):
        iv = CellIV(nonlinearity=2.0)
        g = np.array([1e-5])
        forward = iv.current(g, np.array([0.2]))
        backward = iv.current(g, np.array([-0.2]))
        np.testing.assert_allclose(forward, -backward)


class TestExactSolver:
    def test_negligible_parasitics_match_ideal(self):
        g = random_conductance(16, 4)
        v = np.full(16, 0.3)
        wire = WireModel(r_wire_ohm=1e-6, r_driver_ohm=1e-6, r_sense_ohm=1e-6)
        np.testing.assert_allclose(solve_ir_drop(g, v, wire),
                                   ideal_currents(g, v), rtol=1e-6)

    def test_zero_wire_resistance_shortcut(self):
        g = random_conductance(8, 3)
        v = np.full(8, 0.3)
        wire = WireModel(r_wire_ohm=0.0)
        np.testing.assert_allclose(solve_ir_drop(g, v, wire),
                                   ideal_currents(g, v))

    def test_parasitics_attenuate_current(self):
        g = random_conductance(32, 4)
        v = np.full(32, 0.3)
        actual = solve_ir_drop(g, v, WireModel(r_wire_ohm=5.0))
        ideal = ideal_currents(g, v)
        assert (actual < ideal).all()
        assert (actual > 0).all()

    def test_error_monotone_in_wire_resistance(self):
        g = random_conductance(32, 4)
        v = np.full(32, 0.3)
        ideal = ideal_currents(g, v)
        errors = []
        for r in (0.5, 2.0, 8.0):
            actual = solve_ir_drop(g, v, WireModel(r_wire_ohm=r))
            errors.append(np.mean((ideal - actual) / ideal))
        assert errors[0] < errors[1] < errors[2]

    def test_batch_inputs(self):
        g = random_conductance(16, 4)
        v = np.column_stack([np.full(16, 0.3), np.zeros(16)])
        out = solve_ir_drop(g, v)
        assert out.shape == (4, 2)
        np.testing.assert_allclose(out[:, 1], 0.0, atol=1e-15)
        single = solve_ir_drop(g, v[:, 0])
        np.testing.assert_allclose(out[:, 0], single)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_ir_drop(np.ones(4), np.ones(4))
        with pytest.raises(ValueError):
            solve_ir_drop(np.ones((4, 2)), np.ones(5))

    def test_inactive_rows_contribute_nothing(self):
        g = random_conductance(16, 4)
        v = np.zeros(16)
        np.testing.assert_allclose(solve_ir_drop(g, v), 0.0, atol=1e-18)


class TestFirstOrderModel:
    def test_agrees_with_exact_solver(self):
        g = random_conductance(32, 8)
        v = np.full(32, 0.3)
        wire = WireModel(r_wire_ohm=2.5)
        exact = solve_ir_drop(g, v, wire)
        approx = first_order_currents(g, v, wire)
        np.testing.assert_allclose(approx, exact, rtol=0.02)

    def test_first_order_attenuates(self):
        g = random_conductance(32, 8)
        v = np.full(32, 0.3)
        out = first_order_currents(g, v, WireModel(r_wire_ohm=2.5))
        assert (out < ideal_currents(g, v)).all()

    def test_batch_shape(self):
        g = random_conductance(16, 4)
        v = np.column_stack([np.full(16, 0.3)] * 3)
        assert first_order_currents(g, v).shape == (4, 3)

    @given(st.integers(min_value=2, max_value=24),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_never_exceeds_ideal(self, rows, cols):
        g = random_conductance(rows, cols, seed=rows * 31 + cols)
        v = np.full(rows, 0.3)
        out = first_order_currents(g, v, WireModel(r_wire_ohm=1.0))
        assert (out <= ideal_currents(g, v) + 1e-18).all()


class TestNonlinearSolver:
    def test_nonlinear_reduces_current_versus_linear(self):
        g = random_conductance(32, 4)
        v = np.full(32, 0.3)
        wire = WireModel(r_wire_ohm=2.5)
        linear = solve_ir_drop(g, v, wire)
        nonlinear = solve_ir_drop(g, v, wire, cell_iv=CellIV(nonlinearity=2.0))
        assert (nonlinear < linear).all()

    def test_nonlinear_without_parasitics_is_exactly_calibrated(self):
        # All cells at exactly v_read: the chord calibration makes the
        # nonlinear result equal the ideal one.
        g = random_conductance(16, 4)
        v = np.full(16, 0.3)
        wire = WireModel(r_wire_ohm=1e-9, r_driver_ohm=1e-9, r_sense_ohm=1e-9)
        out = solve_ir_drop(g, v, wire, cell_iv=CellIV(nonlinearity=2.0))
        np.testing.assert_allclose(out, ideal_currents(g, v), rtol=1e-6)

    def test_fixed_point_converges(self):
        g = random_conductance(32, 4)
        v = np.full(32, 0.3)
        loose = solve_ir_drop(g, v, cell_iv=CellIV(), tolerance=1e-6)
        tight = solve_ir_drop(g, v, cell_iv=CellIV(), tolerance=1e-12)
        np.testing.assert_allclose(loose, tight, rtol=1e-5)


class TestIRDropStudy:
    def test_fine_grained_beats_coarse(self):
        # The paper's qualitative claim: smaller active-row groups suffer
        # less error for the same total dot product (nonlinear cells).
        points = ir_drop_study(rows=64, cols=4,
                               active_row_options=[4, 16, 64], seed=1)
        errors = {p.active_rows: p.relative_error for p in points}
        assert errors[4] < errors[16] < errors[64]

    def test_linear_cells_obey_superposition(self):
        # The counterpoint documented in the module: with linear cells the
        # summed per-group reads equal the all-rows read exactly, so the
        # error is independent of granularity.
        points = ir_drop_study(rows=32, cols=4, active_row_options=[4, 32],
                               cell_iv=LINEAR_CELL, seed=1)
        errors = [p.relative_error for p in points]
        assert errors[0] == pytest.approx(errors[1], rel=1e-9)

    def test_errors_are_positive_and_small(self):
        points = ir_drop_study(rows=32, cols=4, active_row_options=[8, 32])
        for p in points:
            assert 0 < p.relative_error < 0.5
            assert p.actual_current_a < p.ideal_current_a

    def test_first_order_solver_agrees(self):
        exact = ir_drop_study(rows=32, cols=4, active_row_options=[8, 32],
                              solver="exact")
        approx = ir_drop_study(rows=32, cols=4, active_row_options=[8, 32],
                               solver="first_order")
        for pe, pa in zip(exact, approx):
            assert pa.relative_error == pytest.approx(pe.relative_error,
                                                      rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            ir_drop_study(rows=64, active_row_options=[7])
        with pytest.raises(ValueError):
            ir_drop_study(solver="spice")

    def test_point_fields(self):
        (point,) = ir_drop_study(rows=16, cols=2, active_row_options=[16])
        assert isinstance(point, IRDropPoint)
        assert point.active_rows == 16


class TestFaultModel:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultModel(sa0_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(sa0_rate=0.6, sa1_rate=0.6)

    def test_sample_statistics(self):
        model = FaultModel(sa0_rate=0.05, sa1_rate=0.02, seed=0)
        mask = model.sample((1000, 100))
        assert np.mean(mask == FAULT_SA0) == pytest.approx(0.05, abs=0.005)
        assert np.mean(mask == FAULT_SA1) == pytest.approx(0.02, abs=0.005)
        assert np.mean(mask == FAULT_NONE) == pytest.approx(0.93, abs=0.005)

    def test_zero_rates_yield_no_faults(self):
        model = FaultModel(sa0_rate=0.0, sa1_rate=0.0, seed=0)
        assert (model.sample((50, 50)) == FAULT_NONE).all()

    def test_apply_to_codes(self):
        codes = np.array([[1, 2], [3, 0]])
        mask = np.array([[FAULT_SA0, FAULT_NONE], [FAULT_SA1, FAULT_SA0]])
        out = FaultModel.apply_to_codes(codes, mask, levels=4)
        np.testing.assert_array_equal(out, [[0, 2], [3, 0]])
        # original untouched
        assert codes[0, 0] == 1

    def test_apply_shape_mismatch(self):
        with pytest.raises(ValueError):
            FaultModel.apply_to_codes(np.zeros((2, 2)), np.zeros((3, 2)), 4)

    def test_seeded_reproducibility(self):
        a = FaultModel(sa0_rate=0.1, seed=42).sample((20, 20))
        b = FaultModel(sa0_rate=0.1, seed=42).sample((20, 20))
        np.testing.assert_array_equal(a, b)


class TestReadNoise:
    def test_zero_sigma_is_identity(self):
        noise = ReadNoise(relative_sigma=0.0, full_scale_a=1e-4)
        currents = np.array([1e-5, 2e-5])
        np.testing.assert_array_equal(noise.apply(currents), currents)

    def test_noise_statistics(self):
        noise = ReadNoise(relative_sigma=0.01, full_scale_a=1e-4, seed=0)
        out = noise.apply(np.zeros(200000))
        assert out.std() == pytest.approx(1e-6, rel=0.02)
        assert out.mean() == pytest.approx(0.0, abs=1e-8)

    def test_for_fragment_full_scale(self):
        noise = ReadNoise.for_fragment(fragment_size=8, g_max=1e-5,
                                       read_voltage=0.3)
        assert noise.full_scale_a == pytest.approx(8 * 1e-5 * 0.3)

    def test_snr(self):
        noise = ReadNoise(relative_sigma=0.01, full_scale_a=1.0)
        assert noise.snr_db(1.0) == pytest.approx(40.0)
        assert ReadNoise(relative_sigma=0.0).snr_db(1.0) == float("inf")
        with pytest.raises(ValueError):
            noise.snr_db(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadNoise(relative_sigma=-0.1)
        with pytest.raises(ValueError):
            ReadNoise(full_scale_a=0.0)

"""SLA scheduler semantics: precedence, EDF, shedding, admission.

Pure scheduling tests — no engines, no networks: requests here are bare
:class:`SlaRequest` objects, so every ordering/shedding property is
asserted directly against the queue.
"""

import math
import threading
import time

import numpy as np
import pytest

from repro.serving import (SHED_ADMISSION, SHED_DEADLINE, SHED_LATENCY_BOUND,
                           AdmissionController, PriorityClass, QueueClosed,
                           RequestShed, ShedReceipt, SlaPolicy, SlaQueue,
                           SlaRequest)

TWO_CLASS = SlaPolicy((PriorityClass("hi", max_batch=4, max_wait_s=0.0),
                       PriorityClass("lo", max_batch=4, max_wait_s=0.0)))


def make_request(request_id, *, model="m", rank=0, policy=TWO_CLASS,
                 deadline_t=None, deadline_s=None, enqueue_t=None):
    cls = policy.classes[rank]
    request = SlaRequest(request_id=request_id, image=np.zeros(2),
                         model=model, class_rank=rank,
                         priority_class=cls.name, deadline_t=deadline_t,
                         deadline_s=deadline_s)
    if enqueue_t is not None:
        request.enqueue_t = enqueue_t
    return request


def drain_ids(queue):
    ids = []
    while True:
        batch = queue.get_batch()
        if batch is None:
            return ids
        ids.append([r.request_id for r in batch])


class TestPolicy:
    def test_fifo_policy_is_single_class(self):
        policy = SlaPolicy.fifo(max_batch=3, max_wait_s=0.01)
        assert policy.names == ["default"]
        assert policy.classes[0].max_batch == 3
        assert policy.classes[0].shed_after_s is None
        assert policy.rank_of(None) == 0
        assert policy.rank_of("default") == 0

    def test_rank_of(self):
        assert TWO_CLASS.rank_of("hi") == 0
        assert TWO_CLASS.rank_of("lo") == 1
        assert TWO_CLASS.rank_of(None) == 1   # default: lowest precedence
        with pytest.raises(KeyError, match="unknown priority class"):
            TWO_CLASS.rank_of("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            SlaPolicy(())
        with pytest.raises(ValueError, match="duplicate"):
            SlaPolicy((PriorityClass("a"), PriorityClass("a")))
        with pytest.raises(ValueError):
            PriorityClass("a", max_batch=0)
        with pytest.raises(ValueError):
            PriorityClass("a", max_wait_s=-1.0)
        with pytest.raises(ValueError):
            PriorityClass("a", shed_after_s=0.0)
        with pytest.raises(ValueError):
            PriorityClass("")


class TestOrdering:
    def test_strict_class_precedence(self):
        queue = SlaQueue(TWO_CLASS)
        queue.put(make_request(0, rank=1))
        queue.put(make_request(1, rank=1))
        queue.put(make_request(2, rank=0))
        queue.close()
        # the hi-class request heads the first batch; same-model lo
        # requests ride along in eligibility order
        assert drain_ids(queue) == [[2, 0, 1]]

    def test_head_precedence_without_riders(self):
        """Different models never share a batch: lo-class requests of
        another model wait for the next batch."""
        queue = SlaQueue(TWO_CLASS)
        queue.put(make_request(0, rank=1, model="b"))
        queue.put(make_request(1, rank=0, model="a"))
        queue.close()
        assert drain_ids(queue) == [[1], [0]]

    def test_edf_within_class(self):
        queue = SlaQueue(TWO_CLASS)
        now = time.monotonic()
        queue.put(make_request(0, deadline_t=now + 30.0))
        queue.put(make_request(1, deadline_t=now + 10.0))
        queue.put(make_request(2, deadline_t=now + 20.0))
        queue.close()
        assert drain_ids(queue) == [[1, 2, 0]]

    def test_deadlined_requests_precede_fifo_peers(self):
        queue = SlaQueue(TWO_CLASS)
        queue.put(make_request(0))                                # no deadline
        queue.put(make_request(1, deadline_t=time.monotonic() + 30.0))
        queue.close()
        assert drain_ids(queue) == [[1, 0]]

    def test_fifo_special_case_matches_request_queue(self):
        """Under SlaPolicy.fifo the queue is the classic FIFO batcher."""
        policy = SlaPolicy.fifo(max_batch=2, max_wait_s=0.0)
        queue = SlaQueue(policy)
        for i in range(5):
            queue.put(make_request(i, policy=policy, rank=0))
        queue.close()
        assert drain_ids(queue) == [[0, 1], [2, 3], [4]]

    def test_late_arrivals_join_within_budget(self):
        policy = SlaPolicy.fifo(max_batch=8, max_wait_s=0.5)
        queue = SlaQueue(policy)
        queue.put(make_request(0, policy=policy))

        def late_put():
            time.sleep(0.02)
            queue.put(make_request(1, policy=policy))

        threading.Thread(target=late_put).start()
        batch = queue.get_batch()
        assert [r.request_id for r in batch] == [0, 1]

    def test_lone_request_released_at_budget(self):
        policy = SlaPolicy.fifo(max_batch=8, max_wait_s=0.05)
        queue = SlaQueue(policy)
        queue.put(make_request(0, policy=policy))
        start = time.monotonic()
        batch = queue.get_batch()
        assert [r.request_id for r in batch] == [0]
        assert time.monotonic() - start < 1.0

    def test_max_batch_caps_riders(self):
        policy = SlaPolicy((PriorityClass("hi", max_batch=2, max_wait_s=0.0),
                            PriorityClass("lo", max_batch=8, max_wait_s=0.0)))
        queue = SlaQueue(policy)
        for i in range(4):
            queue.put(make_request(i, rank=1, policy=policy))
        queue.put(make_request(9, rank=0, policy=policy))
        queue.close()
        # head class 'hi' caps the batch at 2; the rest drain as 'lo'
        assert drain_ids(queue) == [[9, 0], [1, 2, 3]]


class TestShedding:
    def test_expired_deadline_is_shed_not_dispatched(self):
        queue = SlaQueue(TWO_CLASS)
        expired = make_request(0, deadline_t=time.monotonic() - 0.01,
                               deadline_s=0.01)
        live = make_request(1)
        queue.put(expired)
        queue.put(live)
        queue.close()
        assert drain_ids(queue) == [[1]]
        with pytest.raises(RequestShed) as info:
            expired.future.result(timeout=0)
        receipt = info.value.receipt
        assert receipt.reason == SHED_DEADLINE
        assert receipt.request_id == 0
        assert receipt.priority_class == "hi"
        assert receipt.model == "m"
        assert receipt.deadline_s == 0.01
        assert receipt.queue_wait_s >= 0.0

    def test_latency_bound_shed(self):
        policy = SlaPolicy((PriorityClass("only", max_batch=1,
                                          max_wait_s=0.0,
                                          shed_after_s=0.01),))
        queue = SlaQueue(policy)
        stale = make_request(0, policy=policy,
                             enqueue_t=time.monotonic() - 1.0)
        queue.put(stale)
        queue.close()
        assert drain_ids(queue) == []
        with pytest.raises(RequestShed) as info:
            stale.future.result(timeout=0)
        assert info.value.receipt.reason == SHED_LATENCY_BOUND

    def test_on_shed_callback_receives_receipt(self):
        receipts = []
        queue = SlaQueue(TWO_CLASS, on_shed=receipts.append)
        queue.put(make_request(0, deadline_t=time.monotonic() - 1.0))
        queue.close()
        assert queue.get_batch() is None
        assert len(receipts) == 1
        assert isinstance(receipts[0], ShedReceipt)
        assert receipts[0].reason == SHED_DEADLINE

    def test_near_expiry_head_dispatches_instead_of_coalescing(self):
        """When waiting out the coalescing budget would cross the head's
        deadline, the batch releases immediately — a servable head is
        dispatched, not held until it must be shed."""
        policy = SlaPolicy((PriorityClass("only", max_batch=8,
                                          max_wait_s=10.0),))
        queue = SlaQueue(policy)
        queue.put(make_request(0, policy=policy,
                               deadline_t=time.monotonic() + 0.05))
        queue.put(make_request(1, policy=policy))
        start = time.monotonic()
        batch = queue.get_batch()
        assert time.monotonic() - start < 5.0
        assert [r.request_id for r in batch] == [0, 1]
        assert not batch[0].future.done()   # served path, not shed

    def test_close_refuses_put_but_drains(self):
        queue = SlaQueue(TWO_CLASS)
        queue.put(make_request(0))
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put(make_request(1))
        assert drain_ids(queue) == [[0]]

    def test_close_wakes_blocked_getter(self):
        queue = SlaQueue(TWO_CLASS)
        result = {}

        def getter():
            result["batch"] = queue.get_batch()

        thread = threading.Thread(target=getter)
        thread.start()
        time.sleep(0.02)
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result["batch"] is None

    def test_put_validates_rank(self):
        queue = SlaQueue(TWO_CLASS)
        rogue = SlaRequest(request_id=0, image=np.zeros(2), model="m",
                           class_rank=5, priority_class="ghost")
        with pytest.raises(ValueError, match="class_rank"):
            queue.put(rogue)

    def test_depth_gauges(self):
        queue = SlaQueue(TWO_CLASS)
        queue.put(make_request(0, rank=0))
        queue.put(make_request(1, rank=1))
        queue.put(make_request(2, rank=1))
        assert queue.depth == 3
        assert queue.depth_of("hi") == 1
        assert queue.depth_of("lo") == 2


class TestAdmissionController:
    def test_queue_depth_threshold(self):
        admission = AdmissionController(max_queue_depth=3)
        assert admission.admit(2, 0.0)
        assert not admission.admit(3, 0.0)
        assert not admission.admit(10, 0.0)

    def test_occupancy_needs_backlog(self):
        """High occupancy with an empty queue is a healthy saturated
        server — only occupancy *plus* backlog refuses."""
        admission = AdmissionController(max_occupancy=0.9)
        assert admission.admit(0, 0.99)
        assert not admission.admit(1, 0.99)
        assert admission.admit(1, 0.5)

    def test_unconfigured_admits_everything(self):
        admission = AdmissionController()
        assert admission.admit(10_000, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(max_occupancy=1.5)
        with pytest.raises(ValueError):
            AdmissionController(min_queue_depth=-1)

    def test_shed_receipt_round_trips(self):
        receipt = ShedReceipt(request_id=3, model="m", priority_class="hi",
                              reason=SHED_ADMISSION, queue_wait_s=0.0,
                              deadline_s=0.05)
        d = receipt.as_dict()
        assert d["reason"] == SHED_ADMISSION
        assert d["request_id"] == 3
        assert d["deadline_s"] == 0.05
        assert "admission" in str(RequestShed(receipt))

"""Shared fixtures for the test suite.

The expensive fixtures (trained models) are session-scoped; everything
downstream clones them rather than retraining.
"""

import numpy as np
import pytest

from repro.nn import Adam, LeNet5, evaluate, fit, set_init_seed, synthetic_mnist
from repro.nn.data import make_synthetic


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def mnist_small():
    """A small synthetic MNIST split shared across tests."""
    return synthetic_mnist(train_size=192, test_size=96, seed=7)


@pytest.fixture(scope="session")
def trained_lenet(mnist_small):
    """A LeNet-5 trained well above chance on the small MNIST stand-in."""
    train_set, test_set = mnist_small
    set_init_seed(7)
    model = LeNet5(num_classes=10, in_channels=1, image_size=16)
    fit(model, train_set, Adam(model.parameters(), lr=1e-3), epochs=4,
        batch_size=32, seed=7)
    accuracy = evaluate(model, test_set).accuracy
    assert accuracy > 0.5, f"fixture model failed to train ({accuracy:.2f})"
    return model


@pytest.fixture()
def tiny_dataset():
    """A fresh 3-class dataset for fast training tests."""
    return make_synthetic("tiny", num_classes=3, channels=1, size=8,
                          train_size=96, test_size=48, seed=11)


def make_random_engine_case(rng):
    """One randomized in-situ engine + integer inputs, for oracle fuzzing.

    Draws (shape, fragment size, weight/cell/activation bit-widths,
    sparsity, scheduler) from ``rng`` and returns ``(engine, x_int, meta)``
    where ``meta`` is the drawn configuration — include it in assertion
    messages so a failing draw is reproducible from the pinned seed.

    The weight levels are fragment-polarized (the FORMS single-signed-
    fragment property ``map_layer`` enforces), so every draw is a valid
    FORMS mapping.
    """
    from repro.core.fragments import FragmentGeometry
    from repro.core.quantization import QuantizationSpec
    from repro.reram import DeviceSpec, ReRAMDevice
    from repro.reram.engine import InSituLayerEngine
    from repro.reram.mapping import infer_signs, map_layer

    fragment_size = int(rng.choice([2, 4, 8]))
    rows = int(rng.integers(3, 25))
    cols = int(rng.integers(1, 10))
    weight_bits = int(rng.choice([4, 6, 8]))
    cell_bits = int(rng.choice([1, 2]))
    activation_bits = int(rng.choice([4, 8, 12]))
    sparsity = float(rng.uniform(0.0, 0.9))
    sparse_enabled = bool(rng.integers(0, 2))
    positions = int(rng.integers(1, 20))

    geometry = FragmentGeometry((cols, rows), fragment_size, "w")
    qmax = 2 ** (weight_bits - 1) - 1
    levels = rng.integers(-qmax, qmax + 1, size=(rows, cols))
    levels[rng.random((rows, cols)) < sparsity] = 0
    # polarize each fragment to the FORMS single-signed property
    padded = np.vstack([levels,
                        np.zeros((geometry.padded_rows - rows, cols),
                                 dtype=levels.dtype)])
    stack = padded.reshape(-1, fragment_size, cols)
    signs = np.where(stack.sum(axis=1, keepdims=True) >= 0, 1, -1)
    levels = (np.abs(stack) * signs).reshape(geometry.padded_rows,
                                             cols)[:rows]

    spec = QuantizationSpec(weight_bits=weight_bits, cell_bits=cell_bits)
    mapped = map_layer(levels, geometry, spec, scheme="forms",
                       signs=infer_signs(levels, geometry))
    engine = InSituLayerEngine(mapped, ReRAMDevice(DeviceSpec(), 0.0),
                               activation_bits=activation_bits)
    engine.sparse_enabled = sparse_enabled
    x_int = rng.integers(0, 2 ** activation_bits, size=(rows, positions))
    meta = dict(rows=rows, cols=cols, fragment_size=fragment_size,
                weight_bits=weight_bits, cell_bits=cell_bits,
                activation_bits=activation_bits, sparsity=round(sparsity, 3),
                sparse_enabled=sparse_enabled, positions=positions)
    return engine, x_int, meta


@pytest.fixture(scope="session")
def random_engine_case():
    """Factory fixture: ``random_engine_case(rng)`` -> (engine, x, meta)."""
    return make_random_engine_case

"""Recorded baseline accelerators (paper Table V rows taken from literature).

The FORMS paper compares against DaDianNao, TPU, WAX and SIMBA using numbers
from their respective papers, normalized to ISAAC; we record the same
normalized values (they cannot be derived from first principles inside this
repo, and the paper does not attempt to either).  ISAAC, PUMA and FORMS rows
are *computed* by :mod:`repro.arch.perf` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class RecordedBaseline:
    """Throughput efficiency of a published accelerator, normalized to ISAAC."""

    name: str
    gops_per_mm2_rel: float
    gops_per_w_rel: float
    gops_per_w_rel_range: Optional[Tuple[float, float]] = None
    note: str = ""

    def gops_per_w_display(self) -> str:
        if self.gops_per_w_rel_range:
            lo, hi = self.gops_per_w_rel_range
            return f"{lo:g}-{hi:g}"
        return f"{self.gops_per_w_rel:g}"


#: Table V reference rows (normalized to ISAAC = 1.0).
RECORDED_BASELINES: Dict[str, RecordedBaseline] = {
    "ISAAC": RecordedBaseline("ISAAC", 1.0, 1.0),
    "DaDianNao": RecordedBaseline("DaDianNao", 0.13, 0.45),
    "PUMA": RecordedBaseline("PUMA", 0.70, 0.79),
    "TPU": RecordedBaseline("TPU", 0.08, 0.48),
    "WAX": RecordedBaseline(
        "WAX", 0.33, 2.3,
        note="trades throughput for power efficiency (0.2 GHz)"),
    "SIMBA": RecordedBaseline(
        "SIMBA", 0.34, 1.29, gops_per_w_rel_range=(0.08, 2.5),
        note="0.48 V / 0.52 GHz operating point; efficiency range published"),
}

#: Paper Table V FORMS/optimized rows — kept for paper-vs-measured reporting
#: in EXPERIMENTS.md, never fed back into the model.
PAPER_TABLE5: Dict[str, Tuple[float, float]] = {
    "ISAAC": (1.0, 1.0),
    "DaDianNao": (0.13, 0.45),
    "PUMA": (0.70, 0.79),
    "TPU": (0.08, 0.48),
    "WAX": (0.33, 2.3),
    "SIMBA": (0.34, 1.29),
    "FORMS (polarization only, 8)": (0.54, 0.61),
    "FORMS (polarization only, 16)": (0.77, 0.84),
    "Pruned/Quantized-ISAAC": (26.4, 26.61),
    "Pruned/Quantized-PUMA": (18.67, 21.07),
    "FORMS (full optimization, 8)": (36.02, 27.73),
    "FORMS (full optimization, 16)": (39.48, 51.26),
}

#: Paper Figs. 13/14 FPS speedups over ISAAC-32 (for EXPERIMENTS.md only).
#: Keyed by (network, dataset); values ordered as the six plotted stacks:
#: (PQ-ISAAC, PQ-PUMA, FORMS-8 no-skip, FORMS-16 no-skip,
#:  FORMS-8 full, FORMS-16 full).
PAPER_FPS_SPEEDUPS: Dict[Tuple[str, str], Tuple[float, ...]] = {
    ("VGG16", "cifar100"): (25.875, 21.69, 14.12, 20.08, 59.28, 50.54),
    ("ResNet18", "cifar100"): (35.14, 5.29, 19.18, 27.26, 53.23, 55.48),
    ("ResNet50", "cifar100"): (30.665, 5.91, 16.74, 23.79, 25.27, 34.30),
    ("ResNet18", "imagenet"): (7.485, 4.85, 4.09, 5.81, 10.72, 11.20),
    ("ResNet50", "imagenet"): (11.18, 8.30, 7.10, 10.67, 17.76, 21.09),
}

#: Headline claims used as qualitative checks by EXPERIMENTS.md.
PAPER_CLAIMS = {
    "fps_speedup_over_optimized_isaac": (1.12, 2.4),
    "isaac_speedup_from_framework": (10.7, 377.9),
    "area_efficiency_vs_isaac": 1.50,
    "power_efficiency_vs_isaac": 1.93,
}

"""Integration tests across the extension subsystems.

The unit suites validate each module in isolation; these scenarios chain
them the way a user would: sensitivity-driven pruning feeding the ADMM
pipeline, whole-network in-situ inference composed with the non-ideal
engine, deployment costing through the VTEAM write model, and the DSE
consuming measured EIC statistics.
"""

import numpy as np
import pytest

from repro.arch import (cell_level_histogram, evaluate_design,
                        model_programming_cost)
from repro.arch.dse import DesignPoint
from repro.core import (ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline,
                        MitigationConfig, collect_layer_artifacts,
                        fault_tolerance_study, layer_sensitivity_scan,
                        select_keep_ratios)
from repro.core.zero_skip import average_eic_over_layers, layer_eic_stats
from repro.nn import (Adam, Conv2d, Flatten, Linear, ReLU, Sequential,
                      evaluate, fit, set_init_seed)
from repro.nn.data import make_synthetic
from repro.reram import (DeviceSpec, NonidealEngine, ReRAMDevice,
                         build_insitu_network)
from repro.reram.mapping import map_layer
from repro.reram.nonideal import FaultModel
from repro.reram.variation import clone_model


@pytest.fixture(scope="module")
def stack():
    """A trained + FORMS-optimized model shared by the scenarios."""
    train, test = make_synthetic("ext", 4, 1, 8, 192, 96, seed=77)
    set_init_seed(77)
    model = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(),
                       Flatten(), Linear(8 * 8 * 8, 4))
    fit(model, train, Adam(model.parameters(), 1e-3), epochs=4, batch_size=16)
    clean = evaluate(model, test).accuracy
    admm = ADMMConfig(iterations=1, epochs_per_iteration=1, retrain_epochs=1)
    config = FORMSConfig(fragment_size=4, crossbar=CrossbarShape(16, 16),
                         filter_keep=0.75, shape_keep=0.75,
                         prune_admm=admm, polarize_admm=admm,
                         quantize_admm=admm)
    optimized = clone_model(model)
    FORMSPipeline(config).optimize(optimized, train, test, seed=77)
    return model, optimized, config, train, test, clean


class TestSensitivityToPipeline:
    def test_selected_ratios_survive_the_pipeline(self, stack):
        model, _, _, train, test, clean = stack
        curves = layer_sensitivity_scan(model, test, fragment_size=4,
                                        keep_ratios=(1.0, 0.75, 0.5))
        selection = select_keep_ratios(curves, clean, tolerance=0.08)
        admm = ADMMConfig(iterations=1, epochs_per_iteration=1,
                          retrain_epochs=1)
        config = FORMSConfig(fragment_size=4, crossbar=CrossbarShape(16, 16),
                             per_layer_keep=selection.as_per_layer_keep(),
                             prune_admm=admm, polarize_admm=admm,
                             quantize_admm=admm)
        twin = clone_model(model)
        result = FORMSPipeline(config).optimize(twin, train, test, seed=77)
        assert result.final_accuracy >= clean - 0.25


class TestInsituWithNonidealities:
    def test_faulty_die_inference_end_to_end(self, stack):
        _, optimized, config, _, test, _ = stack
        insitu, engines = build_insitu_network(
            optimized, config, ReRAMDevice(DeviceSpec(), 0.0),
            engine_cls=NonidealEngine,
            fault_model=FaultModel(0.02, 0.002, seed=1))
        accuracy = evaluate(insitu, test).accuracy
        clean_insitu, _ = build_insitu_network(
            optimized, config, ReRAMDevice(DeviceSpec(), 0.0))
        clean_accuracy = evaluate(clean_insitu, test).accuracy
        assert accuracy <= clean_accuracy + 0.05
        assert all(e.fault_fraction > 0 for e in engines.values())

    def test_mitigation_study_on_optimized_model(self, stack):
        _, optimized, config, _, test, _ = stack
        (point,) = fault_tolerance_study(
            optimized, config, test, fault_rates=[(0.04, 0.004)], runs=2,
            seed=3, mitigation=MitigationConfig())
        assert point.mitigated_mean >= point.unmitigated_mean - 0.03


class TestDeploymentCosting:
    def test_programming_cost_of_optimized_model(self, stack):
        _, optimized, config, _, _, _ = stack
        artifacts = collect_layer_artifacts(optimized, config)
        spec = config.quant_spec()
        histogram = {}
        for art in artifacts.values():
            levels = art.geometry.matrix(art.int_weights)
            mapped = map_layer(levels, art.geometry, spec, scheme="forms",
                               signs=art.signs)
            for level, count in cell_level_histogram(
                    mapped.code_planes).items():
                histogram[level] = histogram.get(level, 0) + count
        cost = model_programming_cost(histogram, crossbars=8)
        assert cost.cells == sum(histogram.values())
        assert cost.energy_j > 0
        assert cost.latency_s > 0
        # Pruned models leave many cells at the erased level 0 (free writes).
        assert histogram.get(0, 0) > 0


class TestMeasuredEICFeedsDSE:
    def test_zero_skip_gain_from_measured_activations(self, stack):
        _, optimized, config, _, test, _ = stack
        rng = np.random.default_rng(0)
        activations = rng.integers(0, 50, size=(64, 200)).astype(np.int64)
        stats = layer_eic_stats(activations, fragment_size=8, total_bits=16)
        eic = average_eic_over_layers({"probe": stats})
        assert 1.0 <= eic <= 16.0
        plain = evaluate_design(DesignPoint(fragment_size=8))
        skipped = evaluate_design(DesignPoint(fragment_size=8),
                                  average_eic=eic)
        assert skipped.gops > plain.gops
        assert skipped.gops / plain.gops == pytest.approx(16.0 / eic,
                                                          rel=0.01)

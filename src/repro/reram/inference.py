"""Full-network in-situ inference (the system view of paper Figs. 10-12).

The variation study (:mod:`repro.reram.variation`) uses the fast
effective-weight shortcut; this module runs the *real thing*: every conv and
linear layer of a model executes on its own bit-serial crossbar engine —
im2col, activation quantization, bit-serial DAC cycles, per-fragment ADC
conversion, shift-and-add and sign-indicator accumulation — while the
digital-domain layers (BatchNorm, ReLU, pooling) run unchanged.

Usage::

    insitu, engines = build_insitu_network(model, config, device)
    accuracy = evaluate(insitu, test_set).accuracy      # whole net on ReRAM
    total_cycles = sum(e.stats.cycles_fed for e in engines.values())

Signed activations (the un-ReLU'd network input) are handled by linearity:
``x = x+ - x-`` feeds the crossbar twice and subtracts digitally — and since
post-ReLU layers have an all-zero negative part, the engine's zero-skipping
finishes that pass in a single detection cycle.

With ideal devices and exact ADC sizing, in-situ accuracy equals the
quantized digital model's accuracy up to the activation-quantization error
(tested); the engine class can be swapped for :class:`NonidealEngine` to
run whole-network inference under faults, IR drop and read noise.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

import numpy as np

from ..core.fragments import FragmentGeometry
from ..core.pipeline import FORMSConfig, LayerArtifacts, collect_layer_artifacts
from ..nn import functional as F
from ..nn.layers import Conv2d, Linear, Module
from ..nn.tensor import Tensor
from .converters import ADCSpec
from .device import ReRAMDevice
from .engine import DieCache, InSituLayerEngine
from .mapping import map_layer
from .variation import clone_model


def _signed_matvec(engine: InSituLayerEngine, cols: np.ndarray,
                   weight_scale: float) -> np.ndarray:
    """Engine MVM for real-valued (possibly signed) im2col columns.

    Quantizes the positive and negative parts to the engine's activation
    grid with a shared scale, runs both through the crossbars, and
    recombines digitally.  Both passes are concatenated along the positions
    axis so the engine evaluates them in one fused ``matvec_int`` call
    (positions are independent in the analog math, so this is exact); a
    post-ReLU layer has an all-zero negative part and skips the second half
    entirely — the engine's zero detection then costs nothing.

    Accounting note: ``EngineStats`` describes this *fused* schedule — both
    polarities ride one bit-serial pass, so ``cycles_fed`` counts the
    shared schedule (the max of the two bit depths, like any other batch of
    positions) and ``conversions`` covers both position sets, rather than
    the two sequential passes the pre-fusion engine made.
    """
    qmax = (1 << engine.activation_bits) - 1
    positive = np.maximum(cols, 0.0)
    negative = np.maximum(-cols, 0.0)
    top = float(max(positive.max(initial=0.0), negative.max(initial=0.0)))
    scale = top / qmax if top > 0.0 else 1.0
    pos_int = np.clip(np.rint(positive / scale), 0, qmax).astype(np.int64)
    if negative.any():
        neg_int = np.clip(np.rint(negative / scale), 0, qmax).astype(np.int64)
        both = engine.matvec_int(
            np.concatenate([pos_int, neg_int], axis=1)).astype(np.float64)
        split = pos_int.shape[1]
        out = both[:, :split] - both[:, split:]
    else:
        out = engine.matvec_int(pos_int).astype(np.float64)
    return out * weight_scale * scale


class InSituConv2d(Module):
    """Drop-in replacement executing a Conv2d on a crossbar engine."""

    def __init__(self, layer: Conv2d, engine: InSituLayerEngine,
                 geometry: FragmentGeometry, weight_scale: float):
        super().__init__()
        self.kernel_size = layer.kernel_size
        self.stride = layer.stride
        self.padding = layer.padding
        self.out_channels = layer.out_channels
        self._bias = layer.bias.data.copy() if layer.bias is not None else None
        self.engine = engine
        self.geometry = geometry
        self.weight_scale = weight_scale

    def forward(self, x: Tensor) -> Tensor:
        data = x.data
        batch, _, height, width = data.shape
        out_h = F.conv_output_size(height, self.kernel_size, self.stride,
                                   self.padding)
        out_w = F.conv_output_size(width, self.kernel_size, self.stride,
                                   self.padding)
        cols = F.im2col(data, self.kernel_size, self.kernel_size,
                        self.stride, self.padding)
        perm = self.geometry.input_permutation()
        if perm is not None:
            cols = cols[perm]
        out = _signed_matvec(self.engine, cols, self.weight_scale)
        if self._bias is not None:
            out = out + self._bias.reshape(-1, 1)
        out = out.reshape(self.out_channels, out_h, out_w,
                          batch).transpose(3, 0, 1, 2)
        return Tensor(out.astype(data.dtype))


class InSituLinear(Module):
    """Drop-in replacement executing a Linear layer on a crossbar engine."""

    def __init__(self, layer: Linear, engine: InSituLayerEngine,
                 geometry: FragmentGeometry, weight_scale: float):
        super().__init__()
        self.out_features = layer.out_features
        self._bias = layer.bias.data.copy() if layer.bias is not None else None
        self.engine = engine
        self.geometry = geometry
        self.weight_scale = weight_scale

    def forward(self, x: Tensor) -> Tensor:
        cols = x.data.T                                   # (in, N)
        perm = self.geometry.input_permutation()
        if perm is not None:
            cols = cols[perm]
        out = _signed_matvec(self.engine, cols, self.weight_scale)
        if self._bias is not None:
            out = out + self._bias.reshape(-1, 1)
        return Tensor(out.T.astype(x.data.dtype))


def _replace_module(root: Module, path: str, replacement: Module) -> None:
    parts = path.split(".")
    parent = root
    for part in parts[:-1]:
        parent = parent._modules[part]
    setattr(parent, parts[-1], replacement)   # registers in _modules too


def build_insitu_network(model: Module, config: FORMSConfig,
                         device: ReRAMDevice, scheme: str = "forms",
                         adc: Optional[ADCSpec] = None,
                         activation_bits: int = 16,
                         engine_cls: Type[InSituLayerEngine] = InSituLayerEngine,
                         artifacts: Optional[Dict[str, LayerArtifacts]] = None,
                         die_cache: Optional[DieCache] = None,
                         **engine_kwargs
                         ) -> Tuple[Module, Dict[str, InSituLayerEngine]]:
    """Clone ``model`` with every conv/linear layer running on a crossbar.

    Returns ``(insitu_model, engines)``; the engines dict exposes per-layer
    :class:`~repro.reram.engine.EngineStats` (conversions, saturation,
    cycles fed) after inference runs.  ``engine_cls`` and ``engine_kwargs``
    select the physics (:class:`~repro.reram.nonideal_engine.NonidealEngine`
    for faults / IR drop / read noise).  Pass a shared
    :class:`~repro.reram.engine.DieCache` when rebuilding the network across
    sweep points so identical ``(codes, device)`` pairs reuse one programmed
    die instead of re-programming per engine.

    The returned model composes with the ``repro.runtime`` executor: run a
    batch through :func:`repro.runtime.infer_tiled` to fan batch tiles (and
    thereby different layers of different tiles) across workers, or attach
    a :class:`repro.runtime.WorkerPool` to the engines
    (:func:`repro.runtime.attach_pool`) to spread one large MVM's job
    chunks.  ``config.fused_kernel_max_elements`` (when set) pins every
    engine's kernel chunk budget.
    """
    insitu = clone_model(model)
    if artifacts is None:
        artifacts = collect_layer_artifacts(model, config)
    spec = config.quant_spec()
    engines: Dict[str, InSituLayerEngine] = {}
    layers = {name: module for name, module in insitu.named_modules()}
    for name, art in artifacts.items():
        layer = layers[name]
        geometry = art.geometry
        levels = geometry.matrix(art.int_weights)
        signs = art.signs if scheme == "forms" else None
        mapped = map_layer(levels, geometry, spec, scheme=scheme, signs=signs)
        if die_cache is not None:  # keep custom engine_cls signatures working
            engine_kwargs = dict(engine_kwargs, die_cache=die_cache)
        if config.fused_kernel_max_elements is not None:
            engine_kwargs = dict(engine_kwargs,
                                 kernel_max_elements=config.fused_kernel_max_elements)
        engine = engine_cls(mapped, device, adc=adc,
                            activation_bits=activation_bits, **engine_kwargs)
        if isinstance(layer, Conv2d):
            wrapper: Module = InSituConv2d(layer, engine, geometry, art.scale)
        elif isinstance(layer, Linear):
            wrapper = InSituLinear(layer, engine, geometry, art.scale)
        else:
            raise TypeError(f"layer {name!r} is neither Conv2d nor Linear")
        _replace_module(insitu, name, wrapper)
        engines[name] = engine
    return insitu, engines


def total_cycles_fed(engines: Dict[str, InSituLayerEngine]) -> int:
    """Bit-serial cycles actually fed across all layers (post zero-skip)."""
    return sum(engine.stats.cycles_fed for engine in engines.values())

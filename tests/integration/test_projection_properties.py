"""Cross-constraint projection properties (hypothesis).

The ADMM trainer's correctness rests on its Z-step projections actually
being projections.  These properties are checked for all four constraint
families together — structured pruning, fragment polarization, quantization,
and the TinyADC bound:

* **idempotence** — projecting twice equals projecting once;
* **feasibility** — the projection output has zero constraint violation;
* **non-expansion of the sparsifiers** — pruning/polarization/TinyADC only
  zero entries, so they never increase the Frobenius norm;
* **composition** — polarization and TinyADC preserve pruned zeros, so the
  pipeline's prune -> polarize -> quantize order keeps earlier structure.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (PruningSpec, QuantizationSpec, TinyADCConstraint,
                        TinyADCSpec, compute_signs, is_polarized,
                        polarization_violation, project_polarization,
                        project_quantization, project_structured)
from repro.core.fragments import FragmentGeometry
from repro.core.tinyadc import project_fragment_sparsity

SHAPES = st.sampled_from([(4, 2, 3, 3), (6, 1, 2, 2), (8, 3, 1, 1), (10, 6)])


def weight_for(shape, seed):
    rng = np.random.default_rng(seed)
    return rng.normal(scale=0.5, size=shape)


def geometry_for(shape, fragment_size=4):
    return FragmentGeometry(shape, fragment_size, "w")


class TestIdempotence:
    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_pruning(self, shape, seed):
        weight = weight_for(shape, seed)
        geometry = geometry_for(shape)
        spec = PruningSpec(filter_keep=0.6, shape_keep=0.6)
        once = project_structured(weight, geometry, spec)
        twice = project_structured(once, geometry, spec)
        np.testing.assert_array_equal(once, twice)

    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_polarization(self, shape, seed):
        weight = weight_for(shape, seed)
        geometry = geometry_for(shape)
        signs = compute_signs(weight, geometry, "sum")
        once = project_polarization(weight, geometry, signs)
        twice = project_polarization(once, geometry, signs)
        np.testing.assert_array_equal(once, twice)

    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_quantization(self, shape, seed):
        weight = weight_for(shape, seed)
        spec = QuantizationSpec(weight_bits=8, cell_bits=2)
        once, scale = project_quantization(weight, spec, 0.0)
        twice, _ = project_quantization(once, spec, scale)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_tinyadc(self, shape, seed):
        weight = weight_for(shape, seed)
        geometry = geometry_for(shape)
        once = project_fragment_sparsity(weight, geometry, 2)
        twice = project_fragment_sparsity(once, geometry, 2)
        np.testing.assert_array_equal(once, twice)


class TestFeasibility:
    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_polarization_feasible(self, shape, seed):
        weight = weight_for(shape, seed)
        geometry = geometry_for(shape)
        signs = compute_signs(weight, geometry, "sum")
        projected = project_polarization(weight, geometry, signs)
        assert is_polarized(projected, geometry)
        assert polarization_violation(projected, geometry) == 0.0

    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_tinyadc_feasible(self, shape, seed):
        weight = weight_for(shape, seed)
        geometry = geometry_for(shape)
        constraint = TinyADCConstraint(geometry, TinyADCSpec(2))
        assert constraint.violation(constraint.project(weight)) == 0.0


class TestNonExpansion:
    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_sparsifiers_never_grow_the_norm(self, shape, seed):
        weight = weight_for(shape, seed)
        geometry = geometry_for(shape)
        norm = np.linalg.norm(weight)
        pruned = project_structured(weight, geometry,
                                    PruningSpec(filter_keep=0.5,
                                                shape_keep=0.5))
        signs = compute_signs(weight, geometry, "sum")
        polarized = project_polarization(weight, geometry, signs)
        sparse = project_fragment_sparsity(weight, geometry, 2)
        for projected in (pruned, polarized, sparse):
            assert np.linalg.norm(projected) <= norm + 1e-12

    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_projection_is_closest_among_sign_patterns(self, shape, seed):
        # Polarization projection zeroes exactly the disagreeing entries, so
        # its distance is the norm of those entries — no feasible point with
        # the same signs is closer.
        weight = weight_for(shape, seed)
        geometry = geometry_for(shape)
        signs = compute_signs(weight, geometry, "sum")
        projected = project_polarization(weight, geometry, signs)
        removed = weight - projected
        # Whatever was removed disagrees with the kept entries' signs.
        assert float((projected * removed).sum()) == pytest.approx(0.0,
                                                                   abs=1e-9)


class TestComposition:
    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_polarization_preserves_pruned_zeros(self, shape, seed):
        weight = weight_for(shape, seed)
        geometry = geometry_for(shape)
        pruned = project_structured(weight, geometry,
                                    PruningSpec(filter_keep=0.5,
                                                shape_keep=0.5))
        signs = compute_signs(pruned, geometry, "sum")
        polarized = project_polarization(pruned, geometry, signs)
        assert (polarized[pruned == 0.0] == 0.0).all()

    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_tinyadc_preserves_pruned_zeros(self, shape, seed):
        weight = weight_for(shape, seed)
        geometry = geometry_for(shape)
        pruned = project_structured(weight, geometry,
                                    PruningSpec(filter_keep=0.5,
                                                shape_keep=0.5))
        sparse = project_fragment_sparsity(pruned, geometry, 2)
        assert (sparse[pruned == 0.0] == 0.0).all()

    @given(SHAPES, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_quantization_preserves_polarity(self, shape, seed):
        # Symmetric quantization never flips a weight's sign, so a polarized
        # model stays polarized through the final quantization phase.
        weight = weight_for(shape, seed)
        geometry = geometry_for(shape)
        signs = compute_signs(weight, geometry, "sum")
        polarized = project_polarization(weight, geometry, signs)
        quantized, _ = project_quantization(
            polarized, QuantizationSpec(weight_bits=8, cell_bits=2), 0.0)
        assert is_polarized(quantized, geometry)

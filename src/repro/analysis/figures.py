"""Plain-text figure rendering (bar charts, line charts, histograms).

The paper's evaluation mixes tables with figures (Figs. 6, 8, 13, 14); the
tables render through :mod:`repro.analysis.tables`, and these helpers give
the figures the same treatment — deterministic monospace artifacts that the
benches print and EXPERIMENTS.md embeds.  No plotting dependency is needed
(the environment is offline).

All renderers return a single string; values must be finite and the charts
are width-stable (a value of 0 produces an empty bar, the maximum fills the
budget exactly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

_FULL, _HALF = "#", "+"


def _check_values(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if not np.isfinite(arr).all():
        raise ValueError("values must be finite")
    if (arr < 0).any():
        raise ValueError("bar/line charts render non-negative magnitudes")
    return arr


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: Optional[str] = None, width: int = 50,
              value_fmt: str = ".2f") -> str:
    """Horizontal bar chart: one labeled row per value.

    The largest value spans ``width`` characters; others scale linearly.
    """
    arr = _check_values(values)
    if len(labels) != arr.size:
        raise ValueError("labels and values must have the same length")
    if width < 1:
        raise ValueError("width must be >= 1")
    peak = arr.max()
    label_w = max(len(str(l)) for l in labels)
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    for label, value in zip(labels, arr):
        cells = int(round(width * value / peak)) if peak > 0 else 0
        bar = _FULL * cells
        out.append(f"{str(label).ljust(label_w)} |{bar.ljust(width)} "
                   f"{format(value, value_fmt)}")
    return "\n".join(out)


def grouped_bar_chart(groups: Sequence[str], series: Dict[str, Sequence[float]],
                      title: Optional[str] = None, width: int = 50,
                      value_fmt: str = ".2f") -> str:
    """Grouped horizontal bars: for each group, one bar per series.

    Mirrors the layout of the paper's Figs. 13/14 (per-network clusters of
    per-configuration bars).  All series share one scale.
    """
    if not series:
        raise ValueError("need at least one series")
    arrays = {name: _check_values(vals) for name, vals in series.items()}
    for name, arr in arrays.items():
        if arr.size != len(groups):
            raise ValueError(f"series {name!r} length != number of groups")
    peak = max(arr.max() for arr in arrays.values())
    name_w = max(len(name) for name in arrays)
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    for g, group in enumerate(groups):
        out.append(f"{group}:")
        for name, arr in arrays.items():
            cells = int(round(width * arr[g] / peak)) if peak > 0 else 0
            out.append(f"  {name.ljust(name_w)} |{(_FULL * cells).ljust(width)} "
                       f"{format(arr[g], value_fmt)}")
    return "\n".join(out)


def line_chart(xs: Sequence[float], series: Dict[str, Sequence[float]],
               title: Optional[str] = None, height: int = 12,
               width: int = 60, y_fmt: str = ".1f") -> str:
    """ASCII line chart: one marker character per series on a shared grid.

    Used for the Fig. 6 accuracy-vs-fragment-size and Fig. 8b EIC-vs-size
    curves.  X positions map linearly onto the column budget; Y spans the
    data range with axis annotations at the top and bottom rows.
    """
    if not series:
        raise ValueError("need at least one series")
    if height < 2 or width < 2:
        raise ValueError("height and width must be >= 2")
    xs_arr = np.asarray(list(xs), dtype=np.float64)
    if xs_arr.size < 2:
        raise ValueError("need at least two x positions")
    markers = "*o+x@%&$"
    arrays = {}
    for name, vals in series.items():
        arr = np.asarray(list(vals), dtype=np.float64)
        if arr.size != xs_arr.size:
            raise ValueError(f"series {name!r} length != len(xs)")
        if not np.isfinite(arr).all():
            raise ValueError("values must be finite")
        arrays[name] = arr

    y_min = min(arr.min() for arr in arrays.values())
    y_max = max(arr.max() for arr in arrays.values())
    span = y_max - y_min or 1.0
    x_min, x_max = xs_arr.min(), xs_arr.max()
    x_span = x_max - x_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, arr) in enumerate(arrays.items()):
        mark = markers[index % len(markers)]
        for x, y in zip(xs_arr, arr):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y_max - y) / span * (height - 1)))
            grid[row][col] = mark

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    for r, row in enumerate(grid):
        if r == 0:
            axis = format(y_max, y_fmt).rjust(8)
        elif r == height - 1:
            axis = format(y_min, y_fmt).rjust(8)
        else:
            axis = " " * 8
        out.append(f"{axis} |{''.join(row)}")
    out.append(" " * 9 + "+" + "-" * width)
    x_lo, x_hi = format(x_min, "g"), format(x_max, "g")
    out.append(" " * 10 + x_lo + x_hi.rjust(width - len(x_lo)))
    legend = "   ".join(f"{markers[i % len(markers)]} {name}"
                        for i, name in enumerate(arrays))
    out.append("legend: " + legend)
    return "\n".join(out)


def histogram(values: Sequence[float], bins: int = 10,
              title: Optional[str] = None, width: int = 50) -> str:
    """Binned distribution as horizontal bars (Fig. 8a's EIC distribution)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if not np.isfinite(arr).all():
        raise ValueError("values must be finite")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    counts, edges = np.histogram(arr, bins=bins)
    labels = [f"[{edges[i]:.3g}, {edges[i + 1]:.3g})" for i in range(bins)]
    labels[-1] = labels[-1][:-1] + "]"
    percent = 100.0 * counts / arr.size
    return bar_chart(labels, percent, title=title, width=width,
                     value_fmt=".1f")


def sparkline(values: Sequence[float]) -> str:
    """One-line trend summary using block characters (for log output)."""
    arr = _check_values(values)
    glyphs = " .:-=+*#%@"
    span = arr.max() - arr.min() or 1.0
    scaled = ((arr - arr.min()) / span * (len(glyphs) - 1)).round().astype(int)
    return "".join(glyphs[i] for i in scaled)

#!/usr/bin/env sh
# The standard check set: fast tier-1 signal + the engine perf gate.
#
#   sh scripts/checks.sh            # what CI runs (see .github/workflows)
#
# 1. `pytest -m "not slow"` — the fast tier-1 signal (the full tier-1
#    command is `pytest -x -q` without the marker filter; the 35 slow
#    training-driver tests are nightly material).
# 2. `run_perf_suite.py --smoke` — records BENCH-schema results to a
#    throwaway path and exits non-zero if the headline micro-benchmark
#    (mvm_forms_16bit_128pos) falls below its 5x speedup floor, so a perf
#    regression fails the check set exactly like a correctness regression.
set -e

cd "$(dirname "$0")/.."

echo "==> tier-1 (fast signal): pytest -m 'not slow'"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q -m "not slow"

echo "==> perf gate: run_perf_suite.py --smoke"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/run_perf_suite.py \
    --smoke -o "${PERF_GATE_OUTPUT:-/tmp/forms_perf_gate.json}"

echo "==> checks passed"

"""Numpy DNN training substrate (autograd, layers, models, data, training).

This package replaces the PyTorch stack the FORMS authors used; see DESIGN.md
for the substitution rationale.  Public surface:

* :class:`repro.nn.Tensor` — autograd array
* :mod:`repro.nn.functional` — conv2d / pooling / batch-norm / losses
* layers: :class:`Conv2d`, :class:`Linear`, :class:`BatchNorm2d`, containers
* models: :class:`LeNet5`, :class:`VGG`, :class:`ResNet` (+ builders)
* data: synthetic dataset generators standing in for the paper's datasets
* training: :func:`fit`, :func:`evaluate`
"""

from . import functional
from .augment import (AugmentedDataset, Compose, Cutout, GaussianNoise,
                      RandomCrop, RandomHorizontalFlip, Transform,
                      standard_augmentation)
from .data import (DataLoader, Dataset, load_dataset, make_synthetic,
                   synthetic_cifar10, synthetic_cifar100, synthetic_imagenet,
                   synthetic_mnist)
from .init import (SCHEMES as INIT_SCHEMES, fan_in_out, he_normal,
                   he_uniform, orthogonal, reinitialize, xavier_normal,
                   xavier_uniform)
from .metrics import (ClassificationReport, classification_report,
                      confusion_matrix, predictions_from_logits,
                      topk_accuracy)
from .layers import (AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d, Dropout,
                     Flatten, GlobalAvgPool2d, Linear, MaxPool2d, Module,
                     Parameter, ReLU, Sequential, compressible_layers,
                     set_init_seed)
from .models import (VGG, BasicBlock, Bottleneck, LeNet5, ResNet, build_model,
                     resnet18, resnet20, resnet50)
from .optim import SGD, Adam, Optimizer, StepLR
from .schedulers import (ConstantLR, CosineAnnealingLR, ExponentialLR,
                         LRScheduler, MultiStepLR, WarmupLR)
from .tensor import Tensor, concatenate, no_grad, stack
from .trainer import (EpochStats, History, evaluate, evaluate_topk, fit,
                      recalibrate_batchnorm)

__all__ = [
    "Tensor", "no_grad", "concatenate", "stack",
    "Module", "Parameter", "Conv2d", "Linear", "BatchNorm1d", "BatchNorm2d",
    "ReLU", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten", "Dropout",
    "Sequential", "compressible_layers", "set_init_seed",
    "LeNet5", "VGG", "ResNet", "BasicBlock", "Bottleneck",
    "resnet18", "resnet20", "resnet50", "build_model",
    "SGD", "Adam", "Optimizer", "StepLR",
    "LRScheduler", "MultiStepLR", "ExponentialLR", "CosineAnnealingLR",
    "WarmupLR", "ConstantLR",
    "fan_in_out", "xavier_uniform", "xavier_normal", "he_uniform",
    "he_normal", "orthogonal", "reinitialize", "INIT_SCHEMES",
    "Dataset", "DataLoader", "make_synthetic", "load_dataset",
    "synthetic_mnist", "synthetic_cifar10", "synthetic_cifar100", "synthetic_imagenet",
    "Transform", "RandomHorizontalFlip", "RandomCrop", "GaussianNoise",
    "Cutout", "Compose", "standard_augmentation", "AugmentedDataset",
    "fit", "evaluate", "evaluate_topk", "History", "EpochStats",
    "recalibrate_batchnorm",
    "confusion_matrix", "classification_report", "ClassificationReport",
    "topk_accuracy", "predictions_from_logits",
    "functional",
]

"""Server-level observability: traces, usage metering, metrics, profiler.

The in-process half of the PR's wiring: every ``submit`` is traceable
(ids are minted when absent), receipts carry span trees whose shape is
pinned here, the usage meter bills what the engines actually did
(``macs = conversions x fragment_size``), the scrape reflects the
traffic, and the opt-in engine profiler attributes MVM time to dispatch
tiers — all against both the fake-network tenants (fast, semantics) and
a real in-situ server (billing, profiling).
"""

import time

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.obs import Observability, parse_prometheus_text
from repro.perf.suite import _post_relu_network
from repro.reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
from repro.serving import (SHED_DEADLINE, InferenceServer, ModelRegistry,
                           PriorityClass, RequestShed, SlaPolicy)


def linear_network(scale, shift):
    def network(tensor):
        return Tensor(tensor.data.reshape(tensor.data.shape[0], -1)
                      * scale + shift)
    return network


@pytest.fixture()
def server():
    registry = ModelRegistry(workers=2)
    registry.register_network("fast", linear_network(2.0, 1.0))
    registry.register_network("batch", linear_network(-3.0, 0.5))
    policy = SlaPolicy((
        PriorityClass("interactive", max_batch=2, max_wait_s=0.001),
        PriorityClass("bulk", max_batch=8, max_wait_s=0.004),
    ))
    with registry, InferenceServer(registry=registry,
                                   policy=policy) as server:
        yield server


class TestTraceLifecycle:
    def test_submit_mints_a_trace_id(self, server):
        result = server.submit(np.ones(4), model="fast")
        trace_id = result.stats.trace_id
        assert trace_id is not None and len(trace_id) == 32
        record = server.trace(trace_id)
        assert record["trace_id"] == trace_id
        assert record["model"] == "fast"

    def test_explicit_trace_id_rides_through(self, server):
        result = server.submit(np.ones(4), model="fast",
                               trace_id="caller-chosen-id")
        assert result.stats.trace_id == "caller-chosen-id"
        assert server.trace("caller-chosen-id") is not None

    def test_span_tree_shape(self, server):
        result = server.submit(np.ones(4), model="fast",
                               priority="interactive")
        (root,) = result.stats.spans
        assert root["name"] == "request"
        assert root["start_s"] == 0.0
        queue_wait, batch = root["children"]
        assert queue_wait["name"] == "queue_wait"
        assert batch["name"] == "batch"
        assert batch["attrs"]["batch_size"] == result.stats.batch_size
        assert batch["attrs"]["batch_id"] == result.stats.batch_id
        # the runtime contributed the per-tile dispatch span
        (tile,) = batch["children"]
        assert tile["name"] == "tile"
        assert tile["duration_s"] <= batch["duration_s"] * 1.5
        # durations nest sanely: the request covers wait + ride
        assert root["duration_s"] >= queue_wait["duration_s"]
        # and the stored trace carries the same tree
        stored = server.trace(result.stats.trace_id)
        assert stored["spans"] == result.stats.spans

    def test_ring_eviction_bounds_storage(self):
        registry = ModelRegistry(workers=1)
        registry.register_network("fast", linear_network(1.0, 0.0))
        with registry, InferenceServer(
                registry=registry,
                obs=Observability(trace_ring=2)) as server:
            ids = [server.submit(np.ones(3)).stats.trace_id
                   for _ in range(4)]
            assert server.trace(ids[0]) is None      # evicted
            assert server.trace(ids[-1]) is not None


class TestShedObservability:
    def make_slow_server(self, obs=None):
        registry = ModelRegistry(workers=1)

        def slow(tensor):
            time.sleep(0.15)
            return Tensor(tensor.data.reshape(tensor.data.shape[0], -1))

        registry.register_network("slow", slow)
        return registry, InferenceServer(registry=registry, max_batch=1,
                                         max_wait_s=0.0, obs=obs)

    def test_shed_is_metered_traced_and_counted(self):
        registry, server = self.make_slow_server()
        with registry, server:
            blocker = server.submit_async(np.ones(4))
            time.sleep(0.05)     # blocker is mid-dispatch (EDF would
            # otherwise pop the deadlined victim first, not shed it)
            victim = server.submit_async(np.ones(4), deadline_s=0.01)
            with pytest.raises(RequestShed) as shed:
                victim.result(timeout=10.0)
            blocker.result(timeout=10.0)
            receipt = shed.value.receipt
            assert receipt.reason == SHED_DEADLINE
            assert receipt.trace_id is not None
            # usage billed the shed against the tenant
            usage = server.usage_snapshot()
            assert usage["totals"]["sheds"] == 1
            assert usage["totals"]["requests"] == 1
            # the trace ring stored the shed's one-span story
            record = server.trace(receipt.trace_id)
            assert record["shed_reason"] == SHED_DEADLINE
            assert record["spans"][0]["name"] == "shed"
            # and the scrape shows the labelled shed counter
            families = parse_prometheus_text(server.metrics_text())
            samples = families["forms_requests_shed_total"]["samples"]
            ((_, labels), value), = samples.items()
            assert dict(labels)["reason"] == SHED_DEADLINE
            assert value == 1


class TestMetricsWiring:
    def test_scrape_reflects_traffic(self, server):
        for _ in range(3):
            server.submit(np.ones(4), model="fast", priority="interactive")
        families = parse_prometheus_text(server.metrics_text())
        completed = families["forms_requests_completed_total"]["samples"]
        key = ("forms_requests_completed_total",
               (("class", "interactive"), ("model", "fast")))
        assert completed[key] == 3
        # pull gauges and pre-touched zero families are present
        assert "forms_queue_depth" in families
        assert "forms_occupancy" in families
        assert families["forms_batches_total"]["samples"][
            ("forms_batches_total", ())] >= 1
        # the latency histogram counted every completion
        latency = families["forms_request_latency_seconds"]["samples"]
        assert latency[("forms_request_latency_seconds_count",
                        (("class", "interactive"),
                         ("model", "fast")))] == 3

    def test_disabled_obs_is_silent_but_serves(self, server):
        registry = ModelRegistry(workers=1)
        registry.register_network("fast", linear_network(2.0, 1.0))
        with registry, InferenceServer(
                registry=registry, obs=Observability.disabled()) as quiet:
            result = quiet.submit(np.ones(4))
            np.testing.assert_array_equal(result.output, np.ones(4) * 3.0)
            assert quiet.metrics_text() == ""
            assert result.stats.trace_id is not None    # ids still mint
            assert quiet.trace(result.stats.trace_id) is None
            assert result.stats.spans is None


@pytest.fixture(scope="module")
def real_server():
    model, config, images = _post_relu_network()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    with InferenceServer.from_model(model, config, device, adc=adc,
                                    activation_bits=12, workers=1,
                                    max_batch=4,
                                    max_wait_s=0.02) as server:
        yield server, config, images


class TestUsageBilling:
    def test_macs_equal_conversions_times_fragment(self, real_server):
        server, config, images = real_server
        results = server.submit_many(images[:3])
        for result in results:
            stats = result.stats.engine_stats
            assert stats["macs"] == \
                stats["conversions"] * config.fragment_size
            assert stats["macs"] > 0

    def test_usage_totals_sum_the_receipts(self, real_server):
        server, config, images = real_server
        before = server.usage_snapshot()["totals"]
        results = server.submit_many(images[:4])
        after = server.usage_snapshot()["totals"]
        assert after["requests"] - before["requests"] == 4
        assert after["macs"] - before["macs"] == \
            sum(r.stats.engine_stats["macs"] for r in results)
        assert after["die_seconds"] > before["die_seconds"]


class TestEngineProfiling:
    def test_profiler_attributes_tiers_and_spans(self, real_server):
        server, config, images = real_server
        profiler = server.arm_profiling()
        assert server.arm_profiling() is profiler     # idempotent
        result = server.submit(images[0])
        families = parse_prometheus_text(server.metrics_text())
        samples = families["forms_engine_profile_seconds"]["samples"]
        counts = {labels: value
                  for (name, labels), value in samples.items()
                  if name == "forms_engine_profile_seconds_count"}
        assert counts, "no profiled MVMs landed in the histogram"
        for labels, value in counts.items():
            assert dict(labels)["tier"] in ("exact", "integer", "analog",
                                            "dense", "dense_noise")
            assert value >= 1
        # profiled engine spans appear under the trace's tile span
        (root,) = result.stats.spans
        tile = root["children"][1]["children"][0]
        engine_spans = tile.get("children", [])
        assert engine_spans and all(span["name"] == "engine"
                                    for span in engine_spans)
        assert all("tier" in span["attrs"] for span in engine_spans)

"""Mixed-signal peripheral converters: DAC, sample-and-hold, ADC.

The FORMS design point uses 1-bit DACs (a simple inverter driving the word
line — input bits arrive serially from the zero-skip shift registers), a
sample-and-hold per column, and small per-fragment ADCs (4-bit at fragment
size 8 versus ISAAC's shared 8-bit ADC; Table III).

The ADC here operates in the *digital partial-sum domain*: the analog current
has already been converted to an estimate of ``sum(code_i * bit_i)`` (see
:func:`repro.reram.device.codes_to_digital`); the ADC rounds it to one of
``2**bits`` levels with saturation.  An ADC with enough bits to cover the
worst-case fragment sum is exact — the anchor invariant of the whole
simulator; an undersized ADC clips, which is measurable as accuracy loss
(``bench_ablation_adc_bits``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class DACSpec:
    """1-bit digital-to-analog converter (word-line driver)."""

    bits: int = 1

    def __post_init__(self):
        if self.bits != 1:
            raise ValueError("FORMS/ISAAC drive inputs bit-serially: DAC is 1-bit")

    def convert(self, bits: np.ndarray) -> np.ndarray:
        """Map logical bits to word-line activation levels (0/1)."""
        bits = np.asarray(bits)
        if bits.size and not np.isin(bits, (0, 1)).all():
            raise ValueError("DAC input must be 0/1 bits")
        return bits.astype(np.float64)


@dataclass(frozen=True)
class ADCSpec:
    """Successive-approximation ADC digitizing fragment partial sums.

    ``bits`` follows the paper's fragment-size pairing: 3-bit for fragments
    of 4, 4-bit for 8, 5-bit for 16 (Sec. IV-C).  ``frequency_hz`` enters the
    timing model (2.1 GS/s for the 4-bit SAR ADC of [73]; 1.2 GS/s for
    ISAAC's 8-bit ADC).
    """

    bits: int = 4
    frequency_hz: float = 2.1e9

    def __post_init__(self):
        if self.bits < 1:
            raise ValueError("ADC needs at least 1 bit")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def max_code(self) -> int:
        return 2 ** self.bits - 1

    def convert(self, analog: np.ndarray) -> np.ndarray:
        """Round to the nearest code, saturating at the rails."""
        return np.clip(np.rint(np.asarray(analog)), 0, self.max_code).astype(np.int64)

    def digitize(self, analog: np.ndarray) -> "Tuple[np.ndarray, int]":
        """Convert plus rail accounting in one rounding pass.

        Returns ``(digital, saturated)`` where ``saturated`` counts samples
        clipped at either rail (overflow past full scale or underflow below
        zero).  Semantically ``convert`` + both-rail counting, but the
        engines call this on every kernel batch, so the rounded tensor is
        computed once and reused.
        """
        rounded = np.rint(np.asarray(analog))
        digital = np.clip(rounded, 0, self.max_code).astype(np.int64)
        saturated = int(np.count_nonzero(digital != rounded))
        return digital, saturated

    def saturation_fraction(self, analog: np.ndarray) -> float:
        """Fraction of samples clipped at either rail.

        Counts overflow past the full-scale code *and* underflow below zero
        — the negative rail is reachable whenever read noise or IR drop
        pushes the pedestal-corrected estimate negative.
        """
        analog = np.asarray(analog)
        if analog.size == 0:
            return 0.0
        rounded = np.rint(analog)
        return float(((rounded > self.max_code) | (rounded < 0)).mean())


def required_adc_bits(fragment_size: int, cell_bits: int) -> int:
    """Bits needed to represent the worst-case fragment partial sum exactly.

    One bit-serial cycle accumulates at most ``m * (2**cell_bits - 1)``.
    """
    if fragment_size < 1 or cell_bits < 1:
        raise ValueError("fragment_size and cell_bits must be >= 1")
    worst = fragment_size * (2 ** cell_bits - 1)
    return int(np.ceil(np.log2(worst + 1)))


def paper_adc_bits(fragment_size: int) -> int:
    """The paper's ADC sizing: 3/4/5 bits for fragments of 4/8/16 (Sec. IV-C).

    Note these are one bit *below* :func:`required_adc_bits` for 2-bit cells —
    the paper sizes for typical rather than worst-case sums; the resulting
    saturation is exactly what ``bench_ablation_adc_bits`` quantifies.
    """
    table = {4: 3, 8: 4, 16: 5}
    if fragment_size in table:
        return table[fragment_size]
    # Extrapolate the paper's log2 pattern outside the published points.
    return max(1, int(np.ceil(np.log2(fragment_size))) + 1)


@dataclass(frozen=True)
class SampleHold:
    """Sample-and-hold buffering a column current for ADC conversion.

    Behaviourally transparent; exists so the architecture model can attach
    area/power and so the signal path reads like Fig. 11.
    """

    def hold(self, currents: np.ndarray, copy: bool = True) -> np.ndarray:
        """Buffer a current batch.

        ``copy=False`` skips the defensive copy when the caller owns the
        array exclusively (the engines hand over freshly computed current
        tensors; copying them would be pure memory traffic).
        """
        held = np.asarray(currents, dtype=np.float64)
        return held.copy() if copy and held is currents else held

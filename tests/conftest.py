"""Shared fixtures for the test suite.

The expensive fixtures (trained models) are session-scoped; everything
downstream clones them rather than retraining.
"""

import numpy as np
import pytest

from repro.nn import Adam, LeNet5, evaluate, fit, set_init_seed, synthetic_mnist
from repro.nn.data import make_synthetic


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def mnist_small():
    """A small synthetic MNIST split shared across tests."""
    return synthetic_mnist(train_size=192, test_size=96, seed=7)


@pytest.fixture(scope="session")
def trained_lenet(mnist_small):
    """A LeNet-5 trained well above chance on the small MNIST stand-in."""
    train_set, test_set = mnist_small
    set_init_seed(7)
    model = LeNet5(num_classes=10, in_channels=1, image_size=16)
    fit(model, train_set, Adam(model.parameters(), lr=1e-3), epochs=4,
        batch_size=32, seed=7)
    accuracy = evaluate(model, test_set).accuracy
    assert accuracy > 0.5, f"fixture model failed to train ({accuracy:.2f})"
    return model


@pytest.fixture()
def tiny_dataset():
    """A fresh 3-class dataset for fast training tests."""
    return make_synthetic("tiny", num_classes=3, channels=1, size=8,
                          train_size=96, test_size=48, seed=11)

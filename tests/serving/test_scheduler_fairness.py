"""Weighted-fair scheduling: bulk progresses, strict starves — by design.

The fairness satellite.  Three layers:

* **queue-level**: a saturating interactive stream (refilled after every
  batch, so the high class is never empty) leaves bulk with *zero*
  dispatches under ``strict`` — the starvation hole, pinned here as the
  documented behavior — and with *nonzero* dispatches under
  ``weighted_fair``, in roughly the weight ratio;
* **aging**: a long-waiting bulk head earns credit faster, so even a
  tiny weight is dispatched within a bounded number of rounds;
* **bit-exactness**: the same submissions served under ``strict`` and
  ``weighted_fair`` produce byte-identical outputs, both equal to the
  serial single-image forward — arbitration is scheduling-only, the
  suite's rule.
"""

import time

import numpy as np
import pytest

from repro.perf.multitenant import mixed_policy
from repro.perf.suite import _post_relu_network
from repro.reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
from repro.runtime import run_network_serial
from repro.serving import (SLA_MODE_STRICT, SLA_MODE_WEIGHTED_FAIR,
                           SLA_MODES, InferenceServer, PriorityClass,
                           SlaPolicy, SlaQueue, SlaRequest)


def make_policy(mode, *, hi_weight=4.0, lo_weight=1.0, aging_s=0.05):
    return SlaPolicy((
        PriorityClass("interactive", max_batch=2, max_wait_s=0.0,
                      weight=hi_weight),
        PriorityClass("bulk", max_batch=2, max_wait_s=0.0,
                      weight=lo_weight),
    ), mode=mode, aging_s=aging_s)


def make_request(request_id, rank, policy, *, enqueue_t=None):
    cls = policy.classes[rank]
    request = SlaRequest(request_id=request_id, image=np.zeros(2),
                         model="m", class_rank=rank,
                         priority_class=cls.name, deadline_t=None,
                         deadline_s=None)
    if enqueue_t is not None:
        request.enqueue_t = enqueue_t
    return request


def saturate_and_count(mode, rounds=30):
    """Dispatch ``rounds`` batches while interactive never drains.

    After every batch the interactive class is refilled back to a
    standing backlog — the saturation scenario — while a fixed bulk
    backlog waits.  Returns per-class dispatch counts.
    """
    policy = make_policy(mode)
    queue = SlaQueue(policy)
    next_id = 0
    for _ in range(40):                      # the standing bulk backlog
        queue.put(make_request(next_id, 1, policy))
        next_id += 1
    counts = {"interactive": 0, "bulk": 0}
    for _ in range(rounds):
        while queue.depth_of("interactive") < 4:        # interactive never drains
            queue.put(make_request(next_id, 0, policy))
            next_id += 1
        batch = queue.get_batch()
        assert batch is not None
        for request in batch:
            counts[request.priority_class] += 1
    return counts


class TestModeSurface:
    def test_modes_constant(self):
        assert SLA_MODE_STRICT in SLA_MODES
        assert SLA_MODE_WEIGHTED_FAIR in SLA_MODES

    def test_default_mode_is_strict(self):
        policy = SlaPolicy((PriorityClass("only"),))
        assert policy.mode == SLA_MODE_STRICT

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SlaPolicy((PriorityClass("only"),), mode="round_robin")

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="weight"):
            PriorityClass("a", weight=0.0)
        with pytest.raises(ValueError, match="weight"):
            PriorityClass("a", weight=-1.0)

    def test_aging_validation(self):
        with pytest.raises(ValueError, match="aging"):
            SlaPolicy((PriorityClass("a"),),
                      mode=SLA_MODE_WEIGHTED_FAIR, aging_s=0.0)

    def test_mixed_policy_threads_mode_and_weights(self):
        policy = mixed_policy(mode=SLA_MODE_WEIGHTED_FAIR,
                              interactive_weight=7.0, bulk_weight=2.0)
        assert policy.mode == SLA_MODE_WEIGHTED_FAIR
        assert [cls.weight for cls in policy.classes] == [7.0, 2.0]


class TestSaturationFairness:
    def test_strict_starves_bulk_as_documented(self):
        """The pinned hole: under saturation, strict precedence serves
        interactive exclusively — bulk gets exactly nothing.  This is
        the documented behavior ``weighted_fair`` exists to fix."""
        counts = saturate_and_count(SLA_MODE_STRICT)
        assert counts["bulk"] == 0
        assert counts["interactive"] > 0

    def test_weighted_fair_keeps_bulk_progressing(self):
        """The fix: the same saturating load leaves bulk with nonzero
        service, and interactive still gets the lion's share."""
        counts = saturate_and_count(SLA_MODE_WEIGHTED_FAIR)
        assert counts["bulk"] > 0
        assert counts["interactive"] > counts["bulk"]

    def test_weighted_fair_ratio_tracks_weights(self):
        """Over many rounds the service ratio approaches the weight
        ratio (4:1 here) — loose bounds: DRR is exact only in the
        fluid limit."""
        counts = saturate_and_count(SLA_MODE_WEIGHTED_FAIR, rounds=60)
        ratio = counts["interactive"] / counts["bulk"]
        assert 2.0 <= ratio <= 8.0

    def test_idle_class_forfeits_credit(self):
        """Classic DRR: credit does not accumulate while a class has
        nothing queued, so a burst after idleness cannot monopolize."""
        policy = make_policy(SLA_MODE_WEIGHTED_FAIR)
        queue = SlaQueue(policy)
        # bulk idles while interactive is served repeatedly
        for i in range(8):
            queue.put(make_request(i, 0, policy))
        for _ in range(4):
            assert queue.get_batch() is not None
        # bulk arrives now; interactive still pending would win first
        # under any carried-over credit scheme in reverse — assert bulk
        # does not burst past the weight share
        for i in range(20, 40):
            queue.put(make_request(i, 1, policy))
        for i in range(40, 48):
            queue.put(make_request(i, 0, policy))
        served = {"interactive": 0, "bulk": 0}
        for _ in range(6):
            batch = queue.get_batch()
            for request in batch:
                served[request.priority_class] += 1
        assert served["interactive"] >= served["bulk"]


class TestAging:
    def test_old_bulk_head_dispatches_quickly(self):
        """A bulk head that has waited ≫ aging_s earns credit at a
        multiple of its weight: it must win within a few rounds even
        at a 100:1 weight disadvantage."""
        policy = SlaPolicy((
            PriorityClass("interactive", max_batch=1, max_wait_s=0.0,
                          weight=100.0),
            PriorityClass("bulk", max_batch=1, max_wait_s=0.0,
                          weight=1.0),
        ), mode=SLA_MODE_WEIGHTED_FAIR, aging_s=0.001)
        queue = SlaQueue(policy)
        old = time.monotonic() - 1.0   # head has waited 1000 aging units
        queue.put(make_request(0, 1, policy, enqueue_t=old))
        dispatched = []
        for i in range(1, 6):
            queue.put(make_request(i, 0, policy))
            batch = queue.get_batch()
            dispatched.extend(r.priority_class for r in batch)
            if "bulk" in dispatched:
                break
        assert "bulk" in dispatched


class TestModeBitExactness:
    """The matrix pattern: arbitration must be numerics-invisible."""

    @pytest.fixture(scope="class")
    def network_case(self):
        model, config, images = _post_relu_network()
        device = ReRAMDevice(DeviceSpec(), 0.0)
        adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
        return model, config, images, device, adc

    @pytest.mark.parametrize("mode", SLA_MODES)
    def test_outputs_equal_serial_under_both_modes(self, network_case,
                                                   mode):
        model, config, images, device, adc = network_case
        policy = SlaPolicy((
            PriorityClass("interactive", max_batch=2, max_wait_s=0.001,
                          weight=4.0),
            PriorityClass("bulk", max_batch=4, max_wait_s=0.002,
                          weight=1.0),
        ), mode=mode)
        with InferenceServer.from_model(
                model, config, device, adc=adc, activation_bits=12,
                workers=2, policy=policy) as server:
            futures = [server.submit_async(
                image, priority=("interactive" if i % 2 else "bulk"))
                for i, image in enumerate(images)]
            outputs = [future.result().output for future in futures]
            serial = run_network_serial(server.model, images, tile_size=1)
        for output, reference in zip(outputs, serial):
            np.testing.assert_array_equal(output, reference)

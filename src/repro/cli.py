"""Command-line experiment runner and serving demo.

Regenerate any paper table/figure from a shell::

    python -m repro table1 --scale fast
    python -m repro fig8 --scale standard
    python -m repro all --scale fast --out results/

``--scale`` selects an :class:`repro.analysis.ExperimentScale` preset
(fast / standard / full); ``--out`` saves each rendered table next to
printing it.

``serve`` runs the inference server against synthetic Poisson traffic
and prints per-request receipts plus the operational summary — a
self-checking demo of :mod:`repro.serving` (every output is asserted
bit-identical to the serial single-image path)::

    python -m repro serve --requests 24 --rate 200 --max-batch 4 --workers 2

With ``--models 2`` (or ``--priority-classes 2``) the demo switches to
the multi-tenant shape: two models registered on one shared pool, served
under the two-class SLA policy (interactive deadlines via
``--deadline-ms``, bulk latency bound, shedding receipts), plus a
cross-model die-dedup proof::

    python -m repro serve --models 2 --requests 32 --rate 400 --deadline-ms 50

``--chaos`` runs the fault-recovery demo: scripted stuck-at die faults
land on both tenants mid-traffic, the checksum guards detect them, the
server quarantines and re-programs the dies online and retries the
batches — every completed request asserted bit-identical to the
*pre-fault* serial forward, zero hung futures, recovery receipts
printed::

    python -m repro serve --chaos --requests 24 --rate 400

``--http PORT`` puts either demo server on a socket — the
:class:`repro.serving.HttpFrontend` wire protocol documented in
``docs/serving.md`` (``--http 0`` picks an ephemeral port) — and serves
until Ctrl-C, printing the walkthrough curl lines.  ``--http-demo``
instead replays ``--requests`` self-checking requests *through the
wire* (concurrent clients, mixed classes with ``--models 2``, every
decoded response asserted bit-identical to the in-process serial
forward), drains, and exits — the CI smoke::

    python -m repro serve --http 8100                 # curl me
    python -m repro serve --http 0 --http-demo --models 2 --requests 16

``--async`` swaps the threaded front end for the asyncio
:class:`repro.serving.AsyncFrontend` — same wire protocol plus SSE
streaming (``POST /v1/infer_batch?stream=1``) and connection /
inflight-byte backpressure — and ``--sla-mode weighted_fair`` switches
the scheduler to deficit-round-robin across the classes (scheduling
only; served bits are identical either way)::

    python -m repro serve --async --http 8100 --models 2 \
        --sla-mode weighted_fair
    python -m repro serve --async --http 0 --http-demo --requests 16

``--cluster N`` puts a sharded cluster behind the same wire protocol:
N subprocess replicas of the identical demo build under a
:class:`repro.serving.ClusterRouter` (consistent-hash placement with
``--cluster-replication`` preferred replicas per model, health-checked
failover, optional ``--hedge-ms`` hedged attempts, explicit
``cluster_unavailable`` receipts when every replica is down).  With
``--http-demo`` it runs the self-checking failover smoke instead: a
replica is SIGKILLed and restarted mid-traffic, and every completed
response is asserted bit-identical to the serial forward::

    python -m repro serve --cluster 3 --http 8100     # curl the router
    python -m repro serve --cluster 2 --http 0 --http-demo --requests 16
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict

from .analysis import (SCALES, ExperimentTable, eic_experiment, fig13, fig14,
                       fragment_size_sweep, table1, table2, table3, table4,
                       table5, table6)


def _dse_table(scale, seed) -> ExperimentTable:
    """Sec. IV-C cell-bits design-space sweep (see bench_ablation_cell_bits)."""
    from .arch.dse import cell_bits_sweep
    rows = []
    for rule in ("exact", "paper"):
        for ev in cell_bits_sweep(adc_rule=rule):
            rows.append([rule, ev.point.cell_bits, ev.point.adc_bits,
                         ev.gops_per_w, ev.gops_per_mm2,
                         ev.level_margin_sigmas, ev.variation_feasible])
    return ExperimentTable(
        "DSE: bits per cell (fragment 8)",
        ["ADC rule", "cell bits", "ADC bits", "GOPs/W", "GOPs/mm2",
         "margin (sigma)", "feasible"], rows)


def _irdrop_table(scale, seed) -> ExperimentTable:
    """IR-drop error vs activation granularity (see bench_ablation_nonideality)."""
    from .reram.nonideal import CellIV, WireModel, ir_drop_study
    points = ir_drop_study(rows=64, cols=8,
                           active_row_options=[4, 8, 16, 32, 64],
                           wire=WireModel(r_wire_ohm=2.5),
                           cell_iv=CellIV(nonlinearity=2.0), seed=seed)
    rows = [[p.active_rows, p.relative_error * 100.0] for p in points]
    return ExperimentTable(
        "IR drop: relative MVM error vs rows active per conversion",
        ["active rows", "error %"], rows)


#: experiment name -> (driver taking a scale, description)
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (lambda scale, seed: table1(scale, seed=seed),
               "compression on MNIST & CIFAR-10"),
    "table2": (lambda scale, seed: table2(scale, seed=seed),
               "compression on CIFAR-100 & ImageNet"),
    "table3": (lambda scale, seed: table3(8),
               "MCU component specs (FORMS vs ISAAC)"),
    "table4": (lambda scale, seed: table4(8),
               "chip-level power/area"),
    "table5": (lambda scale, seed: table5(scale, seed=seed),
               "peak throughput normalized to ISAAC"),
    "table6": (lambda scale, seed: table6(scale, seed=seed),
               "accuracy degradation under device variation"),
    "fig6": (lambda scale, seed: fragment_size_sweep(scale=scale, seed=seed),
             "accuracy vs fragment size"),
    "fig8": (lambda scale, seed: eic_experiment(scale=scale, seed=seed),
             "effective input cycles"),
    "fig13": (lambda scale, seed: fig13(scale, seed=seed),
              "FPS speedup on CIFAR-10"),
    "fig14": (lambda scale, seed: fig14(scale, seed=seed),
              "FPS speedup on CIFAR-100 & ImageNet"),
    "dse": (_dse_table, "bits-per-cell design-space sweep (Sec. IV-C)"),
    "irdrop": (_irdrop_table, "IR-drop error vs activation granularity"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate FORMS (ISCA 2021) evaluation tables/figures, "
                    "or demo the batching inference server ('serve').")
    choices = sorted(EXPERIMENTS) + ["all", "report", "serve"]
    parser.add_argument("experiment", choices=choices,
                        help="which artifact to regenerate ('report' builds "
                             "a combined markdown report of the fast ones; "
                             "'serve' runs the self-checking serving demo)")
    parser.add_argument("--scale", default="fast", choices=sorted(SCALES),
                        help="experiment scale preset (default: fast)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to save rendered tables into")
    serve = parser.add_argument_group("serve options")
    serve.add_argument("--requests", type=int, default=16,
                       help="number of synthetic requests (serve only)")
    serve.add_argument("--rate", type=float, default=200.0,
                       help="Poisson arrival rate in requests/s (serve only)")
    serve.add_argument("--max-batch", type=int, default=4,
                       help="batch coalescing cap (serve only)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="coalescing latency budget in ms (serve only)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker-pool size (serve only; default: "
                            "FORMS_WORKERS or CPU count)")
    serve.add_argument("--backend", default=None,
                       choices=("thread", "process"),
                       help="repro.runtime execution backend for the "
                            "serving pool: 'thread' shares one in-process "
                            "pool, 'process' fans tiles out to worker "
                            "processes over shared-memory planes — served "
                            "bits are identical either way (serve only; "
                            "default: FORMS_BACKEND or thread; not "
                            "compatible with --chaos, whose die guards "
                            "live in-process)")
    serve.add_argument("--models", type=int, default=1, choices=(1, 2),
                       help="number of tenant models: 2 selects the "
                            "multi-tenant SLA demo (serve only)")
    serve.add_argument("--priority-classes", type=int, default=None,
                       choices=(1, 2),
                       help="number of SLA classes (default: matches "
                            "--models; 2 selects the SLA demo)")
    serve.add_argument("--deadline-ms", type=float, default=50.0,
                       help="per-request deadline of the interactive "
                            "class in the SLA demo; <= 0 disables "
                            "(serve only)")
    serve.add_argument("--chaos", action="store_true",
                       help="run the fault-recovery demo: scripted stuck-at "
                            "die faults under mixed-tenant traffic, checksum "
                            "detection, online re-program, bounded retry — "
                            "self-checking (serve only)")
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="expose the demo server over HTTP on PORT "
                            "(0 = ephemeral) and serve until Ctrl-C; "
                            "wire protocol in docs/serving.md (serve only)")
    serve.add_argument("--http-demo", action="store_true",
                       help="with --http: replay --requests self-checking "
                            "requests through the wire, drain, and exit "
                            "instead of serving forever (serve only)")
    serve.add_argument("--http-host", default="127.0.0.1",
                       help="bind address for --http (default: loopback "
                            "only; serve only)")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="with --http: serve through the asyncio front "
                            "end instead of the threaded one — same wire "
                            "protocol plus SSE streaming "
                            "(POST /v1/infer_batch?stream=1) and "
                            "connection/inflight-byte backpressure; not "
                            "compatible with --cluster (serve only)")
    serve.add_argument("--sla-mode", choices=("strict", "weighted_fair"),
                       default="strict",
                       help="cross-class arbitration of the single-process "
                            "--http server: 'strict' is class precedence "
                            "(bulk can starve), 'weighted_fair' is "
                            "deficit-round-robin over the class weights "
                            "with aging — scheduling only, served bits are "
                            "identical (serve only)")
    serve.add_argument("--cluster", type=int, default=None, metavar="N",
                       help="with --http: serve through a cluster router "
                            "over N subprocess replicas (health-checked "
                            "failover, consistent-hash placement; with "
                            "--http-demo runs the SIGKILL/restart failover "
                            "smoke; serve only)")
    serve.add_argument("--cluster-replication", type=int, default=2,
                       metavar="R",
                       help="preferred replicas per model on the cluster's "
                            "hash ring (serve only; default 2)")
    serve.add_argument("--hedge-ms", type=float, default=None,
                       help="cluster router hedging delay in ms: fire a "
                            "duplicate attempt at the next replica when "
                            "the first answer is this late (default: off; "
                            "serve only)")
    serve.add_argument("--no-metrics", action="store_true",
                       help="disable the metrics registry and /metrics "
                            "exposition (tracing and usage metering stay "
                            "on; single-process serve only)")
    serve.add_argument("--trace-ring", type=int, default=256, metavar="N",
                       help="capacity of the /v1/trace/<id> ring: how many "
                            "recent request span trees stay queryable "
                            "(0 disables tracing; default 256; "
                            "single-process serve only)")
    return parser


def run(argv=None) -> int:
    args = build_parser().parse_args(argv)
    scale = SCALES[args.scale]
    if args.experiment == "serve":
        classes = (args.priority_classes if args.priority_classes is not None
                   else args.models)
        if args.http_demo and args.http is None:
            print("ERROR: --http-demo requires --http PORT", file=sys.stderr)
            return 2
        if args.trace_ring < 0:
            print("ERROR: --trace-ring must be >= 0 (0 disables tracing)",
                  file=sys.stderr)
            return 2
        if args.cluster is not None:
            if args.http is None:
                print("ERROR: --cluster requires --http PORT (the router's "
                      "bind port)", file=sys.stderr)
                return 2
            if args.cluster < 1:
                print("ERROR: --cluster needs at least one replica",
                      file=sys.stderr)
                return 2
            if args.use_async:
                print("ERROR: --async serves a single process; the cluster "
                      "router keeps the threaded front end (drop --async "
                      "or --cluster)", file=sys.stderr)
                return 2
        if args.use_async and args.http is None:
            print("ERROR: --async requires --http PORT (it is the wire "
                  "front end's event loop)", file=sys.stderr)
            return 2
        if args.backend == "process" and args.chaos:
            print("ERROR: --chaos needs the thread backend: its die guards "
                  "and fault injection instrument live engine objects, "
                  "which process workers never see", file=sys.stderr)
            return 2
        if args.backend == "process" and args.http is not None:
            print("ERROR: --http serves from the thread backend (the "
                  "cluster already isolates replicas as subprocesses); "
                  "drop --backend process", file=sys.stderr)
            return 2
        if args.chaos:
            if args.http is not None:
                print("ERROR: --chaos is an in-process demo; drop --http",
                      file=sys.stderr)
                return 2
            from .serving.demo import run_chaos_demo

            run_chaos_demo(requests=args.requests, rate_rps=args.rate,
                           workers=args.workers, seed=args.seed)
            return 0
        if args.http is not None:
            from .serving.demo import run_http_cli

            return run_http_cli(args)
        if args.models > 1 or classes > 1:
            from .serving.demo import run_multitenant_demo

            if (args.max_batch, args.max_wait_ms) != (4, 2.0):
                print("note: --max-batch/--max-wait-ms are FIFO knobs; "
                      "the SLA demo's classes carry their own coalescing "
                      "budgets (ignored here)")
            deadline = (args.deadline_ms if args.deadline_ms is not None
                        and args.deadline_ms > 0 else None)
            run_multitenant_demo(requests=args.requests, rate_rps=args.rate,
                                 deadline_ms=deadline, workers=args.workers,
                                 backend=args.backend, seed=args.seed)
            return 0
        from .serving.demo import run_demo

        run_demo(requests=args.requests, rate_rps=args.rate,
                 max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
                 workers=args.workers, backend=args.backend, seed=args.seed)
        return 0
    if args.experiment == "report":
        from .analysis.report import generate_report

        report = generate_report(scale=scale, seed=args.seed)
        print(report)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / "report.md").write_text(report)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        driver, description = EXPERIMENTS[name]
        print(f"== {name}: {description} (scale={scale.name}) ==")
        start = time.perf_counter()
        table = driver(scale, args.seed)
        elapsed = time.perf_counter() - start
        print(table.rendered)
        print(f"[{elapsed:.1f}s]\n")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(table.rendered + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run())

"""Optimizer and scheduler tests."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, StepLR
from repro.nn.layers import Parameter


def quadratic_grad(param, target=0.0):
    param.grad = 2.0 * (param.data - target)


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        quadratic_grad(p)
        opt.step()
        np.testing.assert_allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        quadratic_grad(p)
        opt.step()        # v = 2.0, p = 0.8
        quadratic_grad(p)
        opt.step()        # v = 0.9*2 + 1.6 = 3.4, p = 0.8 - 0.34
        np.testing.assert_allclose(p.data, [0.46], rtol=1e-6)

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.9])

    def test_skips_none_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        np.testing.assert_array_equal(p.data, [1.0])

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            quadratic_grad(p)
            opt.step()
        np.testing.assert_allclose(p.data, [0.0, 0.0], atol=1e-4)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestAdam:
    def test_first_step_magnitude(self):
        # With bias correction the first step is exactly lr * sign(grad).
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        np.testing.assert_allclose(p.data, [1.0 - 0.01], rtol=1e-5)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([4.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            quadratic_grad(p)
            opt.step()
        np.testing.assert_allclose(p.data, [0.0], atol=1e-3)

    def test_weight_decay_applied(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 10.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)


class TestStepLR:
    def test_decays_on_schedule(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.1)
        sched.step(); sched.step()
        np.testing.assert_allclose(opt.lr, 0.01)

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(SGD([Parameter(np.zeros(1))], lr=1.0), step_size=0)

"""MCU / tile / chip roll-up tests (Table IV)."""

import pytest

from repro.arch import (dadiannao_chip, forms_chip, forms_mcu, forms_tile,
                        isaac_chip, isaac_mcu, isaac_tile)


class TestMCUTiming:
    def test_isaac_cycle_time(self):
        # 128 columns / 1.2 GS/s = 106.7 ns (paper Sec. IV-C)
        assert isaac_mcu().cycle_time_s == pytest.approx(106.7e-9, rel=1e-2)

    def test_forms_cycle_time(self):
        # 32 columns / 2.1 GS/s = 15.2 ns
        assert forms_mcu(8).cycle_time_s == pytest.approx(15.24e-9, rel=1e-2)

    def test_row_groups(self):
        assert isaac_mcu().row_groups_per_crossbar == 1
        assert forms_mcu(8).row_groups_per_crossbar == 16
        assert forms_mcu(16).row_groups_per_crossbar == 8

    def test_full_mvm_times(self):
        # ISAAC: 16 bits x 106.7ns = 1707ns; FORMS-8: 16 groups x 16 x 15.24ns
        assert isaac_mcu().full_mvm_time_s(16) == pytest.approx(1707e-9, rel=1e-2)
        assert forms_mcu(8).full_mvm_time_s(16) == pytest.approx(3901e-9, rel=1e-2)

    def test_zero_skip_reduces_mvm_time(self):
        mcu = forms_mcu(8)
        assert mcu.full_mvm_time_s(10.7) < mcu.full_mvm_time_s(16)

    def test_fragment16_faster_but_not_double(self):
        # SAR frequency scaling makes m=16 ~1.5x faster than m=8, not 2x
        # (paper reports +42% for polarization-only throughput).
        ratio = forms_mcu(8).full_mvm_time_s(16) / forms_mcu(16).full_mvm_time_s(16)
        assert 1.3 < ratio < 1.7


class TestTile:
    def test_forms_tile_power(self):
        tile = forms_tile(8)
        assert tile.power_mw == pytest.approx(333.1, rel=1e-3)
        assert tile.mcus_power_mw == pytest.approx(280.05, rel=1e-3)

    def test_isaac_tile_power(self):
        assert isaac_tile().power_mw == pytest.approx(329.81, rel=1e-3)

    def test_bus_and_edram_doubled_in_forms(self):
        assert forms_tile().bus_bits == 2 * isaac_tile().bus_bits
        assert forms_tile().edram_kb == 2 * isaac_tile().edram_kb

    def test_crossbars_per_tile(self):
        assert forms_tile().crossbars == 96


class TestChip:
    def test_forms_chip_matches_table4(self):
        chip = forms_chip(8)
        assert chip.power_mw == pytest.approx(66360.8, rel=1e-3)
        assert chip.area_mm2 == pytest.approx(89.15, rel=2e-3)

    def test_isaac_chip_matches_table4(self):
        chip = isaac_chip()
        assert chip.power_mw == pytest.approx(65808.08, rel=1e-3)
        assert chip.area_mm2 == pytest.approx(85.09, rel=2e-3)

    def test_iso_area_claim(self):
        # paper: "almost the same power and area" — <0.1% power, <5% area.
        forms, isaac = forms_chip(8), isaac_chip()
        assert abs(forms.power_mw / isaac.power_mw - 1) < 0.01
        assert abs(forms.area_mm2 / isaac.area_mm2 - 1) < 0.05

    def test_crossbar_budget(self):
        assert isaac_chip().crossbars == 168 * 12 * 8

    def test_scaled_tiles(self):
        assert isaac_chip(tiles=2).crossbars == 2 * 96

    def test_summary_keys(self):
        summary = forms_chip().summary()
        assert set(summary) == {"tiles", "crossbars", "power_mw", "area_mm2"}

    def test_dadiannao_recorded(self):
        chip = dadiannao_chip()
        assert chip.power_mw == 19856.0
        assert chip.area_mm2 == 86.2
        assert chip.power_w == pytest.approx(19.856)
        assert "NFU x16" in chip.components

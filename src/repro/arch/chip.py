"""Chip design: tile mesh + HyperTransport links (paper Fig. 10, Table IV).

Both FORMS and ISAAC instantiate 168 tiles and four 1.6 GHz HyperTransport
serial links (6.4 GB/s).  The chip object exposes the total crossbar budget —
the resource the performance model allocates among network layers — and the
published power/area totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .tile import TileDesign, forms_tile, isaac_tile

#: HyperTransport link block shared by FORMS / ISAAC / DaDianNao (Table IV).
HYPERTRANSPORT_POWER_MW = 10400.0
HYPERTRANSPORT_AREA_MM2 = 22.88
HYPERTRANSPORT_BW_GBS = 6.4


@dataclass(frozen=True)
class ChipDesign:
    """A full accelerator chip."""

    name: str
    tile: TileDesign
    tiles: int = 168
    ht_power_mw: float = HYPERTRANSPORT_POWER_MW
    ht_area_mm2: float = HYPERTRANSPORT_AREA_MM2

    @property
    def tiles_power_mw(self) -> float:
        return self.tile.power_mw * self.tiles

    @property
    def tiles_area_mm2(self) -> float:
        return self.tile.area_mm2 * self.tiles

    @property
    def power_mw(self) -> float:
        return self.tiles_power_mw + self.ht_power_mw

    @property
    def power_w(self) -> float:
        return self.power_mw / 1e3

    @property
    def area_mm2(self) -> float:
        return self.tiles_area_mm2 + self.ht_area_mm2

    @property
    def crossbars(self) -> int:
        """Total physical crossbars — the allocation budget for layers."""
        return self.tile.crossbars * self.tiles

    def summary(self) -> Dict[str, float]:
        return {
            "tiles": self.tiles,
            "crossbars": self.crossbars,
            "power_mw": self.power_mw,
            "area_mm2": self.area_mm2,
        }


def forms_chip(fragment_size: int = 8, tiles: int = 168) -> ChipDesign:
    """The FORMS chip (Table IV: 66.36 W, 89.15 mm2 at fragment 8)."""
    return ChipDesign(name=f"FORMS-{fragment_size}",
                      tile=forms_tile(fragment_size), tiles=tiles)


def isaac_chip(tiles: int = 168) -> ChipDesign:
    """The ISAAC chip (Table IV: 65.81 W, 85.09 mm2)."""
    return ChipDesign(name="ISAAC", tile=isaac_tile(), tiles=tiles)


@dataclass(frozen=True)
class RecordedChip:
    """A chip whose totals come from its paper rather than a roll-up.

    Used for DaDianNao in Table IV (and by the Table V baselines): the FORMS
    paper itself takes these numbers from the literature.
    """

    name: str
    power_mw: float
    area_mm2: float
    components: Dict[str, Dict[str, float]]

    @property
    def power_w(self) -> float:
        return self.power_mw / 1e3


def dadiannao_chip() -> RecordedChip:
    """DaDianNao (digital) as recorded in Table IV.

    The published component rows do not sum exactly to the published chip
    total (19.856 W vs 20.06 W summed) — we keep the published total as
    authoritative, as the paper's table does.
    """
    return RecordedChip(
        name="DaDianNao",
        power_mw=19856.0,
        area_mm2=86.2,
        components={
            "NFU x16": {"power_mw": 4886.0, "area_mm2": 16.09},
            "eDRAM 36MB": {"power_mw": 4760.0, "area_mm2": 33.12},
            "global bus 128b": {"power_mw": 12.8, "area_mm2": 15.66},
            "HyperTransport": {"power_mw": HYPERTRANSPORT_POWER_MW,
                               "area_mm2": HYPERTRANSPORT_AREA_MM2},
        },
    )

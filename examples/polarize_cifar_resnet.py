"""Fragment polarization on ResNet-18 / CIFAR-10: sizes and policies.

The workload from the paper's motivation: a residual CNN whose weights must
land on ReRAM crossbars without doubling crossbars (PRIME) or paying offset
circuitry (ISAAC).  This example measures the two design axes of fragment
polarization (paper Sec. III-B, Figs. 3 and 6):

* **fragment size** — smaller fragments polarize with less accuracy damage
  (each constraint covers fewer weights) but imply more sub-arrays;
* **mapping policy** — W-major / H-major / C-major decide *which* weights
  must share a sign; the paper found C-major best on CIFAR.

Run:  python examples/polarize_cifar_resnet.py
"""

from dataclasses import replace

from repro.analysis import render_table
from repro.core import (ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline)
from repro.nn import Adam, build_model, evaluate, fit, set_init_seed, synthetic_cifar10
from repro.reram.variation import clone_model


def main() -> None:
    set_init_seed(1)
    train_set, test_set = synthetic_cifar10(train_size=384, test_size=192)
    model = build_model("resnet18", train_set.num_classes, 3,
                        train_set.image_size, width_mult=0.25, depth_scale=0.5)
    print("training ResNet-18 stand-in on synthetic CIFAR-10 ...")
    fit(model, train_set, Adam(model.parameters(), lr=1e-3), epochs=6,
        batch_size=32)
    baseline = evaluate(model, test_set).accuracy
    print(f"baseline accuracy: {baseline:.3f}\n")

    admm = ADMMConfig(iterations=2, epochs_per_iteration=1, retrain_epochs=2)
    base_config = FORMSConfig(crossbar=CrossbarShape(32, 32),
                              do_prune=False, do_quantize=False,
                              prune_admm=admm, polarize_admm=admm,
                              quantize_admm=admm)

    # ------------------------------------------------------------------
    # Fragment-size sweep (paper Fig. 6): polarization-only accuracy.
    # ------------------------------------------------------------------
    rows = []
    for m in (1, 4, 8, 16, 64):
        config = replace(base_config, fragment_size=m, policy="c")
        result = FORMSPipeline(config).optimize(clone_model(model),
                                                train_set, test_set)
        rows.append([m, result.final_accuracy * 100.0,
                     (baseline - result.final_accuracy) * 100.0])
    print(render_table(["fragment size", "accuracy %", "drop %"], rows,
                       title="Polarization-only accuracy vs fragment size (C-major)"))
    print()

    # ------------------------------------------------------------------
    # Policy comparison at the paper's design point (fragment 8).
    # ------------------------------------------------------------------
    rows = []
    for policy in ("w", "h", "c"):
        config = replace(base_config, fragment_size=8, policy=policy)
        result = FORMSPipeline(config).optimize(clone_model(model),
                                                train_set, test_set)
        rows.append([f"{policy}-major", result.final_accuracy * 100.0])
    print(render_table(["policy", "accuracy %"], rows,
                       title="Polarization mapping policy at fragment 8"))
    print("\n(paper: policies differ slightly; C-major won on CIFAR, "
          "W-major on ImageNet)")


if __name__ == "__main__":
    main()

"""Sharded serving cluster: router, replica directory, chaos harness.

The PR-7 layer over :mod:`repro.serving.http`: a
:class:`~.router.ClusterRouter` speaks the single-front-end wire
protocol to callers and fans out to N backend
:class:`~repro.serving.http.HttpFrontend` replicas, with
consistent-hash placement, health-checked failover, optional hedging
and explicit ``cluster_unavailable`` receipts
(operator guide: ``docs/serving.md``; diagram:
``docs/architecture.md`` §8).
"""

from .directory import (REPLICA_DOWN, REPLICA_SUSPECT, REPLICA_UP, HashRing,
                        ReplicaDirectory)
from .replicas import (READY_TIMEOUT_S, ClusterHarness, ReplicaProcess,
                       free_port)
from .router import (RETRYABLE_503_CODES, ClusterRouter, RouterStats,
                     RoutingPolicy)

__all__ = [
    "REPLICA_UP", "REPLICA_SUSPECT", "REPLICA_DOWN",
    "HashRing", "ReplicaDirectory",
    "RETRYABLE_503_CODES", "RoutingPolicy", "RouterStats", "ClusterRouter",
    "READY_TIMEOUT_S", "free_port", "ReplicaProcess", "ClusterHarness",
]

"""Workload extraction and transfer tests."""

import numpy as np
import pytest

from repro.arch import LayerWorkload, NetworkWorkload, extract_workload
from repro.arch.workload import trace_dimensions, transfer_measurements
from repro.core.zero_skip import EICStats
from repro.nn import (Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential,
                      set_init_seed)
from repro.nn.data import make_synthetic


@pytest.fixture(scope="module")
def traced():
    set_init_seed(13)
    model = Sequential(Conv2d(1, 4, 3, padding=1), ReLU(), MaxPool2d(2),
                       Conv2d(4, 6, 3, padding=1), ReLU(),
                       Flatten(), Linear(6 * 4 * 4, 5))
    train, _ = make_synthetic("w", 5, 1, 8, 16, 8, seed=13)
    workload = extract_workload(model, train, fragment_sizes=(4, 8),
                                sample_images=4)
    return model, workload


class TestExtractWorkload:
    def test_layer_dimensions(self, traced):
        _, workload = traced
        conv1, conv2, linear = workload.layers
        assert conv1.rows == 9 and conv1.cols == 4
        assert conv2.rows == 36 and conv2.cols == 6
        assert linear.rows == 96 and linear.cols == 5
        assert conv1.kind == "conv" and linear.kind == "linear"

    def test_positions_per_image(self, traced):
        _, workload = traced
        conv1, conv2, linear = workload.layers
        assert conv1.positions_per_image == 64    # 8x8
        assert conv2.positions_per_image == 16    # pooled to 4x4
        assert linear.positions_per_image == 1

    def test_macs(self, traced):
        _, workload = traced
        conv1 = workload.layers[0]
        assert conv1.dense_macs_per_image == 9 * 4 * 64
        assert workload.total_dense_macs == sum(
            l.dense_macs_per_image for l in workload.layers)

    def test_eic_stats_present(self, traced):
        _, workload = traced
        for layer in workload.layers:
            for m in (4, 8):
                assert isinstance(layer.eic_stats[m], EICStats)
        assert 1.0 <= workload.average_eic(4) <= 16.0

    def test_eic_monotone_in_fragment_size(self, traced):
        _, workload = traced
        assert workload.average_eic(4) <= workload.average_eic(8) + 1e-9

    def test_average_eic_fallback(self):
        layer = LayerWorkload("x", "conv", 8, 4, 8, 4, 10)
        assert layer.average_eic(4, total_bits=16) == 16.0

    def test_prune_ratio_dense(self, traced):
        _, workload = traced
        assert workload.prune_ratio == pytest.approx(1.0)


class TestTraceDimensions:
    def test_matches_extracted_dims(self, traced):
        model, workload = traced
        dims = trace_dimensions(model, channels=1, image_size=8)
        for a, b in zip(dims.layers, workload.layers):
            assert (a.rows, a.cols, a.positions_per_image) == \
                   (b.rows, b.cols, b.positions_per_image)

    def test_live_equals_dense(self, traced):
        model, _ = traced
        dims = trace_dimensions(model, channels=1, image_size=8)
        for layer in dims.layers:
            assert layer.live_rows == layer.rows
            assert layer.live_cols == layer.cols


class TestTransferMeasurements:
    def test_ratios_and_eic_grafted(self, traced):
        model, measured = traced
        # prune the measured workload artificially
        for layer in measured.layers:
            layer.live_rows = max(1, layer.rows // 2)
            layer.live_cols = max(1, layer.cols // 2)
        dims = trace_dimensions(model, channels=1, image_size=8)
        merged = transfer_measurements(dims, measured)
        for layer, src in zip(merged.layers, measured.layers):
            assert layer.live_rows == pytest.approx(layer.rows * src.live_rows / src.rows, abs=1)
            assert layer.eic_stats == src.eic_stats
        assert merged.prune_ratio > 1.5

    def test_depth_mismatch_maps_by_relative_position(self, traced):
        model, measured = traced
        dims = trace_dimensions(model, channels=1, image_size=8)
        short = NetworkWorkload("short", "d", [measured.layers[0], measured.layers[-1]])
        merged = transfer_measurements(dims, short)
        assert len(merged.layers) == len(dims.layers)

    def test_empty_source_rejected(self, traced):
        model, _ = traced
        dims = trace_dimensions(model, channels=1, image_size=8)
        with pytest.raises(ValueError):
            transfer_measurements(dims, NetworkWorkload("e", "d", []))

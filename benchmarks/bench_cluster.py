#!/usr/bin/env python
"""Cluster chaos benchmark: SIGKILL replicas under live router traffic.

Boots N subprocess replicas of the identical demo build behind a
:class:`~repro.serving.ClusterRouter`, replays open-loop Poisson
``POST /v1/infer`` arrivals through the router at several offered rates
while a killer thread SIGKILLs the interactive tenant's primary replica
mid-traffic (and restarts it on the same port), and records one
``"cluster"`` record per rate into ``BENCH_engine.json`` — failover /
hedge / receipt accounting next to the round-trip percentiles, merged so
the engine, serving and chaos recorders' records are preserved (schema
in ``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke    # < 60 s
    PYTHONPATH=src python benchmarks/bench_cluster.py            # full curve
    PYTHONPATH=src python benchmarks/bench_cluster.py \\
        --rates 100 800 --requests 48 --replicas 3 -o /tmp/cluster.json

Every rate point asserts — before anything is recorded — that every
completed response is bit-identical to the parent's serial single-image
forward of the same deterministic build, that every request resolves
within a bounded wait (zero hung requests), that every failure is a
documented receipt (``shed`` / ``cluster_unavailable``), and that the
killed replica rejoined the directory after restart.  Exits non-zero if
any assertion fails or if fewer than two rate points were recorded.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf import (merge_records_into_file,  # noqa: E402
                        run_cluster_point)

#: offered arrival rates (requests/s) per mode — light load and
#: saturation, so failover cost is readable at both ends of the curve
SMOKE_RATES = (50.0, 400.0)
FULL_RATES = (25.0, 100.0, 400.0, 1600.0)


def format_point(record: dict) -> str:
    results, meta = record["results"], record["meta"]
    return (f"{record['name']:22s} offered {results['offered_rate_rps']:6.0f}"
            f" rps -> served {results['throughput_rps']:6.1f} rps "
            f"(rtt p95 {results['rtt_p95_s'] * 1e3:7.2f} ms); "
            f"{results['kills']} kill(s) -> "
            f"{results['router_failovers']} failovers, "
            f"{results['requests_completed']} completed / "
            f"{results['requests_shed']} receipts "
            f"({meta['replicas']} replicas, "
            f"hedge={'off' if meta['hedge_delay_s'] is None else meta['hedge_delay_s']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: two rate points, fewer requests")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="offered arrival rates in requests/s "
                             "(default: two smoke points / four full points)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per rate point (default 12 smoke / 48)")
    parser.add_argument("--replicas", type=int, default=2,
                        help="backend replica processes per point")
    parser.add_argument("--replication", type=int, default=2,
                        help="preferred replicas per model on the hash ring")
    parser.add_argument("--kills", type=int, default=1,
                        help="replicas to SIGKILL mid-traffic per point")
    parser.add_argument("--no-restart", action="store_true",
                        help="leave killed replicas dead (default: restart "
                             "them on the same port mid-run)")
    parser.add_argument("--hedge-ms", type=float, default=None,
                        help="hedged-request delay in ms (default: off)")
    parser.add_argument("--interactive-fraction", type=float, default=0.4,
                        help="fraction of traffic in the interactive class")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker threads per replica process")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_engine.json",
                        help="BENCH json to merge records into (default: "
                             "BENCH_engine.json at the repo root)")
    args = parser.parse_args(argv)

    rates = args.rates if args.rates is not None else (
        list(SMOKE_RATES) if args.smoke else list(FULL_RATES))
    requests = args.requests if args.requests is not None else (
        12 if args.smoke else 48)
    if len(rates) < 2:
        print("ERROR: need at least two arrival-rate points for a curve",
              file=sys.stderr)
        return 1

    records = []
    for rate in rates:
        record = run_cluster_point(
            rate, requests, replicas=args.replicas,
            replication=args.replication, kills=args.kills,
            restart=not args.no_restart,
            hedge_delay_s=(args.hedge_ms / 1e3
                           if args.hedge_ms is not None else None),
            interactive_fraction=args.interactive_fraction,
            workers=args.workers, seed=args.seed)
        print(format_point(record))
        records.append(record)

    try:
        merge_records_into_file(args.output, records)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    print(f"[{len(records)} cluster records merged into {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

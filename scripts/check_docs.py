#!/usr/bin/env python
"""Docs drift gate: the top-level docs must exist and cover every package.

Fails (exit 1) unless ``README.md`` and ``docs/architecture.md`` both
exist and each mentions every package directory under ``src/repro/*`` as
a qualified name (``repro.<package>`` or ``repro/<package>`` — a bare
substring would be vacuously satisfied for short names like ``nn`` or
``core``) — so adding a package without documenting it fails the check
set the same way a broken test would.  Run by ``scripts/checks.sh``.
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REQUIRED_DOCS = ("README.md", "docs/architecture.md")


def packages() -> list:
    src = REPO_ROOT / "src" / "repro"
    return sorted(p.name for p in src.iterdir()
                  if p.is_dir() and (p / "__init__.py").exists())


def main() -> int:
    names = packages()
    if not names:
        print("ERROR: no packages found under src/repro", file=sys.stderr)
        return 1
    failures = []
    for rel in REQUIRED_DOCS:
        path = REPO_ROOT / rel
        if not path.exists():
            failures.append(f"{rel}: missing")
            continue
        text = path.read_text(encoding="utf-8")
        missing = [name for name in names
                   if not re.search(rf"\brepro[./]{re.escape(name)}\b", text)]
        if missing:
            failures.append(f"{rel}: no mention of package(s) "
                            f"{', '.join(missing)}")
    if failures:
        for failure in failures:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    print(f"docs check: {len(REQUIRED_DOCS)} docs cover "
          f"{len(names)} packages ({', '.join(names)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

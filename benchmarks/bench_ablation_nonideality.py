"""Ablation — IR-drop error vs activation granularity (fine vs coarse).

The paper's architectural argument (Secs. I, II-C, IV-B): fine-grained
sub-arrays are "less susceptible to non-idealities and noise" than
coarse-grained designs.  This bench quantifies it with the exact resistive-
network solver of :mod:`repro.reram.nonideal`: one 64x8 crossbar with
realistic wire parasitics and a nonlinear (sinh-type) cell I-V, read either
a fragment at a time (FORMS: 4/8/16 rows per conversion) or in larger groups
up to all rows at once (ISAAC).  Expected shape: relative MVM error grows
monotonically with the activation granularity, and the FORMS operating
points sit several times below the coarse-grained point.

The linear-cell control row demonstrates the superposition counterpoint
documented in the module: without cell nonlinearity, granularity is
irrelevant — the mechanism behind the paper's claim really is the cells'
operating-point shift, not the wiring alone.
"""

from functools import partial

from repro.analysis import ExperimentTable
from repro.reram.nonideal import (LINEAR_CELL, CellIV, WireModel,
                                  ir_drop_study)
from repro.runtime import parallel_map, resolve_workers

GRANULARITIES = [4, 8, 16, 32, 64]


def _run_cell_study(cell, *, wire, seed):
    """One cell model's IR-drop study (module-level: pickles onto the
    process backend)."""
    return ir_drop_study(rows=64, cols=8, active_row_options=GRANULARITIES,
                         wire=wire, cell_iv=cell, seed=seed)


def run_study(seed: int = 0, workers: int = None, backend: str = None):
    wire = WireModel(r_wire_ohm=2.5)
    # The nonlinear and linear-control studies are independent solves.
    nonlinear, linear = parallel_map(
        partial(_run_cell_study, wire=wire, seed=seed),
        (CellIV(nonlinearity=2.0), LINEAR_CELL),
        workers=resolve_workers(workers), backend=backend)
    rows = []
    for nl, li in zip(nonlinear, linear):
        rows.append([nl.active_rows, nl.relative_error * 100.0,
                     li.relative_error * 100.0])
    table = ExperimentTable(
        "Ablation: IR-drop MVM error vs rows active per conversion "
        "(64x8 crossbar, r_wire=2.5 Ohm)",
        ["active rows", "error % (nonlinear cells)", "error % (linear cells)"],
        rows)
    table.extras["nonlinear"] = {p.active_rows: p.relative_error
                                 for p in nonlinear}
    table.extras["linear"] = {p.active_rows: p.relative_error for p in linear}
    return table


def test_ablation_nonideality(benchmark, save_table):
    result = benchmark.pedantic(run_study, rounds=1, iterations=1)
    save_table("ablation_nonideality", result)
    benchmark.extra_info["table"] = result.rendered
    errors = result.extras["nonlinear"]
    # Monotone in granularity, and FORMS' fragment-8 point is well below the
    # coarse 64-row read.
    ordered = [errors[m] for m in GRANULARITIES]
    assert ordered == sorted(ordered)
    assert errors[8] < errors[64] / 2
    # Superposition control: linear-cell error is granularity-independent.
    linear = result.extras["linear"]
    spread = max(linear.values()) - min(linear.values())
    assert spread < 1e-9

"""ServerStats aggregation and RequestStats receipts."""

import threading

import numpy as np
import pytest

from repro.serving import (SHED_ADMISSION, SHED_DEADLINE, SHED_LATENCY_BOUND,
                           RequestStats, ServerStats, ShedReceipt)


def receipt(i, latency, wait=0.0, model="default", cls="default"):
    return RequestStats(request_id=i, batch_id=0, batch_size=1,
                        queue_wait_s=wait, service_s=latency - wait,
                        latency_s=latency, engine_stats={"conversions": 10},
                        model=model, priority_class=cls)


def shed(i, reason=SHED_DEADLINE, model="default", cls="default"):
    return ShedReceipt(request_id=i, model=model, priority_class=cls,
                       reason=reason, queue_wait_s=0.01, deadline_s=0.05)


class TestServerStats:
    def test_percentiles_match_numpy(self):
        stats = ServerStats()
        latencies = [0.001 * (i + 1) for i in range(20)]
        for i, latency in enumerate(latencies):
            stats.record_request(receipt(i, latency))
        snap = stats.snapshot()
        assert snap["latency_p50_s"] == float(np.percentile(latencies, 50))
        assert snap["latency_p95_s"] == float(np.percentile(latencies, 95))
        assert snap["latency_max_s"] == max(latencies)
        assert stats.latency_percentile(50) == snap["latency_p50_s"]

    def test_batch_mix_and_occupancy(self):
        stats = ServerStats()
        stats.record_batch(2, 0.010)
        stats.record_batch(4, 0.030)
        snap = stats.snapshot()
        assert snap["batches_formed"] == 2
        assert snap["mean_batch_size"] == 3.0
        assert snap["max_batch_size"] == 4
        # occupancy = busy_s / wall_s; the wall clock here is artificial,
        # so only the bookkeeping (busy time accumulated) is asserted
        assert snap["occupancy"] * snap["elapsed_s"] == pytest.approx(0.040)

    def test_queue_wait_aggregates(self):
        stats = ServerStats()
        for i, wait in enumerate([0.001, 0.003]):
            stats.record_request(receipt(i, wait + 0.01, wait=wait))
        snap = stats.snapshot(queue_depth=5)
        assert snap["queue_wait_mean_s"] == 0.002
        assert snap["queue_depth"] == 5
        assert snap["requests_completed"] == 2

    def test_empty_snapshot_is_zeroed(self):
        snap = ServerStats().snapshot()
        assert snap["requests_completed"] == 0
        assert snap["latency_p50_s"] == 0.0
        assert snap["throughput_rps"] == 0.0
        assert snap["mean_batch_size"] == 0.0
        assert "queue_depth" not in snap

    def test_distribution_window_is_bounded(self):
        """Counters stay exact; percentile memory is capped at `window`."""
        stats = ServerStats(window=8)
        for i in range(50):
            stats.record_request(receipt(i, 0.001 * (i + 1)))
        snap = stats.snapshot()
        assert snap["requests_completed"] == 50
        assert len(stats._latencies) == 8
        # percentiles now reflect the most recent 8 requests only
        recent = [0.001 * (i + 1) for i in range(42, 50)]
        assert snap["latency_p50_s"] == float(np.percentile(recent, 50))
        with pytest.raises(ValueError):
            ServerStats(window=0)

    def test_failures_counted(self):
        stats = ServerStats()
        stats.record_failure(3)
        assert stats.snapshot()["requests_failed"] == 3

    def test_receipt_as_dict_round_trips(self):
        r = receipt(7, 0.02, wait=0.005)
        d = r.as_dict()
        assert d["request_id"] == 7
        assert d["latency_s"] == 0.02
        assert d["engine_stats"] == {"conversions": 10}
        assert d["model"] == "default"
        assert d["priority_class"] == "default"
        assert d["deadline_s"] is None
        d["engine_stats"]["conversions"] = 0   # copy, not a view
        assert r.engine_stats["conversions"] == 10


class TestGroupedStats:
    def test_per_class_and_per_model_percentiles(self):
        stats = ServerStats()
        hi = [0.001 * (i + 1) for i in range(10)]
        lo = [0.010 * (i + 1) for i in range(10)]
        for i, latency in enumerate(hi):
            stats.record_request(receipt(i, latency, cls="hi", model="fast"))
        for i, latency in enumerate(lo):
            stats.record_request(receipt(100 + i, latency, cls="lo",
                                         model="batch"))
        snap = stats.snapshot()
        assert snap["per_class"]["hi"]["completed"] == 10
        assert snap["per_class"]["hi"]["latency_p50_s"] == float(
            np.percentile(hi, 50))
        assert snap["per_class"]["lo"]["latency_p95_s"] == float(
            np.percentile(lo, 95))
        assert snap["per_model"]["fast"]["completed"] == 10
        assert snap["per_model"]["batch"]["latency_p50_s"] == float(
            np.percentile(lo, 50))

    def test_shed_accounting(self):
        stats = ServerStats()
        stats.record_shed(shed(0, SHED_DEADLINE, cls="hi", model="fast"))
        stats.record_shed(shed(1, SHED_LATENCY_BOUND, cls="lo",
                               model="batch"))
        stats.record_shed(shed(2, SHED_LATENCY_BOUND, cls="lo",
                               model="batch"))
        snap = stats.snapshot()
        assert snap["requests_shed"] == 3
        assert snap["shed_by_reason"] == {SHED_DEADLINE: 1,
                                          SHED_LATENCY_BOUND: 2}
        assert snap["per_class"]["hi"]["shed"] == 1
        assert snap["per_class"]["lo"]["shed"] == 2
        assert snap["per_model"]["batch"]["shed"] == 2
        # shed-only groups still produce guarded (zero) percentiles
        assert snap["per_class"]["lo"]["latency_p95_s"] == 0.0

    def test_empty_and_zero_duration_windows_are_guarded(self):
        """The satellite guard: a snapshot taken before any request
        completes — or a shed-only / empty group — must return zeros,
        never divide by zero or reduce an empty array."""
        stats = ServerStats()
        snap = stats.snapshot(queue_depth=0)
        assert snap["latency_p50_s"] == 0.0
        assert snap["latency_p95_s"] == 0.0
        assert snap["latency_max_s"] == 0.0
        assert snap["queue_wait_mean_s"] == 0.0
        assert snap["queue_wait_p95_s"] == 0.0
        assert snap["occupancy"] == 0.0
        assert snap["throughput_rps"] == 0.0
        assert snap["mean_batch_size"] == 0.0
        assert snap["per_class"] == {}
        assert snap["per_model"] == {}
        assert stats.latency_percentile(95) == 0.0
        assert stats.occupancy() == 0.0
        # a shed recorded before any completion: groups exist, but their
        # distributions are empty — still no crash
        stats.record_shed(shed(0))
        snap = stats.snapshot()
        assert snap["per_class"]["default"]["latency_p50_s"] == 0.0
        assert snap["per_class"]["default"]["queue_wait_p95_s"] == 0.0

    def test_group_windows_are_bounded(self):
        stats = ServerStats(window=4)
        for i in range(20):
            stats.record_request(receipt(i, 0.001 * (i + 1), cls="hi"))
        snap = stats.snapshot()
        assert snap["per_class"]["hi"]["completed"] == 20
        recent = [0.001 * (i + 1) for i in range(16, 20)]
        assert snap["per_class"]["hi"]["latency_p50_s"] == float(
            np.percentile(recent, 50))


class TestConcurrentMutation:
    """ServerStats under fire: N threads mutate while a reader snapshots.

    The scrape hooks added in the observability PR read these gauges from
    outside the batcher thread, so the aggregator's one-lock design is now
    load-bearing for more than the dispatch loop.  Invariants pinned:
    snapshots are internally consistent (the shed total always equals the
    sum of its by-reason and per-class decompositions, even mid-burst) and
    the monotone counters never move backwards between successive reads.
    """

    THREADS = 6
    PER_THREAD = 300
    REASONS = (SHED_DEADLINE, SHED_LATENCY_BOUND, SHED_ADMISSION)

    def test_snapshots_stay_consistent_and_monotone(self):
        stats = ServerStats(window=64)
        start = threading.Barrier(self.THREADS + 1)

        def writer(worker_id):
            cls = f"class-{worker_id % 2}"
            start.wait()
            for i in range(self.PER_THREAD):
                stats.record_request(receipt(worker_id * 1000 + i,
                                             0.002 + 0.0001 * i, cls=cls,
                                             model=f"m{worker_id % 3}"))
                stats.record_shed(shed(worker_id * 1000 + i,
                                       self.REASONS[i % 3], cls=cls,
                                       model=f"m{worker_id % 3}"))
                stats.record_batch(2, 0.001)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        start.wait()
        previous = {"requests_completed": 0, "requests_shed": 0,
                    "batches_formed": 0}
        snapshots = 0
        while any(thread.is_alive() for thread in threads):
            snap = stats.snapshot(queue_depth=0)
            snapshots += 1
            for key, floor in previous.items():
                assert snap[key] >= floor, f"{key} moved backwards"
                previous[key] = snap[key]
            # one lock guards every decomposition, so each snapshot's
            # totals must agree with their own breakdowns exactly
            assert snap["requests_shed"] == \
                sum(snap["shed_by_reason"].values())
            assert snap["requests_shed"] == \
                sum(group["shed"] for group in snap["per_class"].values())
            assert snap["requests_completed"] == \
                sum(group["completed"]
                    for group in snap["per_class"].values())
        for thread in threads:
            thread.join()
        total = self.THREADS * self.PER_THREAD
        final = stats.snapshot()
        assert snapshots >= 1
        assert final["requests_completed"] == total
        assert final["requests_shed"] == total
        assert final["batches_formed"] == total
        assert sorted(final["shed_by_reason"]) == sorted(set(self.REASONS))
        assert final["max_batch_size"] == 2
        assert final["occupancy"] * final["elapsed_s"] == pytest.approx(
            total * 0.001)

"""Resilience plumbing of the HTTP layer: Retry-After, trace ids, drains.

Three contracts, all client-visible:

* every 503 carries a ``Retry-After`` header (``%g`` seconds) plus the
  ``"retry_after_s"`` JSON mirror inside the error object, and the
  retrying client sleeps the server's hint instead of its own backoff;
* every response echoes an ``X-Request-Id`` — the caller's when valid,
  a freshly minted one otherwise — and the id rides the scheduler into
  receipts (``stats["trace_id"]``) and error bodies (``error.trace_id``);
* a draining shutdown racing concurrent ``POST /v1/infer_batch``
  submissions resolves every request within a bounded wait: served
  bit-exactly or refused with a documented receipt, never a hang.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.serving import (DEFAULT_RETRY_AFTER_S, HttpClient, HttpError,
                           HttpFrontend, InferenceServer, ModelRegistry)
from repro.serving.http import _TRACE_ID_RE, new_trace_id


def linear_network(scale, shift):
    def network(tensor):
        return Tensor(tensor.data.reshape(tensor.data.shape[0], -1)
                      * scale + shift)
    return network


def make_frontend(*, delay=0.0, **frontend_kwargs):
    registry = ModelRegistry(workers=1)

    def network(tensor):
        if delay:
            time.sleep(delay)
        return Tensor(tensor.data.reshape(tensor.data.shape[0], -1) * 2.0)

    registry.register_network("toy", network)
    server = InferenceServer(registry=registry, max_batch=2, max_wait_s=0.0)
    return HttpFrontend(server, owns_server=True,
                        **frontend_kwargs).start()


def raw_request(frontend, method, path, *, body=None, headers=None):
    """One raw round trip exposing the response *headers* (HttpClient
    decodes bodies only)."""
    connection = http.client.HTTPConnection(frontend.host, frontend.port,
                                            timeout=10.0)
    try:
        payload = None if body is None else json.dumps(body).encode()
        base = {"Content-Type": "application/json"} if payload else {}
        base.update(headers or {})
        connection.request(method, path, body=payload, headers=base)
        response = connection.getresponse()
        decoded = json.loads(response.read().decode())
        return response.status, dict(response.getheaders()), decoded
    finally:
        connection.close()


class TestRetryAfterHeader:
    def test_503_carries_header_and_json_mirror(self):
        frontend = make_frontend()
        try:
            frontend._draining = True   # deterministic 503, socket still up
            status, headers, payload = raw_request(
                frontend, "POST", "/v1/infer", body={"input": [1.0]})
        finally:
            frontend._draining = False
            frontend.shutdown()
        assert status == 503
        assert payload["error"]["code"] == "shutting_down"
        assert headers["Retry-After"] == f"{DEFAULT_RETRY_AFTER_S:g}"
        assert payload["error"]["retry_after_s"] == DEFAULT_RETRY_AFTER_S

    def test_hint_is_configurable(self):
        frontend = make_frontend(retry_after_s=1.5)
        try:
            frontend._draining = True
            status, headers, payload = raw_request(
                frontend, "POST", "/v1/infer", body={"input": [1.0]})
        finally:
            frontend._draining = False
            frontend.shutdown()
        assert status == 503
        assert headers["Retry-After"] == "1.5"
        assert payload["error"]["retry_after_s"] == 1.5

    def test_hint_is_disableable(self):
        frontend = make_frontend(retry_after_s=None)
        try:
            frontend._draining = True
            status, headers, payload = raw_request(
                frontend, "POST", "/v1/infer", body={"input": [1.0]})
        finally:
            frontend._draining = False
            frontend.shutdown()
        assert status == 503
        assert "Retry-After" not in headers
        assert "retry_after_s" not in payload["error"]

    def test_success_carries_no_hint(self):
        frontend = make_frontend()
        try:
            status, headers, _ = raw_request(frontend, "GET", "/healthz")
        finally:
            frontend.shutdown()
        assert status == 200
        assert "Retry-After" not in headers

    def test_validation(self):
        with pytest.raises(ValueError):
            make_frontend(retry_after_s=-0.1)


class ScriptedTransport:
    """Plays back scripted ``(status, payload)`` / exception outcomes
    through the 3-positional ``HttpClient.request`` signature."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def __call__(self, method, path, body=None):
        self.calls.append((method, path))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestClientHonorsRetryAfter:
    HINTED = (503, {"error": {"code": "shutting_down",
                              "retry_after_s": 0.07}})
    BARE = (503, {"error": {"code": "shutting_down"}})
    OK = (200, {"queue_depth": 0})

    @staticmethod
    def fresh_client():
        return HttpClient("localhost", 1, retries=3, backoff_s=1e-3,
                          backoff_cap_s=1e-3, backoff_seed=0)

    def retrying_client(self, monkeypatch, *outcomes):
        client = self.fresh_client()
        client.request = ScriptedTransport(outcomes)
        sleeps = []
        from repro.serving import http as http_module
        monkeypatch.setattr(http_module.time, "sleep", sleeps.append)
        return client, sleeps

    def test_server_hint_replaces_computed_backoff(self, monkeypatch):
        client, sleeps = self.retrying_client(monkeypatch,
                                              self.HINTED, self.OK)
        assert client.stats() == self.OK[1]
        assert sleeps == [0.07]

    def test_without_hint_the_backoff_schedule_applies(self, monkeypatch):
        client, sleeps = self.retrying_client(monkeypatch,
                                              self.BARE, self.OK)
        assert client.stats() == self.OK[1]
        # same seed, fresh jitter stream -> the schedule's first draw
        assert sleeps == [self.fresh_client().backoff_delay(0)]

    def test_junk_hints_are_ignored(self, monkeypatch):
        for junk in (True, -1.0, "soon", None):
            hinted = (503, {"error": {"code": "shutting_down",
                                      "retry_after_s": junk}})
            client, sleeps = self.retrying_client(monkeypatch,
                                                  hinted, self.OK)
            client.stats()
            assert sleeps == [self.fresh_client().backoff_delay(0)]


class TestTraceIdPropagation:
    def test_valid_supplied_id_is_echoed(self):
        frontend = make_frontend()
        try:
            _, headers, _ = raw_request(frontend, "GET", "/healthz",
                                        headers={"X-Request-Id": "req-42"})
        finally:
            frontend.shutdown()
        assert headers["X-Request-Id"] == "req-42"

    def test_missing_or_invalid_id_gets_minted(self):
        frontend = make_frontend()
        try:
            _, bare, _ = raw_request(frontend, "GET", "/healthz")
            _, junk, _ = raw_request(frontend, "GET", "/healthz",
                                     headers={"X-Request-Id": "has space"})
        finally:
            frontend.shutdown()
        for headers in (bare, junk):
            minted = headers["X-Request-Id"]
            assert _TRACE_ID_RE.match(minted)
        assert junk["X-Request-Id"] != "has space"

    def test_receipt_carries_the_trace_id(self):
        frontend = make_frontend()
        try:
            client = HttpClient.for_frontend(frontend)
            result = client.infer(np.ones(4), trace_id="trace-receipt-1")
            np.testing.assert_array_equal(result.output, np.ones(4) * 2.0)
            assert result.stats["trace_id"] == "trace-receipt-1"
        finally:
            frontend.shutdown()

    def test_error_body_carries_the_trace_id(self):
        frontend = make_frontend()
        try:
            status, headers, payload = raw_request(
                frontend, "GET", "/v1/nope",
                headers={"X-Request-Id": "trace-err-7"})
        finally:
            frontend.shutdown()
        assert status == 404
        assert payload["error"]["trace_id"] == "trace-err-7"
        assert headers["X-Request-Id"] == "trace-err-7"

    def test_minted_ids_are_unique_and_wellformed(self):
        minted = {new_trace_id() for _ in range(64)}
        assert len(minted) == 64
        for trace in minted:
            assert _TRACE_ID_RE.match(trace)


class TestDrainRacingBatchSubmissions:
    def test_every_concurrent_batch_resolves(self):
        """Threads hammer ``/v1/infer_batch`` while the front end drains:
        each call either serves every item bit-exactly or surfaces a
        documented refusal — and all of them resolve in bounded time."""
        frontend = make_frontend(delay=0.05)
        client = HttpClient.for_frontend(frontend)
        images = np.ones((3, 4))
        outcomes = [None] * 8
        started = threading.Barrier(len(outcomes) + 1)

        def submit(i):
            started.wait()
            time.sleep(0.01 * i)   # spread submissions across the drain
            try:
                outcomes[i] = client.infer_batch(images)
            except (HttpError, OSError) as exc:
                outcomes[i] = exc

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(len(outcomes))]
        for thread in threads:
            thread.start()
        started.wait()
        time.sleep(0.03)           # let some batches reach the scheduler
        frontend.shutdown()
        deadline = time.monotonic() + 30.0
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            assert not thread.is_alive(), "a batch submission hung"

        served = 0
        for outcome in outcomes:
            assert outcome is not None
            if isinstance(outcome, OSError) \
                    and not isinstance(outcome, HttpError):
                continue           # socket already closed: a clean refusal
            if isinstance(outcome, HttpError):
                assert outcome.status == 503
                assert outcome.code in ("shutting_down", "shed")
                continue
            for item in outcome:   # a served batch: all items, bit-exact
                assert not isinstance(item, HttpError)
                np.testing.assert_array_equal(item.output, np.ones(4) * 2.0)
            served += 1
        assert served >= 1, "the drain refused even the in-flight batch"

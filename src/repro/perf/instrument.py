"""Wall-clock and conversion-count instrumentation.

Measurement policy: ``time_callable`` reports the *best* of ``repeats``
timed runs (each run may invoke the callable several times and divides by
the call count).  Best-of is the standard micro-benchmark estimator for a
noisy shared machine — the minimum is the run least perturbed by external
load, and it is monotone: a code change that lowers the best really did
less work.

``EngineMeter`` snapshots :class:`repro.reram.engine.EngineStats` so a
benchmark can report conversion counts, bit-cycles and kernel-job
zero-skip savings alongside the timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List


@dataclass(frozen=True)
class TimingResult:
    """Outcome of one timed measurement."""

    name: str
    repeats: int
    calls_per_repeat: int
    best_s: float
    mean_s: float
    all_s: tuple

    @property
    def per_call_s(self) -> float:
        """Best wall-clock per single call of the measured function."""
        return self.best_s / self.calls_per_repeat

    def speedup_vs(self, other: "TimingResult") -> float:
        """How many times faster this result is than ``other`` (per call)."""
        if self.per_call_s <= 0.0:
            return float("inf")
        return other.per_call_s / self.per_call_s

    def to_record(self) -> Dict:
        """JSON-ready representation (see benchmarks/README.md)."""
        return {
            "name": self.name,
            "repeats": self.repeats,
            "calls_per_repeat": self.calls_per_repeat,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "per_call_s": self.per_call_s,
        }


def time_callable(fn: Callable[[], object], *, name: str = "",
                  repeats: int = 5, calls_per_repeat: int = 1,
                  warmup: int = 1) -> TimingResult:
    """Time ``fn`` and return best/mean wall-clock statistics.

    ``warmup`` un-timed invocations absorb one-off costs (lazy imports,
    allocator growth, einsum path caching) before measurement starts.
    """
    if repeats < 1 or calls_per_repeat < 1:
        raise ValueError("repeats and calls_per_repeat must be >= 1")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls_per_repeat):
            fn()
        samples.append((time.perf_counter() - start) / calls_per_repeat)
    return TimingResult(name=name, repeats=repeats,
                        calls_per_repeat=calls_per_repeat,
                        best_s=min(samples),
                        mean_s=sum(samples) / len(samples),
                        all_s=tuple(samples))


@dataclass
class EngineMeter:
    """Delta-meter over one or more engines' :class:`EngineStats`.

    Snapshot on construction (or :meth:`reset`), read the accumulated
    difference with :meth:`delta` — robust to the engines being reused
    across several measurements.
    """

    engines: Iterable
    _baseline: Dict[int, tuple] = field(default_factory=dict, init=False)

    TRACKED = ("conversions", "saturated", "cycles_fed",
               "jobs_scheduled", "jobs_skipped",
               "pairs_scheduled", "pairs_skipped")

    def __post_init__(self):
        self.engines = list(self.engines)
        self.reset()

    def _snapshot(self) -> Dict[int, tuple]:
        return {id(e): tuple(getattr(e.stats, k) for k in self.TRACKED)
                for e in self.engines}

    def reset(self) -> None:
        self._baseline = self._snapshot()

    def delta(self) -> Dict[str, int]:
        """Per-field totals accumulated since the last reset."""
        now = self._snapshot()
        totals = dict.fromkeys(self.TRACKED, 0)
        for key, values in now.items():
            before = self._baseline.get(key, (0,) * len(self.TRACKED))
            for field_name, new, old in zip(self.TRACKED, values, before):
                totals[field_name] += new - old
        return totals

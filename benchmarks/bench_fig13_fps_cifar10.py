"""Figure 13 — FPS speedup over ISAAC-32 on CIFAR-10 (VGG-16, ResNet-18).

Six technique stacks per network: pruned/quantized ISAAC and PUMA, FORMS-8/16
without zero-skipping, FORMS-8/16 with everything.  Expected shape (paper):
compression alone buys large speedups for ISAAC; PUMA trails ISAAC; FORMS
without zero-skipping trails pruned ISAAC (fine-grained conversion deficit);
FORMS with zero-skipping overtakes it.
"""

from repro.analysis import FAST, fig13


def test_fig13_fps_cifar10(benchmark, save_table):
    result = benchmark.pedantic(lambda: fig13(FAST, seed=0),
                                rounds=1, iterations=1)
    save_table("fig13_fps_cifar10", result)
    benchmark.extra_info["table"] = result.rendered
    for workload, speedups in result.extras["speedups"].items():
        values = dict(speedups)
        isaac_pq = values["Pruned/Quantized-ISAAC"]
        assert isaac_pq > 1.5, f"{workload}: compression must speed ISAAC up"
        assert values["Pruned/Quantized-PUMA"] <= isaac_pq + 1e-9
        assert values["FORMS-8 full"] > values["FORMS-8 w/o zero-skip"]
        assert values["FORMS-16 full"] > values["FORMS-16 w/o zero-skip"]
        # the headline: FORMS with zero-skipping beats optimized ISAAC
        assert values["FORMS-16 full"] > isaac_pq * 0.9

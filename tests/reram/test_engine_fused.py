"""Fused bit-plane kernel equivalence — the retained oracle earns its keep.

``matvec_int`` dispatches across three tiers (exact matmul, integer kernel,
full analog kernel); every tier must stay bit-exact against the original
cycle-by-cycle loop retained as ``matvec_int_reference``.  These tests pin
that equivalence across mapping schemes, geometries (odd/padded row counts),
input shapes, ADC sizings, the analog IR-drop path, and the signed
decomposition used by whole-network inference — plus the DieCache and the
negative-rail saturation accounting that rode along in the same change.
"""

import numpy as np
import pytest

from repro.core import FragmentGeometry, QuantizationSpec
from repro.core.polarization import compute_signs, project_polarization
from repro.reram import (ADCSpec, DeviceSpec, DieCache, ReRAMDevice,
                         build_engine)
from repro.reram.inference import _signed_matvec
from repro.reram.mapping import infer_signs, map_layer
from repro.reram.nonideal import CellIV, ReadNoise, WireModel
from repro.reram.nonideal_engine import NonidealEngine

SCHEMES = ("forms", "isaac_offset", "dual")
QSPEC = QuantizationSpec(8, 2)


def polarized_case(shape, m, seed=0, qmax=127):
    rng = np.random.default_rng(seed)
    geom = FragmentGeometry(shape, m)
    w = rng.normal(size=shape)
    signs = compute_signs(w, geom)
    w = project_polarization(w, geom, signs)
    levels = np.clip(np.rint(w * qmax / (np.abs(w).max() + 1e-9)),
                     -qmax, qmax).astype(np.int64)
    return geom.matrix(levels), geom


def ideal_device():
    return ReRAMDevice(DeviceSpec(), variation_sigma=0.0)


class TestFusedEqualsReference:
    """Bit-exactness of the fused kernel vs the retained per-bit loop."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("shape,m", [
        ((4, 2, 3, 3), 4),    # rows=18: not a multiple of m -> padded rows
        ((6, 3, 3, 3), 8),    # rows=27, odd row count, padded
        ((8, 16), 4),         # linear layer, exact multiple
    ])
    def test_exact_adc(self, scheme, shape, m):
        levels, geom = polarized_case(shape, m)
        rng = np.random.default_rng(1)
        x = rng.integers(0, 2 ** 12, size=(geom.rows, 9))
        engine = build_engine(levels, geom, QSPEC, ideal_device(),
                              scheme=scheme, activation_bits=12)
        np.testing.assert_array_equal(engine.matvec_int(x),
                                      engine.matvec_int_reference(x))
        np.testing.assert_array_equal(engine.matvec_int(x), levels.T @ x)

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("adc_bits", [2, 3])   # worst fragment sum is 12
    def test_clipping_adc(self, scheme, adc_bits):
        """Integer-kernel tier: undersized ADCs clip identically."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=2)
        rng = np.random.default_rng(3)
        x = rng.integers(0, 2 ** 10, size=(geom.rows, 7))
        engine = build_engine(levels, geom, QSPEC, ideal_device(),
                              scheme=scheme, adc=ADCSpec(bits=adc_bits),
                              activation_bits=10)
        fused = engine.matvec_int(x)
        fused_sat = engine.stats.saturated
        np.testing.assert_array_equal(fused, engine.matvec_int_reference(x))
        # both paths count the same clipped conversions
        assert engine.stats.saturated == 2 * fused_sat
        assert fused_sat > 0

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_1d_input(self, scheme):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=4)
        rng = np.random.default_rng(5)
        x = rng.integers(0, 2 ** 8, size=geom.rows)
        engine = build_engine(levels, geom, QSPEC, ideal_device(),
                              scheme=scheme, activation_bits=8)
        np.testing.assert_array_equal(engine.matvec_int(x),
                                      engine.matvec_int_reference(x))

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_analog_tier_with_variation(self, scheme):
        """Variation forces the float path; fused == reference on one die."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=6)
        rng = np.random.default_rng(7)
        x = rng.integers(0, 2 ** 8, size=(geom.rows, 5))
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.1, seed=8)
        engine = build_engine(levels, geom, QSPEC, device, scheme=scheme,
                              activation_bits=8)
        assert not engine._signal_path_ideal()
        np.testing.assert_array_equal(engine.matvec_int(x),
                                      engine.matvec_int_reference(x))

    def test_irdrop_tier(self):
        """Deterministic IR drop + nonlinear cells: batched == per-fragment."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=9)
        rng = np.random.default_rng(10)
        x = rng.integers(0, 2 ** 8, size=(geom.rows, 6))
        mapped = map_layer(levels, geom, QSPEC, scheme="forms",
                           signs=infer_signs(levels, geom))
        engine = NonidealEngine(mapped, ideal_device(), activation_bits=8,
                                wire=WireModel(r_wire_ohm=10.0),
                                cell_iv=CellIV(nonlinearity=2.5))
        np.testing.assert_array_equal(engine.matvec_int(x),
                                      engine.matvec_int_reference(x))

    def test_sparse_inputs_mask_fragments(self):
        """Fragment-level zero-skipping drops jobs but never changes results."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=11)
        x = np.zeros((geom.rows, 4), dtype=np.int64)
        x[0, :] = 0b101   # only fragment 0 live, only bits 0 and 2
        engine = build_engine(levels, geom, QSPEC, ideal_device(),
                              activation_bits=8)
        np.testing.assert_array_equal(engine.matvec_int(x), levels.T @ x)
        assert engine.stats.cycles_fed == 3
        assert engine.stats.jobs_skipped > 0

    def test_chunked_kernel_identical(self, monkeypatch):
        """Job chunking is a pure memory knob: any chunk size, same bits."""
        import repro.reram.engine as engine_mod
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=12)
        rng = np.random.default_rng(13)
        x = rng.integers(0, 2 ** 10, size=(geom.rows, 8))
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        engine = build_engine(levels, geom, QSPEC, device,
                              adc=ADCSpec(bits=3), activation_bits=10)
        expected = engine.matvec_int(x)
        monkeypatch.setattr(engine_mod, "FUSED_KERNEL_MAX_ELEMENTS", 1)
        np.testing.assert_array_equal(engine.matvec_int(x), expected)


class TestSignedMatvec:
    def test_signed_activations_match_two_pass(self):
        """The fused positions-axis concatenation equals two separate passes."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=14)
        rng = np.random.default_rng(15)
        cols = rng.normal(size=(geom.rows, 6))
        engine = build_engine(levels, geom, QSPEC, ideal_device(),
                              activation_bits=12)
        fused = _signed_matvec(engine, cols, weight_scale=0.5)

        qmax = (1 << engine.activation_bits) - 1
        positive = np.maximum(cols, 0.0)
        negative = np.maximum(-cols, 0.0)
        top = float(max(positive.max(initial=0.0), negative.max(initial=0.0)))
        scale = top / qmax
        pos_int = np.clip(np.rint(positive / scale), 0, qmax).astype(np.int64)
        neg_int = np.clip(np.rint(negative / scale), 0, qmax).astype(np.int64)
        two_pass = (engine.matvec_int_reference(pos_int)
                    - engine.matvec_int_reference(neg_int)
                    ).astype(np.float64) * 0.5 * scale
        np.testing.assert_allclose(fused, two_pass)

    def test_unsigned_activations_single_pass(self):
        """All-positive columns never pay for a negative pass."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=16)
        rng = np.random.default_rng(17)
        cols = np.abs(rng.normal(size=(geom.rows, 5)))
        engine = build_engine(levels, geom, QSPEC, ideal_device(),
                              activation_bits=8)
        _signed_matvec(engine, cols, weight_scale=1.0)
        assert engine.stats.cycles_fed <= engine.activation_bits


class TestSaturationRails:
    def test_negative_rail_counted(self):
        """Read noise drives conversions below zero: underflow is saturation."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=18)
        mapped = map_layer(levels, geom, QSPEC, scheme="forms",
                           signs=infer_signs(levels, geom))
        spec = DeviceSpec()
        noise = ReadNoise.for_fragment(4, spec.g_max, spec.read_voltage,
                                       relative_sigma=0.5, seed=19)
        engine = NonidealEngine(mapped, ReRAMDevice(spec, 0.0),
                                activation_bits=8, read_noise=noise)
        x = np.ones((geom.rows, 8), dtype=np.int64)  # tiny sums near code 0
        engine.matvec_int(x)
        assert engine.stats.saturated > 0

    def test_noise_pedestal_on_silent_fragments(self):
        """Zero-skip masking must not drop noisy conversions: with read
        noise, silent fragments still contribute a rectified pedestal, so
        the fused path feeds the full job grid and matches the reference
        distribution (not just the live-fragment subset)."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=27)
        mapped = map_layer(levels, geom, QSPEC, scheme="forms",
                           signs=infer_signs(levels, geom))
        spec = DeviceSpec()

        def noisy_engine(seed):
            noise = ReadNoise.for_fragment(4, spec.g_max, spec.read_voltage,
                                           relative_sigma=0.3, seed=seed)
            return NonidealEngine(mapped, ReRAMDevice(spec, 0.0),
                                  activation_bits=8, read_noise=noise)

        x = np.zeros((geom.rows, 200), dtype=np.int64)
        x[0, :] = 255   # one live fragment, many silent ones
        fused_engine = noisy_engine(1)
        ref_engine = noisy_engine(1)
        fused = fused_engine.matvec_int(x).astype(np.float64)
        ref = ref_engine.matvec_int_reference(x).astype(np.float64)
        assert fused_engine.stats.jobs_skipped == 0
        assert fused_engine.stats.conversions == ref_engine.stats.conversions
        # Same analog model: means agree (different RNG draw order, so not
        # bitwise — but the silent-fragment pedestal must be present).
        assert abs(fused.mean() - ref.mean()) / abs(ref.mean()) < 0.1

    def test_adc_saturation_fraction_counts_both_rails(self):
        adc = ADCSpec(bits=3)  # codes 0..7
        frac = adc.saturation_fraction(np.array([-2.0, 1.0, 9.0, 3.0]))
        assert frac == 0.5

    def test_digitize_matches_convert(self):
        adc = ADCSpec(bits=3)
        analog = np.array([-2.4, -0.2, 0.4, 6.6, 7.4, 11.0])
        digital, saturated = adc.digitize(analog)
        np.testing.assert_array_equal(digital, adc.convert(analog))
        assert saturated == 2  # -2.4 underflows and 11 overflows; 7.4 rounds to 7


class TestDieCache:
    def test_identical_codes_share_a_die(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=20)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.2, seed=21)
        cache = DieCache()
        first = build_engine(levels, geom, QSPEC, device, die_cache=cache)
        second = build_engine(levels, geom, QSPEC, device, die_cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert first.conductance["main"] is second.conductance["main"]
        rng = np.random.default_rng(22)
        x = rng.integers(0, 2 ** 8, size=(geom.rows, 3))
        np.testing.assert_array_equal(first.matvec_int(x),
                                      second.matvec_int(x))

    def test_uncached_noisy_dies_differ(self):
        """Control: without the cache every engine programs a fresh die."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=20)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.2, seed=21)
        first = build_engine(levels, geom, QSPEC, device)
        second = build_engine(levels, geom, QSPEC, device)
        assert not np.array_equal(first.conductance["main"],
                                  second.conductance["main"])

    def test_different_devices_never_share(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=20)
        cache = DieCache()
        a = ReRAMDevice(DeviceSpec(), variation_sigma=0.2, seed=1)
        b = ReRAMDevice(DeviceSpec(), variation_sigma=0.2, seed=2)
        build_engine(levels, geom, QSPEC, a, die_cache=cache)
        build_engine(levels, geom, QSPEC, b, die_cache=cache)
        assert cache.misses == 2 and cache.hits == 0

    def test_unseeded_noisy_device_keys_by_identity(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=20)
        cache = DieCache()
        a = ReRAMDevice(DeviceSpec(), variation_sigma=0.2)
        b = ReRAMDevice(DeviceSpec(), variation_sigma=0.2)
        build_engine(levels, geom, QSPEC, a, die_cache=cache)
        build_engine(levels, geom, QSPEC, a, die_cache=cache)
        build_engine(levels, geom, QSPEC, b, die_cache=cache)
        assert cache.hits == 1 and cache.misses == 2

    def test_lru_eviction(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=20)
        other, _ = polarized_case((4, 2, 3, 3), 4, seed=23)
        device = ideal_device()
        cache = DieCache(maxsize=1)
        build_engine(levels, geom, QSPEC, device, die_cache=cache)
        build_engine(other, geom, QSPEC, device, die_cache=cache)
        assert len(cache) == 1
        build_engine(levels, geom, QSPEC, device, die_cache=cache)
        assert cache.misses == 3  # evicted, so re-programmed

    def test_eviction_reproduces_noisy_die(self):
        """A seeded noisy die is a pure function of (seed, codes): evicting
        and re-programming must yield the identical conductances."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=20)
        other, _ = polarized_case((4, 2, 3, 3), 4, seed=23)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.2, seed=31)
        cache = DieCache(maxsize=1)
        first = build_engine(levels, geom, QSPEC, device, die_cache=cache)
        build_engine(other, geom, QSPEC, device, die_cache=cache)  # evicts
        again = build_engine(levels, geom, QSPEC, device, die_cache=cache)
        assert cache.misses == 3
        np.testing.assert_array_equal(first.conductance["main"],
                                      again.conductance["main"])


class TestStatsAccounting:
    def test_fused_stats_match_reference(self):
        """cycles/conversions accounting is identical across paths."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=24)
        rng = np.random.default_rng(25)
        x = rng.integers(0, 2 ** 8, size=(geom.rows, 5))
        fused = build_engine(levels, geom, QSPEC, ideal_device(),
                             activation_bits=8)
        ref = build_engine(levels, geom, QSPEC, ideal_device(),
                           activation_bits=8)
        fused.matvec_int(x)
        ref.matvec_int_reference(x)
        assert fused.stats.cycles_fed == ref.stats.cycles_fed
        assert fused.stats.conversions == ref.stats.conversions
        assert fused.stats.saturated == ref.stats.saturated == 0

    def test_skip_fraction_zero_for_dense(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=26)
        engine = build_engine(levels, geom, QSPEC, ideal_device(),
                              activation_bits=4)
        x = np.full((geom.rows, 2), 15, dtype=np.int64)  # every bit live
        engine.matvec_int(x)
        assert engine.stats.skip_fraction == 0.0
        assert engine.stats.jobs_computed > 0

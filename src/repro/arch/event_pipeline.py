"""Event-driven pipeline simulation (paper Fig. 12).

The analytic :class:`~repro.arch.pipeline.PipelineModel` answers steady-state
questions with closed forms; this module simulates the same 22/26-stage
pipeline input by input, which is what lets us model the things closed forms
gloss over:

* **variable feed phases** — with zero-skipping, every input position feeds
  for its own effective-input-cycles count, not an average;
* **inter-layer buffering and back-pressure** — tiles stream results into a
  finite eDRAM buffer consumed by the next layer; a slow consumer stalls the
  producer (credit-based flow control);
* **fill/drain transients** — throughput over a finite image is below the
  steady-state bound.

The simulator is exact for the modeled discipline: fixed stages are pure
latency (1 cycle each, never congested), the bit-serial crossbar/ADC feed
phase is the single shared resource per layer (the structural hazard of the
paper's pipeline), and an item may start feeding only when the downstream
buffer has a free slot.  The tests cross-validate it against the analytic
model: with constant feed cycles the initiation interval matches
``PipelineModel`` exactly, and with variable cycles the throughput converges
to ``1 / mean(EIC)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class StageSpec:
    """Fixed-stage structure of one layer's pipeline (Fig. 12).

    ``front_stages`` (eDRAM read, parameter read) precede the feed phase;
    ``back_stages`` (shift+add x2, activation, eDRAM write, and four more
    when pooling) follow it.  The feed phase occupies 1-16 cycles per input
    depending on zero-skipping.
    """

    front_stages: int = 2
    back_stages: int = 4

    def __post_init__(self):
        if self.front_stages < 0 or self.back_stages < 0:
            raise ValueError("stage counts must be non-negative")

    def total_stages(self, feed_cycles: int) -> int:
        return self.front_stages + feed_cycles + self.back_stages


def layer_stage_spec(pooling: bool = False) -> StageSpec:
    """The paper's stage structure: 22 stages (26 with pooling) at 16 feed
    cycles — 2 front + 16 feed + 4 back (+ 4 pooling)."""
    return StageSpec(front_stages=2, back_stages=8 if pooling else 4)


@dataclass
class PipelineStats:
    """Result of one simulation run."""

    completion_times: np.ndarray       # cycle each item left the layer/chain
    feed_busy_cycles: float            # cycles the feed resource was occupied
    stall_cycles: float                # feed idle while an item was waiting

    @property
    def items(self) -> int:
        return len(self.completion_times)

    @property
    def makespan(self) -> float:
        return float(self.completion_times[-1]) if self.items else 0.0

    @property
    def throughput_per_cycle(self) -> float:
        return self.items / self.makespan if self.makespan else 0.0

    @property
    def steady_interval(self) -> float:
        """Mean inter-completion interval after the fill transient."""
        if self.items < 2:
            return float("nan")
        skip = min(self.items // 4, 16)
        tail = self.completion_times[skip:]
        return float((tail[-1] - tail[0]) / (len(tail) - 1)) if len(tail) > 1 \
            else float("nan")

    @property
    def feed_utilization(self) -> float:
        return self.feed_busy_cycles / self.makespan if self.makespan else 0.0


class EventPipeline:
    """One layer's pipeline with a serial bit-feed resource.

    ``feed_cycles[k]`` is the number of crossbar/ADC cycles input ``k``
    occupies (its fragment-set EIC; the constant ``activation_bits`` without
    zero-skipping).
    """

    def __init__(self, spec: StageSpec, feed_cycles: Sequence[int]):
        self.spec = spec
        self.feed_cycles = np.asarray(feed_cycles, dtype=np.int64)
        if self.feed_cycles.ndim != 1:
            raise ValueError("feed_cycles must be a 1-D sequence")
        if (self.feed_cycles < 1).any():
            raise ValueError("every input needs at least 1 feed cycle "
                             "(the skip logic's detection cycle)")

    def run(self, release_times: Optional[Sequence[float]] = None) -> PipelineStats:
        """Simulate all inputs; ``release_times`` gates arrival (default 0)."""
        n = len(self.feed_cycles)
        release = np.zeros(n) if release_times is None \
            else np.asarray(release_times, dtype=np.float64)
        if len(release) != n:
            raise ValueError("release_times length must match feed_cycles")
        done = np.empty(n)
        feed_free = 0.0
        busy = 0.0
        stall = 0.0
        for k in range(n):
            ready = release[k] + self.spec.front_stages
            start = max(ready, feed_free)
            if ready < feed_free:
                stall += feed_free - ready
            done[k] = start + self.feed_cycles[k] + self.spec.back_stages
            feed_free = start + self.feed_cycles[k]
            busy += self.feed_cycles[k]
        return PipelineStats(completion_times=done, feed_busy_cycles=busy,
                             stall_cycles=stall)


class MultiLayerPipeline:
    """A chain of layer pipelines joined by finite inter-layer buffers.

    ``layers`` is a list of ``(StageSpec, feed_cycles)`` pairs, every layer
    processing the same number of items in order.  ``buffer_capacity`` slots
    sit between consecutive layers (the per-tile eDRAM allocation); an item
    may only *start feeding* at layer ``l`` once the buffer between ``l`` and
    ``l+1`` is guaranteed a free slot — a credit, consumed when the item
    finishes feeding downstream.
    """

    def __init__(self, layers: Sequence[Tuple[StageSpec, Sequence[int]]],
                 buffer_capacity: int = 8):
        if not layers:
            raise ValueError("need at least one layer")
        if buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        lengths = {len(feed) for _, feed in layers}
        if len(lengths) != 1:
            raise ValueError("all layers must process the same item count")
        self.layers = [(spec, np.asarray(feed, dtype=np.int64))
                       for spec, feed in layers]
        for _, feed in self.layers:
            if (feed < 1).any():
                raise ValueError("every input needs at least 1 feed cycle")
        self.buffer_capacity = buffer_capacity

    def run(self) -> List[PipelineStats]:
        """Simulate the chain; returns per-layer statistics.

        The last layer's ``completion_times`` are the end-to-end finish
        times of each item.
        """
        n = len(self.layers[0][1])
        n_layers = len(self.layers)
        cap = self.buffer_capacity
        feed_free = np.zeros(n_layers)
        busy = np.zeros(n_layers)
        stall = np.zeros(n_layers)
        # feed_end[l][k]: when item k finished feeding at layer l (this is
        # the moment it releases its input-buffer slot from layer l-1).
        feed_end = np.zeros((n_layers, n))
        done = np.zeros((n_layers, n))
        for k in range(n):
            arrival = 0.0   # item k is available to layer 0 immediately
            for l, (spec, feed) in enumerate(self.layers):
                ready = arrival + spec.front_stages
                start = max(ready, feed_free[l])
                # Credit check: room downstream only once item k - cap has
                # been consumed by layer l + 1.
                if l + 1 < n_layers and k >= cap:
                    start = max(start, feed_end[l + 1][k - cap])
                if start > ready:
                    stall[l] += start - ready
                feed_end[l][k] = start + feed[k]
                done[l][k] = feed_end[l][k] + spec.back_stages
                feed_free[l] = feed_end[l][k]
                arrival = done[l][k]
        return [PipelineStats(completion_times=done[l],
                              feed_busy_cycles=float(busy_l),
                              stall_cycles=float(stall[l]))
                for l, busy_l in enumerate(
                    [feed.sum() for _, feed in self.layers])]

    def bottleneck_layer(self) -> int:
        """Index of the layer with the highest total feed demand."""
        demands = [feed.sum() for _, feed in self.layers]
        return int(np.argmax(demands))

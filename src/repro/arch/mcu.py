"""MCU (MAC-unit) design: crossbars + converters + accumulation (Fig. 11).

An MCU owns eight 128x128 crossbar arrays with their DACs, sample&holds,
per-fragment ADCs, shift-and-add units, zero-skip logic and the sign
indicator.  The design object rolls up the Table III bill of materials and
derives the MCU's timing: how long one bit-serial cycle takes and how many
rows each conversion covers — the quantities the performance model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .components import (CROSSBAR_COLS, CROSSBAR_ROWS, CROSSBARS_PER_MCU,
                         FORMS_ADC_FREQ_HZ, ISAAC_ADC_BITS, ISAAC_ADC_FREQ_HZ,
                         ComponentSpec, bom_area_mm2, bom_power_mw,
                         forms_mcu_components, isaac_mcu_components)


@dataclass(frozen=True)
class MCUDesign:
    """One MCU configuration with cost and timing."""

    name: str
    components: List[ComponentSpec]
    crossbars: int = CROSSBARS_PER_MCU
    crossbar_rows: int = CROSSBAR_ROWS
    crossbar_cols: int = CROSSBAR_COLS
    adcs_per_crossbar: int = 1
    adc_bits: int = ISAAC_ADC_BITS
    adc_frequency_hz: float = ISAAC_ADC_FREQ_HZ
    rows_per_activation: int = CROSSBAR_ROWS   # rows active per conversion group
    fragment_size: int = 0                     # 0 = coarse-grained (whole column)

    @property
    def power_mw(self) -> float:
        return bom_power_mw(self.components)

    @property
    def area_mm2(self) -> float:
        return bom_area_mm2(self.components)

    @property
    def columns_per_adc(self) -> int:
        return self.crossbar_cols // self.adcs_per_crossbar

    @property
    def cycle_time_s(self) -> float:
        """Time to convert one input bit across all crossbar columns.

        The ADC time-multiplexes its share of columns: ISAAC's single 8-bit
        ADC scans 128 columns at 1.2 GS/s (106.6 ns); FORMS' four 4-bit ADCs
        scan 32 columns each at 2.1 GS/s (15.2 ns).  Paper Sec. IV-C.
        """
        return self.columns_per_adc / self.adc_frequency_hz

    @property
    def row_groups_per_crossbar(self) -> int:
        """Sequential row activations needed to cover all crossbar rows."""
        return -(-self.crossbar_rows // self.rows_per_activation)

    def full_mvm_time_s(self, input_bits: float) -> float:
        """Time for one full crossbar MVM feeding ``input_bits`` per input.

        Coarse-grained designs activate all rows at once; fine-grained
        designs walk the row groups sequentially.  ``input_bits`` may be
        fractional (an average effective-input-cycles figure).
        """
        return self.row_groups_per_crossbar * input_bits * self.cycle_time_s


def forms_mcu(fragment_size: int = 8) -> MCUDesign:
    """The FORMS MCU at a given fragment size (Table III, FORMS column).

    Four ADCs per crossbar (the iso-area trade against one 8-bit ADC), each
    covering 32 columns, fragment-sized row activation.
    """
    from ..reram.converters import paper_adc_bits
    from .components import forms_adc_frequency
    components = forms_mcu_components(fragment_size)
    bits = paper_adc_bits(fragment_size)
    return MCUDesign(
        name=f"FORMS-{fragment_size}",
        components=components,
        adcs_per_crossbar=4,
        adc_bits=bits,
        adc_frequency_hz=forms_adc_frequency(bits),
        rows_per_activation=fragment_size,
        fragment_size=fragment_size,
    )


def isaac_mcu() -> MCUDesign:
    """The ISAAC MCU (Table III, ISAAC column): one shared 8-bit ADC."""
    return MCUDesign(
        name="ISAAC",
        components=isaac_mcu_components(),
        adcs_per_crossbar=1,
        adc_bits=ISAAC_ADC_BITS,
        adc_frequency_hz=ISAAC_ADC_FREQ_HZ,
        rows_per_activation=CROSSBAR_ROWS,
        fragment_size=0,
    )

"""Network workload extraction for the performance model.

A :class:`NetworkWorkload` captures, per compressible layer: the dense and
live (post-pruning) matrix dimensions, the MAC count, the number of
output positions per image, and the measured effective-input-cycle (EIC)
statistics of *real activations* flowing through the layer.

Activations are quantized to the accelerator's fixed-point input format with
one **network-global scale** — ISAAC/FORMS feed a fixed 16-bit fixed-point
format whose binary point does not move per layer, so layers whose
activations are small relative to the network maximum have many leading zero
bits.  This is precisely the headroom input zero-skipping converts into
skipped cycles (paper Fig. 8's per-layer EIC differences).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.fragments import FragmentGeometry
from ..core.zero_skip import EICStats, layer_eic_stats
from ..nn import functional as F
from ..nn.data import Dataset
from ..nn.layers import Conv2d, Linear, Module, compressible_layers
from ..nn.tensor import Tensor, no_grad


@dataclass
class LayerWorkload:
    """Per-layer quantities consumed by the performance model."""

    name: str
    kind: str                      # "conv" | "linear"
    rows: int                      # dense matrix rows (weights per filter)
    cols: int                      # dense matrix cols (filters)
    live_rows: int
    live_cols: int
    positions_per_image: int       # output pixels (1 for linear layers)
    eic_stats: Dict[int, EICStats] = field(default_factory=dict)

    @property
    def dense_macs_per_image(self) -> int:
        return self.rows * self.cols * self.positions_per_image

    @property
    def live_macs_per_image(self) -> int:
        return self.live_rows * self.live_cols * self.positions_per_image

    def average_eic(self, fragment_size: int, total_bits: int) -> float:
        """Average EIC at ``fragment_size``; falls back to ``total_bits``
        (no skipping possible) when stats were not collected."""
        stats = self.eic_stats.get(fragment_size)
        if stats is None:
            return float(total_bits)
        return stats.average


@dataclass
class NetworkWorkload:
    """All layers of one network on one dataset."""

    network: str
    dataset: str
    layers: List[LayerWorkload]
    activation_bits: int = 16

    @property
    def total_dense_macs(self) -> int:
        return sum(layer.dense_macs_per_image for layer in self.layers)

    @property
    def total_live_macs(self) -> int:
        return sum(layer.live_macs_per_image for layer in self.layers)

    @property
    def prune_ratio(self) -> float:
        return self.total_dense_macs / max(self.total_live_macs, 1)

    def average_eic(self, fragment_size: int) -> float:
        """MAC-weighted average EIC across layers."""
        weights = [layer.live_macs_per_image for layer in self.layers]
        total = sum(weights) or 1
        return sum(layer.average_eic(fragment_size, self.activation_bits) * w
                   for layer, w in zip(self.layers, weights)) / total


def _capture_layer_inputs(model: Module, images: np.ndarray) -> Dict[str, np.ndarray]:
    """Run a forward pass recording each compressible layer's input array."""
    captured: Dict[str, np.ndarray] = {}
    layers = compressible_layers(model)
    originals = [(layer, layer.forward) for _, layer in layers]

    def make_recorder(name: str, layer, original):
        def recorder(x: Tensor) -> Tensor:
            captured[name] = x.data
            return original(x)
        return recorder

    try:
        for name, layer in layers:
            object.__setattr__(layer, "forward", make_recorder(name, layer, layer.forward))
        model.eval()
        with no_grad():
            model(Tensor(images))
    finally:
        for layer, original in originals:
            object.__setattr__(layer, "forward", original)
        model.train()
    return captured


def _layer_input_matrix(layer, x: np.ndarray) -> np.ndarray:
    """im2col the captured input into the layer's (rows, positions) matrix."""
    if isinstance(layer, Conv2d):
        return F.im2col(x, layer.kernel_size, layer.kernel_size,
                        layer.stride, layer.padding)
    return np.asarray(x).T  # Linear: (in_features, batch)


def extract_workload(model: Module, dataset: Dataset,
                     fragment_sizes: Sequence[int] = (4, 8, 16),
                     activation_bits: int = 16, sample_images: int = 8,
                     policy: str = "w",
                     network: Optional[str] = None) -> NetworkWorkload:
    """Build a :class:`NetworkWorkload` by tracing ``model`` on real data.

    ``sample_images`` images are pushed through the network; each layer's
    im2col input matrix is quantized with the network-global 16-bit scale and
    reduced to EIC statistics at each requested fragment size, with the
    polarization policy's input permutation applied first (weights and inputs
    are co-ordered, Sec. III-B).
    """
    images = dataset.images[:sample_images]
    captured = _capture_layer_inputs(model, images)

    # Network-global fixed-point scale (post-ReLU magnitudes).
    global_max = max((float(np.abs(x).max()) for x in captured.values()),
                     default=1.0) or 1.0
    qmax = 2 ** activation_bits - 1
    scale = global_max / qmax

    layers: List[LayerWorkload] = []
    for name, layer in compressible_layers(model):
        x = captured[name]
        matrix = _layer_input_matrix(layer, x)
        ints = np.clip(np.rint(np.abs(matrix) / scale), 0, qmax).astype(np.int64)
        geometry_shape = tuple(layer.weight.shape)
        weight_matrix = layer.weight.data.reshape(geometry_shape[0], -1).T
        live_rows = int((np.abs(weight_matrix).sum(axis=1) > 0).sum())
        live_cols = int((np.abs(weight_matrix).sum(axis=0) > 0).sum())
        positions = matrix.shape[1] // len(images) if len(images) else matrix.shape[1]
        workload = LayerWorkload(
            name=name,
            kind="conv" if isinstance(layer, Conv2d) else "linear",
            rows=weight_matrix.shape[0], cols=weight_matrix.shape[1],
            live_rows=max(live_rows, 1), live_cols=max(live_cols, 1),
            positions_per_image=max(positions, 1),
        )
        for m in fragment_sizes:
            geometry = FragmentGeometry(geometry_shape, m, policy) \
                if isinstance(layer, Conv2d) else None
            ordered = ints
            if geometry is not None:
                perm = geometry.input_permutation()
                if perm is not None:
                    ordered = ints[perm]
            workload.eic_stats[m] = layer_eic_stats(ordered, m, activation_bits)
        layers.append(workload)

    return NetworkWorkload(network=network or type(model).__name__,
                           dataset=dataset.name, layers=layers,
                           activation_bits=activation_bits)


def transfer_measurements(target: NetworkWorkload,
                          source: NetworkWorkload) -> NetworkWorkload:
    """Graft measured compression ratios and EIC statistics onto a workload.

    The FPS experiments (Figs. 13/14) evaluate *full-size* network dimensions
    — a dense full-width VGG-16/ResNet traced without training — while the
    per-layer keep ratios and activation EIC distributions are *measured* on
    the scaled models we actually train (see DESIGN.md).  Layers are matched
    by relative depth, so topologies with different block counts still map
    sensibly.

    Returns a new workload; ``target`` is not modified.
    """
    if not source.layers:
        raise ValueError("source workload has no layers")
    n_src = len(source.layers)
    n_tgt = len(target.layers)
    mapped: List[LayerWorkload] = []
    for i, layer in enumerate(target.layers):
        j = round(i * (n_src - 1) / max(n_tgt - 1, 1)) if n_tgt > 1 else 0
        src = source.layers[j]
        row_keep = src.live_rows / src.rows
        col_keep = src.live_cols / src.cols
        mapped.append(LayerWorkload(
            name=layer.name,
            kind=layer.kind,
            rows=layer.rows, cols=layer.cols,
            live_rows=max(1, int(round(layer.rows * row_keep))),
            live_cols=max(1, int(round(layer.cols * col_keep))),
            positions_per_image=layer.positions_per_image,
            eic_stats=dict(src.eic_stats),
        ))
    return NetworkWorkload(network=target.network, dataset=source.dataset,
                           layers=mapped, activation_bits=source.activation_bits)


def trace_dimensions(model: Module, channels: int, image_size: int,
                     network: Optional[str] = None,
                     activation_bits: int = 16) -> NetworkWorkload:
    """Dimensions-only workload from an (untrained) model at full input size.

    Runs a single dummy image through the network to obtain true per-layer
    matrix shapes and output-position counts; EIC statistics are left empty
    (attach measured ones with :func:`transfer_measurements`).
    """
    dummy = np.zeros((1, channels, image_size, image_size), dtype=np.float32)
    captured = _capture_layer_inputs(model, dummy)
    layers: List[LayerWorkload] = []
    for name, layer in compressible_layers(model):
        matrix = _layer_input_matrix(layer, captured[name])
        weight_matrix = layer.weight.data.reshape(layer.weight.shape[0], -1).T
        layers.append(LayerWorkload(
            name=name,
            kind="conv" if isinstance(layer, Conv2d) else "linear",
            rows=weight_matrix.shape[0], cols=weight_matrix.shape[1],
            live_rows=weight_matrix.shape[0], live_cols=weight_matrix.shape[1],
            positions_per_image=max(matrix.shape[1], 1),
        ))
    return NetworkWorkload(network=network or type(model).__name__,
                           dataset=f"{image_size}x{image_size}",
                           layers=layers, activation_bits=activation_bits)

"""Network-scale variation injection tests (Table VI machinery)."""

import numpy as np
import pytest

from repro.core import ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline
from repro.nn import evaluate
from repro.reram import apply_variation, clone_model, effective_levels, variation_study
from repro.reram.mapping import infer_signs, map_layer
from repro.core import FragmentGeometry, QuantizationSpec


def small_config():
    fast = ADMMConfig(iterations=1, epochs_per_iteration=1, retrain_epochs=1)
    return FORMSConfig(fragment_size=4, crossbar=CrossbarShape(16, 16),
                       do_prune=False, do_quantize=False,
                       prune_admm=fast, polarize_admm=fast, quantize_admm=fast)


class TestCloneModel:
    def test_independent_weights(self, trained_lenet):
        clone = clone_model(trained_lenet)
        clone.parameters()[0].data[...] = 0.0
        assert np.abs(trained_lenet.parameters()[0].data).max() > 0


class TestEffectiveLevels:
    def test_ideal_recovers_levels(self, rng):
        spec = QuantizationSpec(8, 2)
        geom = FragmentGeometry((2, 1, 3, 3), 4)
        levels = rng.integers(-spec.qmax, spec.qmax, size=(geom.rows, geom.cols))
        from repro.reram import ReRAMDevice, DeviceSpec
        device = ReRAMDevice(DeviceSpec(), 0.0)
        for scheme in ("isaac_offset", "dual"):
            mapped = map_layer(levels, geom, spec, scheme)
            np.testing.assert_allclose(effective_levels(mapped, device), levels)

    def test_isaac_offset_amplifies_noise(self, rng):
        """The stored bias couples device noise into ISAAC's effective weights
        much harder than FORMS' bare magnitudes — the robustness mechanism the
        paper cites ([29])."""
        spec = QuantizationSpec(8, 2)
        geom = FragmentGeometry((4, 2, 3, 3), 4)
        small = rng.integers(-10, 11, size=(geom.rows, geom.cols))  # small weights
        # polarize so the FORMS scheme applies
        stack = geom.fragment_stack(small.astype(np.float64))
        signs = np.where(stack.sum(axis=1) >= 0, 1.0, -1.0)
        stack = np.where(stack * signs[:, None, :] >= 0, stack, 0.0)
        levels = geom.from_fragment_stack(stack).astype(np.int64)
        from repro.reram import ReRAMDevice, DeviceSpec
        errors = {}
        for scheme in ("forms", "isaac_offset"):
            device = ReRAMDevice(DeviceSpec(), variation_sigma=0.1, seed=5)
            mapped = map_layer(levels, geom, spec, scheme,
                               signs=infer_signs(levels, geom) if scheme == "forms" else None)
            eff = effective_levels(mapped, device)
            errors[scheme] = np.abs(eff - levels).mean()
        assert errors["isaac_offset"] > errors["forms"]


class TestApplyVariation:
    def test_sigma_zero_close_to_original(self, trained_lenet, mnist_small):
        _, test = mnist_small
        config = small_config()
        clean = apply_variation(trained_lenet, config, 0.0, scheme="dual")
        base_acc = evaluate(trained_lenet, test).accuracy
        clean_acc = evaluate(clean, test).accuracy
        # only quantization separates them
        assert abs(clean_acc - base_acc) < 0.1

    def test_original_model_untouched(self, trained_lenet):
        before = trained_lenet.parameters()[0].data.copy()
        apply_variation(trained_lenet, small_config(), 0.2, scheme="dual", seed=1)
        np.testing.assert_array_equal(trained_lenet.parameters()[0].data, before)

    def test_negative_sigma_rejected(self, trained_lenet):
        with pytest.raises(ValueError):
            apply_variation(trained_lenet, small_config(), -0.1, scheme="dual")


class TestVariationStudy:
    def test_degradation_grows_with_sigma(self, trained_lenet, mnist_small):
        train, test = mnist_small
        config = small_config()
        mild = variation_study(trained_lenet, config, test, sigma=0.02, runs=3,
                               scheme="dual", seed=0)
        harsh = variation_study(trained_lenet, config, test, sigma=0.5, runs=3,
                                scheme="dual", seed=0)
        assert harsh.mean_degradation > mild.mean_degradation

    def test_result_statistics(self, trained_lenet, mnist_small):
        _, test = mnist_small
        result = variation_study(trained_lenet, small_config(), test, sigma=0.1,
                                 runs=3, scheme="dual", seed=0)
        assert len(result.noisy_accuracies) == 3
        assert result.std_accuracy >= 0.0
        assert 0.0 <= result.mean_accuracy <= 1.0

"""Data augmentation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.augment import (AugmentedDataset, Compose, Cutout,
                              GaussianNoise, RandomCrop,
                              RandomHorizontalFlip, standard_augmentation)
from repro.nn.data import make_synthetic


def batch(n=8, c=3, size=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, c, size, size)).astype(np.float32)


class TestRandomHorizontalFlip:
    def test_p_one_flips_everything(self):
        images = batch()
        out = RandomHorizontalFlip(p=1.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images[:, :, :, ::-1])

    def test_p_zero_is_identity(self):
        images = batch()
        out = RandomHorizontalFlip(p=0.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images)

    def test_original_untouched(self):
        images = batch()
        before = images.copy()
        RandomHorizontalFlip(p=1.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(images, before)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=1.5)


class TestRandomCrop:
    def test_shape_preserved(self):
        images = batch()
        out = RandomCrop(padding=2)(images, np.random.default_rng(0))
        assert out.shape == images.shape

    def test_content_is_shifted_window(self):
        # With padding p, each output is a window of the reflect-padded
        # original, so every output pixel row exists in the padded image.
        images = batch(n=2)
        out = RandomCrop(padding=2)(images, np.random.default_rng(1))
        assert not np.isnan(out).any()
        assert np.abs(out).max() <= np.abs(images).max() + 1e-6

    def test_zero_offset_possible(self):
        # Over many draws some crop must equal the identity window.
        images = batch(n=64, size=6)
        out = RandomCrop(padding=1)(images, np.random.default_rng(2))
        identity = (out == images).all(axis=(1, 2, 3))
        assert identity.any()

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomCrop(padding=0)


class TestGaussianNoise:
    def test_statistics(self):
        images = np.zeros((4, 1, 64, 64), dtype=np.float64)
        out = GaussianNoise(sigma=0.1)(images, np.random.default_rng(0))
        assert out.std() == pytest.approx(0.1, rel=0.05)

    def test_zero_sigma_identity(self):
        images = batch()
        out = GaussianNoise(sigma=0.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNoise(sigma=-0.1)


class TestCutout:
    def test_patch_is_zeroed(self):
        images = np.ones((4, 2, 8, 8), dtype=np.float32)
        out = Cutout(size=3)(images, np.random.default_rng(0))
        zeros_per_image = (out == 0).sum(axis=(1, 2, 3))
        np.testing.assert_array_equal(zeros_per_image, 2 * 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Cutout(size=0)
        with pytest.raises(ValueError):
            Cutout(size=8)(batch(size=8), np.random.default_rng(0))


class TestCompose:
    def test_applies_in_sequence(self):
        images = batch()
        pipeline = Compose([RandomHorizontalFlip(p=1.0),
                            RandomHorizontalFlip(p=1.0)])
        out = pipeline(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images)   # double flip = identity

    def test_standard_augmentation_runs(self):
        images = batch()
        out = standard_augmentation(noise_sigma=0.01)(
            images, np.random.default_rng(0))
        assert out.shape == images.shape

    def test_validation(self):
        with pytest.raises(ValueError):
            Compose([])

    @given(st.integers(min_value=0, max_value=10000))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_under_seed(self, seed):
        images = batch()
        pipeline = standard_augmentation()
        a = pipeline(images, np.random.default_rng(seed))
        b = pipeline(images, np.random.default_rng(seed))
        np.testing.assert_array_equal(a, b)


class TestAugmentedDataset:
    def test_quacks_like_dataset(self):
        train, _ = make_synthetic("aug", 3, 1, 8, 48, 24, seed=1)
        view = AugmentedDataset(train, standard_augmentation(), seed=0)
        assert len(view) == len(train)
        assert view.num_classes == train.num_classes
        np.testing.assert_array_equal(view.labels, train.labels)
        assert "aug" in view.name

    def test_fresh_augmentation_per_access(self):
        train, _ = make_synthetic("aug", 3, 1, 8, 48, 24, seed=1)
        view = AugmentedDataset(train, GaussianNoise(0.1), seed=0)
        first = view.images
        second = view.images
        assert not np.array_equal(first, second)

    def test_underlying_data_unchanged(self):
        train, _ = make_synthetic("aug", 3, 1, 8, 48, 24, seed=1)
        before = train.images.copy()
        view = AugmentedDataset(train, standard_augmentation(), seed=0)
        view.images
        np.testing.assert_array_equal(train.images, before)

    def test_trains_with_fit(self):
        from repro.nn import Adam, Conv2d, Flatten, Linear, ReLU, Sequential, fit, set_init_seed

        train, test = make_synthetic("aug", 3, 1, 8, 96, 48, seed=2)
        set_init_seed(2)
        model = Sequential(Conv2d(1, 4, 3, padding=1), ReLU(),
                           Flatten(), Linear(4 * 8 * 8, 3))
        view = AugmentedDataset(train, standard_augmentation(), seed=0)
        history = fit(model, view, Adam(model.parameters(), 1e-3),
                      epochs=2, batch_size=16)
        assert history.train[-1].accuracy > 0.3

"""Benchmark fixtures.

Each benchmark regenerates one paper table/figure at the FAST experiment
scale, saves the rendered table under ``benchmarks/results/`` and records it
in the pytest-benchmark ``extra_info`` so the timing JSON carries the
artifact too.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_table(results_dir):
    """Persist a rendered experiment table and echo it to stdout."""

    def _save(name: str, table) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(table.rendered + "\n")
        print(f"\n{table.rendered}\n[saved to {path}]")

    return _save

#!/usr/bin/env python
"""Open-loop Poisson serving benchmark: throughput/latency curve recorder.

Drives the :mod:`repro.serving` request-queue server with open-loop
Poisson arrivals at several offered rates and records one ``"serving"``
record per rate into ``BENCH_engine.json`` (merged: the engine suite's
records are preserved — schema in ``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke     # < 30 s
    PYTHONPATH=src python benchmarks/bench_serving.py             # fuller curve
    PYTHONPATH=src python benchmarks/bench_serving.py \\
        --rates 25 100 400 --requests 64 -o /tmp/serving.json

Every rate point asserts bit-identity of all served outputs against the
serial single-image path before it is recorded, so a recorded curve can
never come from wrong results.  Exits non-zero if that assertion fails or
if fewer than two rate points were recorded.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf import merge_serving_records, run_poisson_point  # noqa: E402
from repro.reram import DieCache                                 # noqa: E402

#: offered arrival rates (requests/s) per mode — two points minimum so the
#: recorded curve always shows a light-load and a saturating point
SMOKE_RATES = (50.0, 200.0)
FULL_RATES = (25.0, 50.0, 100.0, 200.0, 400.0)


def format_point(record: dict) -> str:
    results, meta = record["results"], record["meta"]
    return (f"{record['name']:24s} offered {results['offered_rate_rps']:6.0f} "
            f"rps -> served {results['throughput_rps']:6.1f} rps, "
            f"p50 {results['latency_p50_s'] * 1e3:7.2f} ms, "
            f"p95 {results['latency_p95_s'] * 1e3:7.2f} ms, "
            f"mean batch {results['mean_batch_size']:.2f}, "
            f"occupancy {results['occupancy']:.2f} "
            f"(w={meta['workers']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: two rate points, fewer requests")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="offered arrival rates in requests/s "
                             "(default: two smoke points / five full points)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per rate point (default 24 smoke / 48)")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-pool size (default: FORMS_WORKERS or "
                             "CPU count)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_engine.json",
                        help="BENCH json to merge records into (default: "
                             "BENCH_engine.json at the repo root)")
    args = parser.parse_args(argv)

    rates = args.rates if args.rates is not None else (
        list(SMOKE_RATES) if args.smoke else list(FULL_RATES))
    requests = args.requests if args.requests is not None else (
        24 if args.smoke else 48)
    if len(rates) < 2:
        print("ERROR: need at least two arrival-rate points for a curve",
              file=sys.stderr)
        return 1

    records = []
    die_cache = DieCache()   # shared: rate points rebuild identical engines
    for rate in rates:
        record = run_poisson_point(
            rate, requests, max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms, workers=args.workers,
            seed=args.seed, die_cache=die_cache)
        print(format_point(record))
        records.append(record)

    if args.output.exists():
        # an unreadable existing file must abort, not be clobbered — it
        # may hold the whole engine-suite trajectory
        try:
            with open(args.output) as handle:
                payload = json.load(handle)
        except ValueError as exc:
            print(f"ERROR: {args.output} exists but is not valid JSON "
                  f"({exc}); refusing to overwrite it", file=sys.stderr)
            return 1
    else:
        payload = {"schema": "forms-perf-suite/v1", "records": []}
    merge_serving_records(payload, records)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"[{len(records)} serving records merged into {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

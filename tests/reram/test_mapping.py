"""Mapping scheme tests (FORMS / ISAAC offset / PRIME dual)."""

import numpy as np
import pytest

from repro.core import FragmentGeometry, QuantizationSpec
from repro.reram import bit_unslice, infer_signs, map_layer


@pytest.fixture()
def polarized_case(rng):
    spec = QuantizationSpec(8, 2)
    geom = FragmentGeometry((4, 2, 3, 3), fragment_size=4)  # rows 18 -> pad to 20
    levels = rng.integers(-spec.qmax, spec.qmax + 1, size=(geom.rows, geom.cols))
    # polarize: make each fragment single-signed using the sum rule
    signs = infer_signs(levels, geom)
    stack = geom.fragment_stack(levels.astype(np.float64))
    stack = np.where(stack * signs[:, None, :] >= 0, stack, 0.0)
    levels = geom.from_fragment_stack(stack).astype(np.int64)
    return levels, geom, spec, infer_signs(levels, geom)


class TestFormsMapping:
    def test_stores_magnitudes(self, polarized_case):
        levels, geom, spec, signs = polarized_case
        mapped = map_layer(levels, geom, spec, "forms", signs=signs)
        recombined = bit_unslice(mapped.code_planes["main"], spec.cell_bits)
        expected = np.abs(geom.fragment_stack(levels.astype(np.float64))).astype(np.int64)
        np.testing.assert_array_equal(recombined, expected)
        assert mapped.crossbar_copies == 1
        assert mapped.slices == spec.cells_per_weight

    def test_requires_signs(self, polarized_case):
        levels, geom, spec, _ = polarized_case
        with pytest.raises(ValueError, match="signs"):
            map_layer(levels, geom, spec, "forms")

    def test_rejects_unpolarized(self, rng):
        spec = QuantizationSpec(8, 2)
        geom = FragmentGeometry((2, 2, 3, 3), 4)
        levels = rng.integers(-50, 51, size=(geom.rows, geom.cols))
        signs = infer_signs(levels, geom)
        # random levels are almost surely mixed-sign somewhere
        with pytest.raises(ValueError, match="polarized"):
            map_layer(levels, geom, spec, "forms", signs=signs)


class TestIsaacMapping:
    def test_bias_applied(self, polarized_case):
        levels, geom, spec, _ = polarized_case
        mapped = map_layer(levels, geom, spec, "isaac_offset")
        assert mapped.offset == 128
        recombined = bit_unslice(mapped.code_planes["main"], spec.cell_bits)
        stack = geom.fragment_stack(levels.astype(np.float64)).astype(np.int64)
        # real rows hold level + 128; padding rows hold 0
        pad = geom.padded_rows - geom.rows
        real = recombined[:-1] if pad else recombined
        np.testing.assert_array_equal(real, stack[:-1] + 128 if pad else stack + 128)
        if pad:
            np.testing.assert_array_equal(recombined[-1, -pad:, :], 0)

    def test_biased_codes_fit_slices(self, polarized_case):
        levels, geom, spec, _ = polarized_case
        mapped = map_layer(levels, geom, spec, "isaac_offset")
        assert mapped.slices == spec.cells_per_weight


class TestDualMapping:
    def test_positive_negative_split(self, polarized_case):
        levels, geom, spec, _ = polarized_case
        mapped = map_layer(levels, geom, spec, "dual")
        assert mapped.crossbar_copies == 2
        pos = bit_unslice(mapped.code_planes["positive"], spec.cell_bits)
        neg = bit_unslice(mapped.code_planes["negative"], spec.cell_bits)
        stack = geom.fragment_stack(levels.astype(np.float64)).astype(np.int64)
        np.testing.assert_array_equal(pos - neg, stack)
        assert (pos * neg == 0).all()  # disjoint supports


class TestValidation:
    def test_unknown_scheme(self, polarized_case):
        levels, geom, spec, signs = polarized_case
        with pytest.raises(ValueError):
            map_layer(levels, geom, spec, "hybrid")

    def test_float_levels_rejected(self, polarized_case):
        _, geom, spec, _ = polarized_case
        with pytest.raises(TypeError):
            map_layer(np.zeros((geom.rows, geom.cols)), geom, spec)

    def test_shape_mismatch(self, polarized_case):
        levels, geom, spec, _ = polarized_case
        with pytest.raises(ValueError):
            map_layer(levels[:-1], geom, spec, "dual")

    def test_range_checked(self, polarized_case):
        _, geom, spec, _ = polarized_case
        too_big = np.full((geom.rows, geom.cols), 200, dtype=np.int64)
        with pytest.raises(ValueError):
            map_layer(too_big, geom, spec, "dual")

    def test_infer_signs_sum_rule(self):
        geom = FragmentGeometry((1, 1, 2, 2), 4)
        levels = np.array([[5], [-1], [-1], [-1]], dtype=np.int64)
        assert infer_signs(levels, geom)[0, 0] == 1.0  # sum=2 >= 0

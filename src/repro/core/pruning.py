"""Crossbar-aware structured pruning (paper Sec. III-A).

FORMS combines two structured-sparsity patterns on the 2-D weight matrix of
Fig. 2 (one column per filter, one row per filter-shape position):

* **filter pruning** removes whole columns;
* **filter-shape pruning** removes whole rows.

The projection keeps the columns/rows with the largest L2 norm.  *Crossbar
awareness* means the keep counts are snapped **up** to the crossbar row/column
granularity: pruning below the next multiple of (say) 128 rows removes
accuracy without removing a single crossbar, so FORMS keeps those weights
instead (paper: "carefully choosing the pruning ratio for each DNN layer to
avoid unnecessary accuracy drop").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .fragments import FragmentGeometry


def snap_keep_count(total: int, target_keep: int, granularity: int) -> int:
    """Snap ``target_keep`` up to the crossbar granularity.

    Any keep count in ``((k-1)*g, k*g]`` occupies ``k`` crossbar slices, so the
    cheapest count with the same hardware cost is ``k*g`` (capped at
    ``total``).  With ``granularity=1`` this is the identity: non-aware
    pruning.
    """
    if total < 1:
        raise ValueError("total must be >= 1")
    target_keep = int(np.clip(target_keep, 1, total))
    if granularity <= 1:
        return target_keep
    slices = -(-target_keep // granularity)  # ceil
    return min(slices * granularity, total)


def keep_topk_columns(matrix: np.ndarray, keep: int) -> np.ndarray:
    """Zero all but the ``keep`` columns with the largest L2 norm."""
    norms = np.linalg.norm(matrix, axis=0)
    if keep >= matrix.shape[1]:
        return matrix.copy()
    threshold_idx = np.argsort(norms)[:-keep] if keep > 0 else np.arange(matrix.shape[1])
    out = matrix.copy()
    out[:, threshold_idx] = 0.0
    return out


def keep_topk_rows(matrix: np.ndarray, keep: int) -> np.ndarray:
    """Zero all but the ``keep`` rows with the largest L2 norm."""
    norms = np.linalg.norm(matrix, axis=1)
    if keep >= matrix.shape[0]:
        return matrix.copy()
    threshold_idx = np.argsort(norms)[:-keep] if keep > 0 else np.arange(matrix.shape[0])
    out = matrix.copy()
    out[threshold_idx, :] = 0.0
    return out


@dataclass
class PruningSpec:
    """Per-layer structured-pruning targets.

    ``filter_keep``/``shape_keep`` are the *fractions of columns/rows kept*
    (paper's alpha_i and beta_i).  ``row_granularity``/``col_granularity``
    express the crossbar awareness: rows snap to the sub-array/crossbar row
    count, columns to the crossbar column count divided by cells-per-weight.
    """

    filter_keep: float = 1.0
    shape_keep: float = 1.0
    row_granularity: int = 1
    col_granularity: int = 1

    def __post_init__(self):
        for name, frac in (("filter_keep", self.filter_keep), ("shape_keep", self.shape_keep)):
            if not 0.0 < frac <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {frac}")

    def keep_counts(self, rows: int, cols: int) -> Tuple[int, int]:
        """(rows_kept, cols_kept) after crossbar-aware snapping."""
        keep_rows = snap_keep_count(rows, int(round(rows * self.shape_keep)), self.row_granularity)
        keep_cols = snap_keep_count(cols, int(round(cols * self.filter_keep)), self.col_granularity)
        return keep_rows, keep_cols


def project_structured(weight: np.ndarray, geometry: FragmentGeometry,
                       spec: PruningSpec) -> np.ndarray:
    """Euclidean projection onto the structured-sparsity set S_i.

    Keeps the top rows and columns of the layer's 2-D matrix by L2 norm,
    zeroing the rest, with keep counts snapped to crossbar granularity.
    """
    matrix = geometry.matrix(weight)
    keep_rows, keep_cols = spec.keep_counts(*matrix.shape)
    pruned = keep_topk_rows(keep_topk_columns(matrix, keep_cols), keep_rows)
    return geometry.weight(pruned)


def structured_mask(weight: np.ndarray, geometry: FragmentGeometry) -> np.ndarray:
    """Boolean mask of surviving rows x columns inferred from a pruned weight.

    Used by masked fine-tuning: a row/column is dead when *all* of its entries
    are zero.
    """
    matrix = geometry.matrix(weight)
    live_rows = np.abs(matrix).sum(axis=1) > 0.0
    live_cols = np.abs(matrix).sum(axis=0) > 0.0
    mask = np.outer(live_rows, live_cols)
    return geometry.weight(mask.astype(weight.dtype)) != 0.0


def structure_summary(weight: np.ndarray, geometry: FragmentGeometry) -> dict:
    """Live row/column counts and resulting dense-weight prune ratio."""
    matrix = geometry.matrix(weight)
    live_rows = int((np.abs(matrix).sum(axis=1) > 0.0).sum())
    live_cols = int((np.abs(matrix).sum(axis=0) > 0.0).sum())
    total = matrix.size
    kept = live_rows * live_cols
    return {
        "rows": matrix.shape[0],
        "cols": matrix.shape[1],
        "live_rows": live_rows,
        "live_cols": live_cols,
        "prune_ratio": total / max(kept, 1),
    }


def prune_ratio(weight: np.ndarray) -> float:
    """Dense / nonzero weight count (the paper's "prune ratio" column)."""
    nonzero = int(np.count_nonzero(weight))
    return weight.size / max(nonzero, 1)

"""Extension — stuck-at faults and the [29]-style mitigations.

Sec. V-E closes with "the prior techniques used to improve robustness
[29, 84, 85] can be applied to FORMS"; this bench applies [29]'s two
mapping-level mitigations (optimal column remapping + differential fragment
encoding, both polarization-preserving) to a FORMS-optimized model and
measures accuracy across fault rates on paired dies.

Expected shape: accuracy degrades with the fault rate; mitigation recovers
a growing share of the loss as faults become plentiful (at very low rates
there is little to recover).
"""

from repro.analysis import FAST, ExperimentTable, forms_config_for, train_baseline
from repro.core import MitigationConfig, fault_tolerance_study
from repro.reram.variation import clone_model
from repro.core import FORMSPipeline

RATES = [(0.002, 0.0002), (0.01, 0.001), (0.05, 0.005)]


def run_study(seed: int = 0):
    baseline = train_baseline("lenet5", "mnist", FAST, seed=seed)
    config = forms_config_for(FAST, "mnist", fragment_size=8)
    model = clone_model(baseline.model)
    FORMSPipeline(config).optimize(model, baseline.train_set,
                                   baseline.test_set, seed=seed)
    points = fault_tolerance_study(model, config, baseline.test_set,
                                   fault_rates=RATES, runs=3, seed=seed,
                                   mitigation=MitigationConfig())
    rows = [[p.sa0_rate, p.sa1_rate,
             p.unmitigated_mean * 100.0, p.mitigated_mean * 100.0,
             p.accuracy_recovered * 100.0]
            for p in points]
    table = ExperimentTable(
        "Extension: stuck-at faults with [29]-style mitigation "
        "(LeNet-5, FORMS-8, 3 dies per rate)",
        ["SA0 rate", "SA1 rate", "unmitigated acc %", "mitigated acc %",
         "recovered %"],
        rows, floatfmt=".3g")
    table.extras["points"] = points
    return table


def test_fault_tolerance(benchmark, save_table):
    result = benchmark.pedantic(run_study, rounds=1, iterations=1)
    save_table("fault_tolerance", result)
    benchmark.extra_info["table"] = result.rendered
    points = result.extras["points"]
    # Paired dies: mitigation never hurts (small evaluation noise allowed).
    for p in points:
        assert p.mitigated_mean >= p.unmitigated_mean - 0.02
    # At the heaviest fault rate the mitigation recovers real accuracy.
    assert points[-1].accuracy_recovered >= 0.0

"""Device physics: VTEAM dynamics, closed-loop writes, and IR drop.

The other examples treat ReRAM cells behaviourally (discrete levels + noise);
this one opens the box:

1. integrate the VTEAM voltage-threshold ODE (paper ref [71]) to show
   threshold behaviour — reads never disturb the state, writes only move it
   above the threshold;
2. program a 2-bit cell to each of its four levels with the
   program-and-verify controller and report the pulse budgets;
3. solve the full resistive crossbar network (wire parasitics + nonlinear
   cell I-V) to show why fine-grained activation is more robust to IR drop
   than coarse-grained activation — the quantitative version of the paper's
   Sec. I claim.

Run:  python examples/device_physics.py
"""

import numpy as np

from repro.analysis import line_chart, render_table
from repro.reram import (CellIV, DeviceSpec, ProgramScheme, VTEAMCell,
                         VTEAMParams, WireModel, device_spec_from_vteam,
                         ir_drop_study, program_level, write_latency_s)


def threshold_demo(params: VTEAMParams) -> None:
    print("1. threshold behaviour")
    print("-" * 60)
    cell = VTEAMCell(params, state=0.5)
    before = float(cell.resistance)
    for _ in range(10000):
        cell.step(0.3, 1e-9)   # 10 us of continuous reading
    after_read = float(cell.resistance)
    cell.apply_pulse(2.0, 100e-9)
    after_write = float(cell.resistance)
    print(f"  resistance at x=0.5        : {before / 1e6:8.3f} MOhm")
    print(f"  after 10 us of 0.3 V reads : {after_read / 1e6:8.3f} MOhm "
          "(unchanged - below threshold)")
    print(f"  after one 2 V, 100 ns pulse: {after_write / 1e6:8.3f} MOhm "
          "(RESET moved it)\n")


def programming_demo(params: VTEAMParams) -> None:
    print("2. program-and-verify to 2-bit levels")
    print("-" * 60)
    spec = device_spec_from_vteam(params, cell_bits=2)
    scheme = ProgramScheme()
    rows = []
    pulse_counts = []
    for code in range(spec.levels):
        target = float(spec.ideal_conductance(np.array([code]))[0])
        cell = VTEAMCell(params, state=1.0)   # start from full RESET
        result = program_level(cell, target, scheme)
        pulse_counts.append(result.pulses)
        rows.append([code, target * 1e6, result.achieved_g * 1e6,
                     result.pulses, result.converged])
    print(render_table(
        ["level", "target (uS)", "achieved (uS)", "pulses", "converged"],
        rows, floatfmt=".3f"))
    latency = write_latency_s(np.array(pulse_counts), scheme)
    print(f"  worst-case write latency: {latency * 1e6:.2f} us "
          "(columns program in parallel)\n")


def ir_drop_demo() -> None:
    print("3. IR drop: fine-grained vs coarse-grained activation")
    print("-" * 60)
    granularities = [4, 8, 16, 32, 64]
    points = ir_drop_study(rows=64, cols=8,
                           active_row_options=granularities,
                           wire=WireModel(r_wire_ohm=2.5),
                           cell_iv=CellIV(nonlinearity=2.0), seed=0)
    errors = [p.relative_error * 100.0 for p in points]
    print(line_chart(granularities, {"MVM error %": errors},
                     title="relative MVM error vs rows active per conversion",
                     height=10, width=50, y_fmt=".2f"))
    print()
    fine, coarse = errors[1], errors[-1]
    print(f"  FORMS fragment-8 reads : {fine:.3f} % error")
    print(f"  64-row coarse reads    : {coarse:.3f} % error "
          f"({coarse / fine:.1f}x worse)")
    print("  (with linear cells the two would be identical - superposition;")
    print("   the advantage comes from the cells' nonlinear I-V curve)")


def main() -> None:
    params = VTEAMParams()
    threshold_demo(params)
    programming_demo(params)
    ir_drop_demo()


if __name__ == "__main__":
    main()

"""Fault-tolerant crossbar mapping (paper Sec. V-E, following ref [29]).

Stuck-at faults freeze a cell at its lowest (SA0) or highest (SA1)
conductance.  The paper notes that "prior techniques used to improve
robustness [29, 84, 85] can be applied to FORMS"; this module implements the
two mapping-level mitigations of [29], both of which preserve the FORMS
polarization property:

* **Column remapping** — which *logical* filter lands on which *physical*
  crossbar column is free to choose (outputs are routed accordingly), so an
  optimal assignment can steer large-magnitude weights away from faulty
  cells and park zeros (which SA0 faults cannot hurt) on them.  Solved
  exactly as a linear assignment problem
  (:func:`scipy.optimize.linear_sum_assignment`).
* **Differential fragment encoding** — a fragment may store magnitudes
  directly (``cell = q``) or complemented (``cell = q_max - q``); the digital
  pedestal correction FORMS already performs (it knows the active-input
  count) recovers the true sum either way.  Complementing turns an SA1 fault
  on a small weight (large error when stored directly) into a small error,
  and vice versa, so choosing the representation per fragment halves the
  worst case.

Both are *static* decisions made at programming time from the die's fault
map (faults are testable before deployment).  Impact is measured in level
units (:func:`magnitude_fault_impact`) and end-to-end as accuracy via
:func:`fault_tolerance_study`, mirroring the Table VI variation methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..nn.data import Dataset
from ..nn.layers import Module, compressible_layers
from ..nn.trainer import evaluate
from ..reram.nonideal import FAULT_NONE, FAULT_SA0, FAULT_SA1, FaultModel
from .pipeline import FORMSConfig, LayerArtifacts, collect_layer_artifacts


# ---------------------------------------------------------------------------
# Matrix-level impact model
# ---------------------------------------------------------------------------

def magnitude_fault_impact(magnitudes: np.ndarray, mask: np.ndarray,
                           max_level: int) -> float:
    """Total |level error| of direct storage under a fault mask.

    SA0 erases the stored magnitude (error ``q``); SA1 saturates it (error
    ``q_max - q``).  Magnitude-granularity cells — the abstraction level of
    [29]; bit-sliced sub-cell faults are a refinement the conclusion does
    not depend on.
    """
    magnitudes = np.asarray(magnitudes)
    if magnitudes.shape != np.shape(mask):
        raise ValueError("magnitudes and fault mask shapes must match")
    if (magnitudes < 0).any() or (magnitudes > max_level).any():
        raise ValueError("magnitudes must lie in [0, max_level]")
    sa0 = mask == FAULT_SA0
    sa1 = mask == FAULT_SA1
    return float(magnitudes[sa0].sum() + (max_level - magnitudes[sa1]).sum())


def _pad_rows(matrix: np.ndarray, fragment_size: int) -> np.ndarray:
    rows = matrix.shape[0]
    padded = -(-rows // fragment_size) * fragment_size
    if padded == rows:
        return matrix
    pad = np.zeros((padded - rows,) + matrix.shape[1:], dtype=matrix.dtype)
    return np.concatenate([matrix, pad], axis=0)


def fragment_costs(magnitudes: np.ndarray, mask: np.ndarray, max_level: int,
                   fragment_size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-(fragment, logical column, physical column) impact costs.

    Returns ``(direct, complement)`` arrays of shape
    ``(n_fragments, cols, cols)`` where entry ``[f, l, p]`` is the impact of
    storing logical column ``l``'s fragment ``f`` on physical column ``p``
    in the given representation.
    """
    magnitudes = _pad_rows(np.asarray(magnitudes, dtype=np.float64), fragment_size)
    mask = _pad_rows(np.asarray(mask), fragment_size)
    rows, cols = magnitudes.shape
    n_frag = rows // fragment_size
    mag = magnitudes.reshape(n_frag, fragment_size, cols)
    sa0 = (mask == FAULT_SA0).reshape(n_frag, fragment_size, cols).astype(np.float64)
    sa1 = (mask == FAULT_SA1).reshape(n_frag, fragment_size, cols).astype(np.float64)
    # direct:      SA0 costs q,            SA1 costs (max - q)
    # complement:  SA0 costs (max - q),    SA1 costs q
    direct = (np.einsum("frl,frp->flp", mag, sa0)
              + np.einsum("frl,frp->flp", max_level - mag, sa1))
    complement = (np.einsum("frl,frp->flp", max_level - mag, sa0)
                  + np.einsum("frl,frp->flp", mag, sa1))
    return direct, complement


@dataclass(frozen=True)
class MitigationConfig:
    """Which of the two [29]-style mitigations to apply."""

    remap_columns: bool = True
    differential_fragments: bool = True


@dataclass
class MitigationPlan:
    """A concrete programming plan for one layer on one faulty die."""

    permutation: np.ndarray          # logical column l -> physical column perm[l]
    complement: np.ndarray           # (n_fragments, cols) bool, per logical col
    baseline_impact: float           # direct storage, identity mapping
    planned_impact: float            # after the chosen mitigations

    @property
    def impact_reduction(self) -> float:
        """Fraction of the baseline impact removed (0 = none, 1 = all)."""
        if self.baseline_impact == 0:
            return 0.0
        return 1.0 - self.planned_impact / self.baseline_impact


def plan_mitigation(magnitudes: np.ndarray, mask: np.ndarray, max_level: int,
                    fragment_size: int,
                    config: MitigationConfig = MitigationConfig()) -> MitigationPlan:
    """Choose the column assignment and fragment representations for a die."""
    direct, complement = fragment_costs(magnitudes, mask, max_level,
                                        fragment_size)
    cols = direct.shape[1]
    per_pair = np.minimum(direct, complement) if config.differential_fragments else direct
    cost_matrix = per_pair.sum(axis=0)       # (logical, physical)

    if config.remap_columns:
        logical, physical = linear_sum_assignment(cost_matrix)
        permutation = np.empty(cols, dtype=np.int64)
        permutation[logical] = physical
    else:
        permutation = np.arange(cols)

    chosen_direct = direct[:, np.arange(cols), permutation]
    chosen_complement = complement[:, np.arange(cols), permutation]
    if config.differential_fragments:
        use_complement = chosen_complement < chosen_direct
    else:
        use_complement = np.zeros_like(chosen_direct, dtype=bool)
    planned = float(np.where(use_complement, chosen_complement,
                             chosen_direct).sum())
    baseline = float(direct[:, np.arange(cols), np.arange(cols)].sum())
    return MitigationPlan(permutation=permutation, complement=use_complement,
                          baseline_impact=baseline, planned_impact=planned)


def apply_faults_to_magnitudes(magnitudes: np.ndarray, mask: np.ndarray,
                               max_level: int, fragment_size: int,
                               plan: Optional[MitigationPlan] = None) -> np.ndarray:
    """Magnitudes as realized on the faulty die, in logical column order.

    Without a plan, direct storage on the identity assignment.  With a plan,
    logical column ``l`` experiences the faults of physical column
    ``plan.permutation[l]``, and complemented fragments round-trip through
    ``q_max - q`` storage.
    """
    magnitudes = np.asarray(magnitudes)
    original_rows = magnitudes.shape[0]
    mag = _pad_rows(magnitudes.astype(np.float64), fragment_size)
    mask = _pad_rows(np.asarray(mask), fragment_size)
    rows, cols = mag.shape
    n_frag = rows // fragment_size

    if plan is None:
        perm = np.arange(cols)
        complement = np.zeros((n_frag, cols), dtype=bool)
    else:
        perm = plan.permutation
        complement = plan.complement
    phys_mask = mask[:, perm]

    comp_rows = np.repeat(complement, fragment_size, axis=0)
    stored = np.where(comp_rows, max_level - mag, mag)
    stuck = stored.copy()
    stuck[phys_mask == FAULT_SA0] = 0
    stuck[phys_mask == FAULT_SA1] = max_level
    recovered = np.where(comp_rows, max_level - stuck, stuck)
    return recovered[:original_rows].astype(magnitudes.dtype)


# ---------------------------------------------------------------------------
# Online re-map entry points (live recovery path)
# ---------------------------------------------------------------------------
#
# The functions above are *programming-time* decisions: the die's fault map
# is known before deployment and the layer is lowered once.  The serving
# stack additionally needs the same machinery *online*: a checksum guard
# (repro.reram.faults) detects that a programmed die has drifted mid-traffic,
# re-reads it against the healthy reference, and hands the diff here to (a)
# classify the stuck cells and (b) plan the [29]-style mitigations for the
# quarantined die — all while the request that tripped the detection waits
# for its bounded retry.

def diagnose_stuck_codes(reference: np.ndarray, observed: np.ndarray,
                         cell_levels: int) -> np.ndarray:
    """Cell-granularity stuck-at mask from a re-read of a suspect die.

    ``reference`` is the healthy code plane as programmed, ``observed`` the
    re-read, both shaped ``(n_fragments, fragment_size, cols, slices)`` (any
    shape works — the diff is elementwise).  Cells re-reading as the lowest
    level are classified :data:`FAULT_SA0`, the highest level
    :data:`FAULT_SA1`; a drifted-but-not-saturated cell is classified by the
    sign of its drift so the impact model stays conservative.
    """
    reference = np.asarray(reference)
    observed = np.asarray(observed)
    if reference.shape != observed.shape:
        raise ValueError("reference and observed code shapes must match")
    mask = np.zeros(reference.shape, dtype=np.int8)
    changed = observed != reference
    mask[changed & (observed <= 0)] = FAULT_SA0
    mask[changed & (observed >= cell_levels - 1)] = FAULT_SA1
    drifted = changed & (mask == FAULT_NONE)
    mask[drifted & (observed < reference)] = FAULT_SA0
    mask[drifted & (observed > reference)] = FAULT_SA1
    return mask


def plan_die_recovery(reference_codes: np.ndarray, observed_codes: np.ndarray,
                      place: np.ndarray, cell_levels: int,
                      config: MitigationConfig = MitigationConfig()
                      ) -> Tuple[np.ndarray, MitigationPlan]:
    """Diagnose a live die against its healthy reference and plan the re-map.

    The online counterpart of :func:`plan_mitigation`, working directly on
    engine geometry: bit-sliced code planes shaped
    ``(n_fragments, fragment_size, cols, slices)`` and the engine's
    shift-and-add ``place`` values.  Slices are recombined to magnitude
    granularity (the abstraction level of [29]); the fault mask is reduced
    the same way (any slice stuck low -> SA0 dominates the magnitude error,
    stuck high -> SA1).

    Returns ``(cell_mask, plan)``: the cell-granularity diagnosis (for the
    recovery receipt) and the :class:`MitigationPlan` for the quarantined
    die — used to decide whether the die could be rehabilitated in place
    (``plan.impact_reduction``) while the replacement is programmed.
    """
    reference_codes = np.asarray(reference_codes)
    observed_codes = np.asarray(observed_codes)
    if reference_codes.ndim != 4:
        raise ValueError("expected (n_fragments, fragment_size, cols, slices)"
                         f" code planes, got shape {reference_codes.shape}")
    cell_mask = diagnose_stuck_codes(reference_codes, observed_codes,
                                     cell_levels)
    place = np.asarray(place, dtype=np.float64)
    n_frag, frag_rows, cols, _ = reference_codes.shape
    max_level = int((cell_levels - 1) * place.sum())
    mag = np.einsum("fmcs,s->fmc", reference_codes.astype(np.float64), place)
    observed_mag = np.einsum("fmcs,s->fmc",
                             observed_codes.astype(np.float64), place)
    drift = observed_mag - mag
    mag_mask = np.zeros(mag.shape, dtype=np.int8)
    mag_mask[drift < 0] = FAULT_SA0
    mag_mask[drift > 0] = FAULT_SA1
    plan = plan_mitigation(mag.reshape(n_frag * frag_rows, cols),
                           mag_mask.reshape(n_frag * frag_rows, cols),
                           max_level, frag_rows, config)
    return cell_mask, plan


# ---------------------------------------------------------------------------
# Model-level study
# ---------------------------------------------------------------------------

def apply_fault_injection(model: Module, config: FORMSConfig,
                          fault_model: FaultModel,
                          mitigation: Optional[MitigationConfig] = None,
                          artifacts: Optional[Dict[str, LayerArtifacts]] = None) -> Module:
    """Return a faulty twin of ``model`` as realized on one defective die.

    Mirrors :func:`repro.reram.variation.apply_variation`: every compressible
    layer's integer weights are split into fragment-signed magnitudes, hit
    with a sampled stuck-at fault map (optionally mitigated per [29]), and
    recombined into effective real weights.
    """
    import copy
    faulty = copy.deepcopy(model)
    if artifacts is None:
        artifacts = collect_layer_artifacts(model, config)
    max_level = 2 ** (config.weight_bits - 1) - 1
    layers = dict(compressible_layers(faulty))
    for name, art in artifacts.items():
        geometry = art.geometry
        levels = geometry.matrix(art.int_weights)
        signs = np.sign(levels)
        magnitudes = np.abs(levels)
        mask = fault_model.sample(magnitudes.shape)
        plan = None
        if mitigation is not None:
            plan = plan_mitigation(magnitudes, mask, max_level,
                                   geometry.fragment_size, mitigation)
        realized = apply_faults_to_magnitudes(magnitudes, mask, max_level,
                                              geometry.fragment_size, plan)
        # SA1 can turn an exactly-zero (sign 0) weight nonzero; realize it
        # with the fragment's polarity so the sign indicator stays defined.
        frag_signs = art.signs if art.signs is not None else None
        if frag_signs is not None:
            sign_rows = np.repeat(frag_signs, geometry.fragment_size,
                                  axis=0)[:signs.shape[0]]
            signs = np.where(signs == 0, sign_rows, signs)
        weight = geometry.weight(signs * realized) * art.scale
        layers[name].weight.data[...] = weight.astype(
            layers[name].weight.data.dtype)
    return faulty


@dataclass
class FaultStudyPoint:
    """Accuracy under one fault rate, with and without mitigation."""

    sa0_rate: float
    sa1_rate: float
    unmitigated_accuracies: List[float] = field(default_factory=list)
    mitigated_accuracies: List[float] = field(default_factory=list)

    @property
    def unmitigated_mean(self) -> float:
        return float(np.mean(self.unmitigated_accuracies))

    @property
    def mitigated_mean(self) -> float:
        return float(np.mean(self.mitigated_accuracies))

    @property
    def accuracy_recovered(self) -> float:
        return self.mitigated_mean - self.unmitigated_mean


def fault_tolerance_study(model: Module, config: FORMSConfig,
                          test_set: Dataset,
                          fault_rates: Optional[List[Tuple[float, float]]] = None,
                          runs: int = 5, seed: int = 0,
                          mitigation: MitigationConfig = MitigationConfig(),
                          batch_size: int = 64) -> List[FaultStudyPoint]:
    """Accuracy vs stuck-at fault rate, with and without [29]'s mitigations.

    Each run is an independent die (fresh fault map); the same die is
    evaluated unmitigated and mitigated so the comparison is paired.
    """
    if fault_rates is None:
        fault_rates = [(0.001, 0.0001), (0.005, 0.0005), (0.02, 0.002)]
    artifacts = collect_layer_artifacts(model, config)
    points = []
    for sa0, sa1 in fault_rates:
        point = FaultStudyPoint(sa0_rate=sa0, sa1_rate=sa1)
        for run in range(runs):
            die_seed = seed + 7919 * run
            plain = apply_fault_injection(
                model, config, FaultModel(sa0, sa1, seed=die_seed),
                mitigation=None, artifacts=artifacts)
            point.unmitigated_accuracies.append(
                evaluate(plain, test_set, batch_size=batch_size).accuracy)
            fixed = apply_fault_injection(
                model, config, FaultModel(sa0, sa1, seed=die_seed),
                mitigation=mitigation, artifacts=artifacts)
            point.mitigated_accuracies.append(
                evaluate(fixed, test_set, batch_size=batch_size).accuracy)
        points.append(point)
    return points

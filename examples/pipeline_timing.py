"""Pipeline timing: zero-skipping, buffering, and the analytic model.

The FPS numbers of Figs. 13/14 come from an analytic initiation-interval
model; this example shows the machinery underneath it with the event-driven
simulator (`repro.arch.event_pipeline`):

1. measure per-position effective input cycles (EIC) of realistic
   activations at several fragment sizes (the Fig. 7/8 quantities);
2. replay those EIC sequences through the 22-stage pipeline of Fig. 12 and
   compare the simulated steady-state interval with the analytic mean-EIC
   model;
3. size the inter-layer buffer: sweep the credit count on a 3-layer chain
   and find the smallest buffer that reaches bottleneck-bound throughput.

Run:  python examples/pipeline_timing.py
"""

import numpy as np

from repro.analysis import line_chart, render_table
from repro.arch.event_pipeline import (EventPipeline, MultiLayerPipeline,
                                       layer_stage_spec)
from repro.core.zero_skip import eic_matrix

ACTIVATION_BITS = 16
FRAGMENTS = [4, 8, 16, 64]


def realistic_activations(rows=256, positions=500, seed=0) -> np.ndarray:
    """Post-ReLU-shaped integers: sparse, mostly small, occasionally large."""
    rng = np.random.default_rng(seed)
    magnitudes = rng.lognormal(mean=3.0, sigma=1.6, size=(rows, positions))
    values = np.where(rng.random((rows, positions)) < 0.45, 0.0, magnitudes)
    return np.clip(values, 0, 2 ** ACTIVATION_BITS - 1).astype(np.int64)


def main() -> None:
    activations = realistic_activations()
    spec = layer_stage_spec()

    # ------------------------------------------------------------------
    # 1-2. Zero-skipping intervals: simulated vs analytic.
    # ------------------------------------------------------------------
    rows = []
    for fragment in FRAGMENTS:
        # One row group feeds serially; its own per-position EIC sequence is
        # the feed-phase duration the pipeline sees (row groups sequence, so
        # each group is a representative server).
        per_position = eic_matrix(activations, fragment)[0]
        stats = EventPipeline(spec, per_position).run()
        analytic = float(per_position.mean())
        rows.append([fragment, analytic, stats.steady_interval,
                     ACTIVATION_BITS / stats.steady_interval])
    print(render_table(
        ["fragment", "mean EIC (analytic)", "simulated interval",
         "speedup vs no skipping"],
        rows, title="zero-skipping through the 22-stage pipeline"))
    print()

    # ------------------------------------------------------------------
    # 3. Buffer sizing on a 3-layer chain.
    # ------------------------------------------------------------------
    feeds = [eic_matrix(activations, m)[0] for m in (4, 64, 8)]
    bottleneck = max(float(feed.mean()) for feed in feeds)
    capacities = [1, 2, 4, 8, 16]
    intervals = []
    for capacity in capacities:
        chain = MultiLayerPipeline([(spec, feed) for feed in feeds],
                                   buffer_capacity=capacity).run()
        intervals.append(chain[-1].steady_interval)
    print(line_chart(capacities, {"interval (cycles)": intervals},
                     title="chain initiation interval vs buffer capacity",
                     height=9, width=40, y_fmt=".1f"))
    print(f"\nbottleneck layer's mean EIC : {bottleneck:.2f} cycles")
    enough = next(c for c, i in zip(capacities, intervals)
                  if i <= bottleneck * 1.02)
    print(f"smallest sufficient buffer  : {enough} credits "
          "(double buffering hides the credit round-trip)")


if __name__ == "__main__":
    main()

"""Ablation — ADC resolution vs fragment size (saturation study).

The paper sizes FORMS ADCs one bit below the worst-case fragment sum
(3/4/5 bits at fragments 4/8/16; worst case needs 4/5/6).  This ablation
maps a trained, polarized, quantized conv layer and drives real activations
through the bit-serial engine at both sizings, measuring ADC saturation and
output error.  Expected: the paper sizing saturates rarely on real data and
introduces only small error; one bit fewer than that degrades visibly.
"""

from functools import partial

import numpy as np

from repro.analysis import FAST, ExperimentTable, forms_config_for, train_baseline
from repro.core import FORMSPipeline
from repro.nn import functional as F
from repro.core.quantization import activation_to_int
from repro.reram import (ADCSpec, DeviceSpec, DieCache, ReRAMDevice,
                         build_engine, paper_adc_bits, required_adc_bits)
from repro.reram.variation import clone_model
from repro.runtime import parallel_map, resolve_workers


def _run_sizing(case, *, levels, geometry, quant, device, x_int, expected,
                die_cache):
    """One ADC sizing over the shared die (module-level: pickles onto the
    process backend, where each worker re-programs identical bits through
    its own per-process die cache)."""
    label, bits = case
    engine = build_engine(levels, geometry, quant, device,
                          adc=ADCSpec(bits=bits), activation_bits=8,
                          die_cache=die_cache)
    out = engine.matvec_int(x_int)
    err = float(np.abs(out - expected).sum()
                / (np.abs(expected).sum() + 1e-12))
    return label, bits, engine.stats.saturation_fraction, err


def run_ablation(seed: int = 0, workers: int = None, backend: str = None):
    baseline = train_baseline("lenet5", "mnist", FAST, seed=seed)
    rows = []
    extras = {}
    # Both ADC sizings read the same codes off the same die: share the
    # programmed conductance planes across the sweep instead of
    # re-programming per engine (DieCache is lock-protected, so the
    # concurrent sweep points below share it safely).
    die_cache = DieCache()
    workers = resolve_workers(workers)
    for fragment in (4, 8, 16):
        config = forms_config_for(FAST, "mnist", fragment_size=fragment)
        model = clone_model(baseline.model)
        result = FORMSPipeline(config).optimize(model, baseline.train_set,
                                                baseline.test_set, seed=seed)
        # second conv layer of LeNet carries the most accumulation
        name, art = list(result.layers.items())[1]
        geometry = art.geometry
        levels = geometry.matrix(art.int_weights)
        layer = dict(__import__("repro.nn", fromlist=["compressible_layers"])
                     .compressible_layers(model))[name]
        images = baseline.test_set.images[:8]
        # trace this layer's input through the model front
        front = model.features[0:3] if hasattr(model, "features") else None
        x = front(__import__("repro.nn", fromlist=["Tensor"]).Tensor(images)).data \
            if front is not None else images
        cols = F.im2col(x, layer.kernel_size, layer.kernel_size,
                        layer.stride, layer.padding)
        x_int, _ = activation_to_int(np.abs(cols), bits=8)
        expected = levels.T @ x_int
        device = ReRAMDevice(DeviceSpec(), 0.0)

        run_sizing = partial(_run_sizing, levels=levels, geometry=geometry,
                             quant=config.quant_spec(), device=device,
                             x_int=x_int, expected=expected,
                             die_cache=die_cache)
        # The two sizings are independent engine runs over one shared die.
        for label, bits, saturation, err in parallel_map(
                run_sizing, (("paper", paper_adc_bits(fragment)),
                             ("exact", required_adc_bits(fragment, 2))),
                workers=workers, backend=backend):
            rows.append([fragment, label, bits, saturation * 100.0,
                         err * 100.0])
            extras[(fragment, label)] = {
                "saturation": saturation,
                "error": err,
            }
    table = ExperimentTable(
        "Ablation: ADC resolution vs fragment size (LeNet-5 conv2, real activations)",
        ["fragment", "sizing", "ADC bits", "saturation %", "output error %"],
        rows)
    table.extras.update({"cases": extras})
    return table


def test_ablation_adc_bits(benchmark, save_table):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_table("ablation_adc_bits", result)
    benchmark.extra_info["table"] = result.rendered
    cases = result.extras["cases"]
    for fragment in (4, 8, 16):
        exact = cases[(fragment, "exact")]
        paper = cases[(fragment, "paper")]
        assert exact["saturation"] == 0.0
        assert exact["error"] == 0.0
        # the paper's one-bit-under sizing is a mild, not catastrophic, cut
        assert paper["error"] < 0.5

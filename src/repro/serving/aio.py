"""Asyncio front end: the PR-5 wire protocol at thousands of connections.

The threaded :class:`~repro.serving.http.HttpFrontend` spends one OS
thread per connection — fine for tens of clients, hopeless for the
ROADMAP's "millions of users" shape where most connections are *idle*
(queued behind the SLA scheduler, or holding a stream open).  This
module serves the **same wire protocol** from a single std-lib
``asyncio`` event loop:

* every encode/decode path is imported from :mod:`repro.serving.http`
  (``encode_array`` / ``decode_input`` / ``result_body`` /
  ``error_body`` / ``shed_body`` / ``_submit_kwargs``), so the threaded
  and async front ends *cannot* drift — one codec, two schedulers;
* request handlers bridge onto the blocking
  :meth:`~repro.serving.server.InferenceServer.submit_async` via
  ``loop.run_in_executor`` (the submit takes the server's shutdown lock
  and touches the registry — off the loop), then ``asyncio.wrap_future``
  awaits the resulting :class:`concurrent.futures.Future` without
  blocking the loop: ten thousand pending requests cost ten thousand
  coroutines, not ten thousand threads;
* ``POST /v1/infer_batch?stream=1`` answers as a **server-sent event
  stream** (``Content-Type: text/event-stream``): one event per item *in
  resolution order* (each carries its request-order ``index``), a
  terminal ``done`` summary, then the connection closes.  The event
  types are :data:`STREAM_EVENTS` — documented in ``docs/serving.md``
  and enforced by ``scripts/check_docs.py``;
* **transport backpressure** rides the same
  :class:`~repro.serving.scheduler.AdmissionController` that throttles
  queue intake: ``max_connections`` refuses new sockets,
  ``max_inflight_bytes`` refuses a request body whose declared length
  would push the resident payload bytes past the cap.  Every refusal is a
  documented :class:`~repro.serving.scheduler.ShedReceipt` (reason
  ``admission``, model/class :data:`TRANSPORT_SCOPE`) routed through
  the server's single shed-record site, so ``/metrics``, ``/v1/stats``
  and ``/v1/usage`` account transport sheds exactly like queue sheds.

Bit-identity is untouched: the front end moves bytes and dict keys; a
decoded response is bit-identical to the in-process ``submit`` result
and the serial single-image forward at any worker count, noise on or
off, JSON or base64 (``tests/serving/test_aio.py``).

Lifecycle mirrors the threaded front end: the event loop runs on one
background thread, :meth:`AsyncFrontend.start` /
:meth:`AsyncFrontend.shutdown` (drain semantics: refuse new work,
resolve or shed everything accepted, close the port), context-manager
support, ``owns_server`` deciding whether shutdown drains the inference
server too.  ``benchmarks/bench_async.py`` holds hundreds of concurrent
connections against it and records ``serving_async_r*`` curves.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from functools import partial
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs import PROMETHEUS_CONTENT_TYPE, instrument
from ..obs.trace import new_trace_id, span_dict
from ..reram.faults import DieFaultDetected
from .http import (DEFAULT_MAX_BODY_BYTES, DEFAULT_RETRY_AFTER_S,
                   _TRACE_ID_RE, WireFormatError, _submit_kwargs,
                   decode_array_b64, decode_array_json, decode_input,
                   error_body, result_body, shed_body)
from .queue import QueueClosed
from .scheduler import RequestShed, SHED_ADMISSION, ShedReceipt

#: the server-sent event types of the streaming path, in emission order
#: (``result`` / ``shed`` interleave in resolution order; exactly one
#: terminal ``done``).  check_docs.py fails the check set if any of
#: these is missing from docs/serving.md.
STREAM_EVENTS = ("result", "shed", "done")

#: model / priority-class label on transport-level shed receipts (a
#: connection or body refused before any model was named)
TRANSPORT_SCOPE = "transport"

_REASONS = {
    200: "OK", 207: "Multi-Status", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 411: "Length Required",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: asyncio stream-reader buffer limit: bounds a single header *line*
#: (an unbounded request line would buffer arbitrarily); bodies are
#: read with ``readexactly`` and bounded by ``max_body_bytes`` instead
_READER_LIMIT = 1 << 16


class _Conn:
    """Per-connection state: the writer (for drain-time closes) and
    whether a request is currently being handled (idle connections are
    closed outright at drain; busy ones finish their response first)."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False


class _Request:
    """One parsed request envelope plus the reply bookkeeping."""

    __slots__ = ("method", "path", "query", "headers", "trace_id", "close")

    def __init__(self, method: str, path: str, headers: Dict[str, str]):
        split = urlsplit(path)
        self.method = method
        self.path = split.path
        self.query = parse_qs(split.query)
        self.headers = headers
        supplied = headers.get("x-request-id")
        if supplied is not None and _TRACE_ID_RE.match(supplied):
            self.trace_id = supplied
        else:
            self.trace_id = new_trace_id()
        self.close = False

    def flag(self, name: str) -> bool:
        return self.query.get(name, ["0"])[-1] in ("1", "true", "yes")


class AsyncFrontend:
    """The asyncio front end over one :class:`InferenceServer`.

    Same constructor surface as the threaded
    :class:`~repro.serving.http.HttpFrontend` (host/port,
    ``max_body_bytes``, ``retry_after_s``, ``owns_server``, ``log``)
    plus the transport backpressure knobs:

    ``max_connections`` / ``max_inflight_bytes``:
        When either is given, the front end builds a dedicated
        :class:`~repro.serving.scheduler.AdmissionController` carrying
        just the transport caps.  When neither is given, the *server's*
        admission controller is consulted (``admit_transport`` admits
        everything on an unconfigured controller) — so one controller
        can own both the queue-intake and the transport policy.

    The listening socket, all connection handlers and the SSE streams
    run on one event loop on one daemon thread; :meth:`start` /
    :meth:`shutdown` present the same synchronous lifecycle as the
    threaded front end, so demos, benchmarks and tests drive either
    interchangeably.
    """

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0, *,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 retry_after_s: Optional[float] = DEFAULT_RETRY_AFTER_S,
                 owns_server: bool = False, log=None,
                 max_connections: Optional[int] = None,
                 max_inflight_bytes: Optional[int] = None):
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if retry_after_s is not None and retry_after_s < 0:
            raise ValueError("retry_after_s must be >= 0 (or None)")
        self.server = server
        self.max_body_bytes = max_body_bytes
        self.retry_after_s = retry_after_s
        self.owns_server = owns_server
        self.log = log
        if max_connections is not None or max_inflight_bytes is not None:
            from .scheduler import AdmissionController
            self.admission = AdmissionController(
                max_connections=max_connections,
                max_inflight_bytes=max_inflight_bytes)
        else:
            self.admission = getattr(server, "admission", None)
        self._requested = (host, port)
        self._draining = False
        self._shut_down = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._aio_server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._sockname: Tuple[str, int] = (host, port)
        # loop-thread-only gauges (read cross-thread by scrape hooks —
        # plain int reads are atomic under the GIL)
        self._conns: set = set()
        self._inflight_bytes = 0
        self.peak_connections = 0
        obs = server.obs
        self._m_conns = instrument(obs.metrics, "forms_async_connections")
        self._m_bytes = instrument(obs.metrics, "forms_async_inflight_bytes")
        self._m_streams = instrument(obs.metrics, "forms_streams_total")
        self._m_events = instrument(obs.metrics, "forms_stream_events_total")
        obs.add_scrape_hook(self._refresh_gauges)

    # -- address -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self._sockname[0]

    @property
    def port(self) -> int:
        return self._sockname[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def connections(self) -> int:
        """Open sockets right now (a racy gauge, like queue depth)."""
        return len(self._conns)

    def _refresh_gauges(self) -> None:
        self._m_conns.set(len(self._conns))
        self._m_bytes.set(self._inflight_bytes)

    def _log(self, line: str) -> None:
        if self.log is not None:
            self.log(line)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "AsyncFrontend":
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._thread = threading.Thread(target=self._run_loop,
                                        name="forms-aio", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            error, self._start_error = self._start_error, None
            self._thread.join()
            raise error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            host, port = self._requested
            self._aio_server = loop.run_until_complete(asyncio.start_server(
                self._handle_connection, host, port, limit=_READER_LIMIT))
            self._sockname = \
                self._aio_server.sockets[0].getsockname()[:2]
        except BaseException as exc:   # surface bind errors to start()
            self._start_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            # resolve any still-pending callbacks, then free the loop
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Drain and stop.  Idempotent; same order as the threaded end:
        (1) flip :attr:`draining` so new POSTs answer 503
        ``"shutting_down"``; (2) drain the owned inference server — every
        accepted request resolves (served or shed with a receipt), so
        handlers and streams blocked on futures finish with real bytes,
        never a wedged socket; (3) close the listener, close idle
        keep-alive connections, wait out busy handlers, stop the loop."""
        if self._shut_down:
            return
        self._shut_down = True
        self._draining = True
        if self.owns_server:
            self.server.shutdown(timeout)
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        bound = timeout if timeout is not None else 10.0
        if thread.is_alive():
            drain = asyncio.run_coroutine_threadsafe(
                self._drain_async(bound), loop)
            try:
                drain.result(bound + 1.0)
            except Exception:   # noqa: BLE001 — shutdown must not raise
                pass
            loop.call_soon_threadsafe(loop.stop)
        thread.join(bound)

    async def _drain_async(self, timeout: float) -> None:
        if self._aio_server is not None:
            self._aio_server.close()
            await self._aio_server.wait_closed()
        # idle keep-alive connections are parked in readline() waiting
        # for a request that will never come — close them outright;
        # busy ones flush their in-flight response first
        for conn in list(self._conns):
            if not conn.busy:
                conn.writer.close()
        deadline = time.monotonic() + timeout
        while self._conns and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for conn in list(self._conns):   # stragglers: abort, never hang
            conn.writer.close()

    def __enter__(self) -> "AsyncFrontend":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- wire plumbing -------------------------------------------------------
    def _head(self, status: int, content_type: str,
              length: Optional[int], *, trace_id: Optional[str] = None,
              retry_after: Optional[float] = None,
              close: bool = False) -> bytes:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 "Server: forms-serving-aio/1",
                 f"Content-Type: {content_type}"]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        if trace_id is not None:
            lines.append(f"X-Request-Id: {trace_id}")
        if retry_after is not None:
            lines.append(f"Retry-After: {retry_after:g}")
        lines.append("Connection: close" if close else
                     "Connection: keep-alive")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _reply(self, writer: asyncio.StreamWriter, request: _Request,
                     status: int, body: Dict) -> None:
        retry_after = self.retry_after_s if status == 503 else None
        error = body.get("error")
        if isinstance(error, dict):
            if retry_after is not None:
                error.setdefault("retry_after_s", retry_after)
            error.setdefault("trace_id", request.trace_id)
        data = json.dumps(body).encode("utf-8")
        writer.write(self._head(status, "application/json", len(data),
                                trace_id=request.trace_id,
                                retry_after=retry_after,
                                close=request.close) + data)
        await writer.drain()

    async def _reply_error(self, writer, request, status: int, code: str,
                           message: str, **extra) -> None:
        await self._reply(writer, request, status,
                          error_body(code, message, **extra))

    async def _reply_text(self, writer, request, status: int, text: str,
                          content_type: str = PROMETHEUS_CONTENT_TYPE
                          ) -> None:
        data = text.encode("utf-8")
        writer.write(self._head(status, content_type, len(data),
                                trace_id=request.trace_id,
                                close=request.close) + data)
        await writer.drain()

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[List[str], Dict[str, str]]]:
        """Parse one request head; ``None`` means EOF / unparseable."""
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").split()
        headers: Dict[str, str] = {}
        while True:
            try:
                hline = await reader.readline()
            except (ValueError, ConnectionError, asyncio.LimitOverrunError):
                return None
            if hline in (b"\r\n", b"\n", b""):
                break
            name, sep, value = hline.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return parts, headers

    def _transport_shed(self, trace_id: str, detail: str) -> RequestShed:
        """Build + account one transport-level admission refusal.

        The receipt rides the server's single shed-record site, so the
        stats window, ``forms_requests_shed_total`` and the usage meter
        bill transport sheds under :data:`TRANSPORT_SCOPE` exactly like
        queue sheds — the acceptance criterion's "sheds only as
        documented receipts" includes backpressure.
        """
        receipt = ShedReceipt(
            request_id=-1, model=TRANSPORT_SCOPE,
            priority_class=TRANSPORT_SCOPE, reason=SHED_ADMISSION,
            queue_wait_s=0.0, trace_id=trace_id)
        record = getattr(self.server, "_record_shed", None)
        if record is not None:
            record(receipt)
        self._log(f"transport shed: {detail}")
        return RequestShed(receipt)

    # -- connection loop -----------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if (self.admission is not None
                and not self.admission.admit_transport(
                    len(self._conns), self._inflight_bytes)):
            # refused before reading a byte: answer 503 shed and close
            # (our client reads the early response instead of the pipe)
            request = _Request("", "/", {})
            request.close = True
            exc = self._transport_shed(request.trace_id,
                                       f"connection refused at "
                                       f"{len(self._conns)} open")
            try:
                await self._reply(writer, request, 503, shed_body(exc))
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        conn = _Conn(writer)
        self._conns.add(conn)
        self.peak_connections = max(self.peak_connections, len(self._conns))
        try:
            while True:
                head = await self._read_request(reader)
                if head is None:
                    break
                conn.busy = True
                try:
                    keep = await self._dispatch(reader, writer, head)
                finally:
                    conn.busy = False
                if not keep or self._draining:
                    break
        except (ConnectionError, OSError):
            pass   # client went away; accepted work still resolves
        finally:
            self._conns.discard(conn)
            writer.close()

    async def _dispatch(self, reader, writer, head) -> bool:
        """Serve one request; returns whether to keep the connection."""
        parts, headers = head
        if len(parts) != 3:
            request = _Request("", "/", headers)
            request.close = True
            await self._reply_error(writer, request, 400, "invalid_request",
                                    "unparseable request line")
            return False
        request = _Request(parts[0], parts[1], headers)
        if headers.get("connection", "").lower() == "close":
            request.close = True
        try:
            if request.method == "GET":
                await self._handle_get(writer, request)
            elif request.method == "POST":
                await self._handle_post(reader, writer, request)
            else:
                request.close = True
                await self._reply_error(
                    writer, request, 405, "method_not_allowed",
                    f"method {request.method!r} is not part of the protocol")
        except (ConnectionError, OSError):
            return False
        self._log(f"{request.method} {request.path}")
        return not request.close

    # -- GET endpoints -------------------------------------------------------
    async def _handle_get(self, writer, request: _Request) -> None:
        server = self.server
        loop = asyncio.get_running_loop()
        path = request.path
        if path == "/healthz":
            await self._handle_healthz(writer, request)
        elif path == "/v1/stats":
            body = await loop.run_in_executor(None, server.server_stats)
            await self._reply(writer, request, 200, body)
        elif path == "/v1/models":
            body = await loop.run_in_executor(None, server.registry_stats)
            await self._reply(writer, request, 200, body)
        elif path == "/metrics":
            text = await loop.run_in_executor(None, server.metrics_text)
            await self._reply_text(writer, request, 200, text)
        elif path == "/v1/usage":
            body = await loop.run_in_executor(None, server.usage_snapshot)
            await self._reply(writer, request, 200, body)
        elif path.startswith("/v1/trace/"):
            record = server.trace(path[len("/v1/trace/"):])
            if record is None:
                await self._reply_error(
                    writer, request, 404, "not_found",
                    "no stored trace for that id (never seen, evicted "
                    "from the ring, or tracing is disabled)")
            else:
                await self._reply(writer, request, 200, record)
        elif path in ("/v1/infer", "/v1/infer_batch"):
            await self._reply_error(writer, request, 405,
                                    "method_not_allowed",
                                    f"{path} requires POST")
        else:
            await self._reply_error(writer, request, 404, "not_found",
                                    f"unknown path {path!r}")

    async def _handle_healthz(self, writer, request: _Request) -> None:
        draining = self.draining
        body = {
            "status": "draining" if draining else "ok",
            "draining": draining,
            "models": self.server.registry.names(),
        }
        health = getattr(self.server, "die_health", None)
        if health is not None:
            body["dies"] = health.counts()
            if not draining and health.degraded:
                body["status"] = "degraded"
        await self._reply(writer, request, 503 if draining else 200, body)

    # -- POST endpoints ------------------------------------------------------
    async def _read_body(self, reader, writer,
                         request: _Request) -> Optional[bytes]:
        """Bounded body read mirroring the threaded ``_read_body``."""
        length_header = request.headers.get("content-length")
        if length_header is None:
            request.close = True
            await self._reply_error(writer, request, 411, "length_required",
                                    "POST requires a Content-Length header")
            return None
        try:
            length = int(length_header)
            if length < 0:
                raise ValueError
        except ValueError:
            request.close = True
            await self._reply_error(
                writer, request, 400, "invalid_request",
                "Content-Length is not a non-negative integer")
            return None
        if length > self.max_body_bytes:
            request.close = True
            await self._reply_error(
                writer, request, 413, "body_too_large",
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte bound",
                max_body_bytes=self.max_body_bytes)
            return None
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            request.close = True
            await self._reply_error(writer, request, 400, "invalid_request",
                                    "truncated request body")
            return None

    async def _handle_post(self, reader, writer, request: _Request) -> None:
        if request.path not in ("/v1/infer", "/v1/infer_batch"):
            request.close = True
            if request.path in ("/healthz", "/v1/stats", "/v1/models",
                                "/metrics", "/v1/usage") \
                    or request.path.startswith("/v1/trace/"):
                await self._reply_error(writer, request, 405,
                                        "method_not_allowed",
                                        f"{request.path} requires GET")
            else:
                await self._reply_error(writer, request, 404, "not_found",
                                        f"unknown path {request.path!r}")
            return
        try:
            declared = max(0, int(request.headers.get("content-length", 0)))
        except ValueError:
            declared = 0   # _read_body rejects the bad header with a 400
        if (self.admission is not None
                and not self.admission.admit_transport(
                    len(self._conns), self._inflight_bytes + declared)):
            # refuse before buffering the body — the whole point of the
            # inflight-bytes bound: the check charges the *declared*
            # length, so a body that would push residency past the cap
            # never gets read.  Unread body ⇒ the connection cannot be
            # reused.
            request.close = True
            exc = self._transport_shed(
                request.trace_id,
                f"body of {declared} bytes refused at "
                f"{self._inflight_bytes} bytes in flight")
            await self._reply(writer, request, 503, shed_body(exc))
            return
        body = await self._read_body(reader, writer, request)
        if body is None:
            return
        if self.draining:
            await self._reply_error(writer, request, 503, "shutting_down",
                                    "the server is draining; request refused")
            return
        self._inflight_bytes += len(body)
        try:
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                await self._reply_error(
                    writer, request, 400, "malformed_json",
                    f"request body is not valid JSON: {exc}")
                return
            if not isinstance(payload, dict):
                await self._reply_error(writer, request, 400,
                                        "malformed_json",
                                        "request body must be a JSON object")
                return
            try:
                if request.path == "/v1/infer":
                    await self._handle_infer(writer, request, payload)
                else:
                    await self._handle_infer_batch(writer, request, payload)
            except WireFormatError as exc:
                await self._reply_error(writer, request, exc.status,
                                        exc.code, str(exc))
            except RequestShed as exc:
                await self._reply(writer, request, 503, shed_body(exc))
            except QueueClosed as exc:
                await self._reply_error(writer, request, 503,
                                        "shutting_down", str(exc))
            except DieFaultDetected as exc:
                await self._reply_error(writer, request, 503, "die_fault",
                                        str(exc))
            except RuntimeError as exc:
                if "shut down" in str(exc):
                    await self._reply_error(writer, request, 503,
                                            "shutting_down", str(exc))
                else:
                    await self._reply_error(writer, request, 500,
                                            "internal", str(exc))
            except (ConnectionError, OSError):
                raise
            except Exception as exc:   # noqa: BLE001 — the wire must answer
                await self._reply_error(writer, request, 500, "internal",
                                        f"{type(exc).__name__}: {exc}")
        finally:
            self._inflight_bytes -= len(body)

    async def _submit(self, image, kwargs) -> asyncio.Future:
        """The executor bridge: enqueue off-loop, await without blocking."""
        loop = asyncio.get_running_loop()
        try:
            future = await loop.run_in_executor(
                None, partial(self.server.submit_async, image, **kwargs))
        except ValueError as exc:
            raise WireFormatError(400, "invalid_input", str(exc))
        return asyncio.wrap_future(future, loop=loop)

    async def _handle_infer(self, writer, request: _Request,
                            payload: Dict) -> None:
        image, binary = decode_input(payload)
        kwargs = _submit_kwargs(self.server, payload)
        kwargs["trace_id"] = request.trace_id
        result = await (await self._submit(image, kwargs))
        await self._reply(writer, request, 200, result_body(result, binary))

    async def _handle_infer_batch(self, writer, request: _Request,
                                  payload: Dict) -> None:
        has_json = "inputs" in payload
        has_b64 = "inputs_b64" in payload
        raw = payload.get("inputs_b64" if has_b64 else "inputs")
        if has_json == has_b64 or not isinstance(raw, list) or not raw:
            raise WireFormatError(
                400, "invalid_request",
                "pass exactly one non-empty list: 'inputs' (nested JSON "
                "arrays) or 'inputs_b64' (base64 .npy strings)")
        binary = has_b64
        images = [decode_array_b64(item) if binary
                  else decode_array_json(item) for item in raw]
        kwargs = _submit_kwargs(self.server, payload)
        kwargs["trace_id"] = request.trace_id
        loop = asyncio.get_running_loop()
        futures: List[asyncio.Future] = []
        submit_error = None
        for index, image in enumerate(images):
            try:
                raw_future = await loop.run_in_executor(
                    None,
                    partial(self.server.submit_async, image, **kwargs))
            except (ValueError, RuntimeError) as exc:
                submit_error = (index, exc)
                break
            futures.append(asyncio.wrap_future(raw_future, loop=loop))
        if submit_error is not None:
            # never strand what was already enqueued
            for future in futures:
                try:
                    await future
                except RequestShed:
                    pass
            index, exc = submit_error
            if isinstance(exc, RuntimeError) and "shut down" in str(exc):
                code, status = "shutting_down", 503
            else:
                code, status = "invalid_input", 400
            await self._reply_error(writer, request, status, code,
                                    f"inputs[{index}]: {exc}", index=index)
            return
        if request.flag("stream"):
            await self._stream_results(writer, request, futures, binary)
            return
        items: List[Dict] = []
        served = shed = 0
        for future in futures:
            try:
                result = await future
                items.append(result_body(result, binary))
                served += 1
            except RequestShed as exc:
                items.append(shed_body(exc))
                shed += 1
        status = 200 if shed == 0 else (503 if served == 0 else 207)
        await self._reply(writer, request, status,
                          {"results": items, "completed": served,
                           "shed": shed})

    # -- the SSE streaming path ----------------------------------------------
    async def _write_event(self, writer, event: str, body: Dict) -> None:
        assert event in STREAM_EVENTS, f"undocumented event type {event!r}"
        data = json.dumps(body)
        writer.write(f"event: {event}\ndata: {data}\n\n".encode("utf-8"))
        await writer.drain()
        self._m_events.labels(event).inc()

    async def _stream_results(self, writer, request: _Request,
                              futures: List[asyncio.Future],
                              binary: bool) -> None:
        """Emit one SSE event per item *as it resolves* plus a ``done``.

        Events carry the request-order ``index`` so an out-of-order
        resolution is still attributable; a shed item is an event, not a
        dropped stream.  A client that disconnects mid-stream aborts the
        emission only — the enqueued work still resolves server-side
        (receipts and all), so a torn stream never strands a future.
        """
        start = time.perf_counter()
        request.close = True   # SSE has no Content-Length: close delimits
        writer.write(self._head(200, "text/event-stream", None,
                                trace_id=request.trace_id, close=True)
                     .replace(b"\r\n\r\n",
                              b"\r\nCache-Control: no-store\r\n\r\n"))
        await writer.drain()

        async def resolve(index: int, future: asyncio.Future):
            try:
                return index, await future, None
            except RequestShed as exc:
                return index, None, exc

        tasks = [asyncio.ensure_future(resolve(index, future))
                 for index, future in enumerate(futures)]
        served = shed = 0
        outcome = "completed"
        try:
            for task in asyncio.as_completed(tasks):
                index, result, exc = await task
                if exc is None:
                    body = result_body(result, binary)
                    body["index"] = index
                    await self._write_event(writer, "result", body)
                    served += 1
                else:
                    body = shed_body(exc)
                    body["index"] = index
                    error = body["error"]
                    if self.retry_after_s is not None:
                        error.setdefault("retry_after_s", self.retry_after_s)
                    error.setdefault("trace_id", request.trace_id)
                    await self._write_event(writer, "shed", body)
                    shed += 1
            await self._write_event(writer, "done",
                                    {"completed": served, "shed": shed})
        except (ConnectionError, OSError):
            outcome = "aborted"
            for task in tasks:   # drain: the futures resolve regardless
                try:
                    await task
                except Exception:   # noqa: BLE001 — already accounted
                    pass
            raise
        finally:
            self._m_streams.labels(outcome).inc()
            obs = self.server.obs
            if obs.tracing:
                obs.traces.put({
                    "trace_id": f"{request.trace_id}.stream",
                    "stream": {"outcome": outcome, "completed": served,
                               "shed": shed, "items": len(futures)},
                    "spans": [span_dict(
                        "stream", time.perf_counter() - start,
                        start_s=0.0, outcome=outcome, items=len(futures),
                        completed=served, shed=shed)],
                })

"""Parallel execution runtime for the in-situ simulation stack.

The scheduler/executor split of the engine layer: the engines *schedule*
work (CSR job lists over the activation block's nonzero structure — see
``repro.reram.engine``), this package *executes* it — independent job
chunks within one MVM, independent batch tiles across a whole-network
forward pass, and independent sweep points across DSE/ablation grids all
fan out over one :class:`WorkerPool`.

Determinism is a hard contract: every fan-out path produces bit-identical
results and identical :class:`~repro.reram.engine.EngineStats` at any
worker count (including 1 and the no-pool serial path).  Engines keep
per-worker stats locals merged under a lock at join, and
:class:`~repro.reram.nonideal.ReadNoise` draws per-job keyed substreams,
so even noisy inference is worker-count invariant.
"""

from .executor import WorkerPool, parallel_map, resolve_workers
from .network import (attach_pool, detach_pool, evaluate_tiled, infer_tiled,
                      infer_tiles, iter_tiles, run_network_serial)

__all__ = [
    "WorkerPool", "parallel_map", "resolve_workers",
    "attach_pool", "detach_pool", "evaluate_tiled", "infer_tiled",
    "infer_tiles", "iter_tiles", "run_network_serial",
]

#!/usr/bin/env python
"""Stand up the batching inference server and serve synthetic traffic.

The quickest way to *see* the serving layer work::

    python scripts/serve_demo.py
    python scripts/serve_demo.py --requests 32 --rate 400 --max-batch 8

Builds the FORMS-shaped demo CNN, replays open-loop Poisson arrivals
through :class:`repro.serving.InferenceServer`, checks every output
bit-identical to a direct serial single-image forward, and prints
per-request receipts (queue wait, batch ridden, conversions) plus the
server's operational snapshot.  Equivalent to ``python -m repro serve``.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving.demo import run_demo                          # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=16)
    parser.add_argument("--rate", type=float, default=200.0,
                        help="Poisson arrival rate in requests/s")
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    run_demo(requests=args.requests, rate_rps=args.rate,
             max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
             workers=args.workers, seed=args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 6 — test accuracy vs fragment size (CIFAR-100, C-major).

Polarization-only ADMM sweep over m = 1..128 for VGG-16 / ResNet-18 /
ResNet-50 stand-ins.  Expected shape: flat accuracy through small fragments
(m = 1 trivially unconstrained; 4/8 near-lossless) with degradation growing
toward coarse fragments (m = 64/128) — the core motivation for fine-grained
sub-arrays.
"""

import numpy as np

from repro.analysis import FAST, fragment_size_sweep


def test_fig6_fragment_sweep(benchmark, save_table):
    sizes = (1, 4, 8, 16, 32, 64, 128)
    result = benchmark.pedantic(
        lambda: fragment_size_sweep(("vgg16", "resnet18", "resnet50"),
                                    "cifar100", sizes=sizes, scale=FAST, seed=0),
        rounds=1, iterations=1)
    save_table("fig6_fragment_sweep", result)
    benchmark.extra_info["table"] = result.rendered
    curves = result.extras["curves"]
    for model, accs in curves.items():
        fine = np.mean(accs[:3])    # m = 1, 4, 8
        coarse = np.mean(accs[-2:])  # m = 64, 128
        assert fine >= coarse - 2.0, \
            f"{model}: fine fragments should not underperform coarse ones"

"""Weight-initialization schemes.

The layer constructors default to He-normal (conv) and fan-in uniform
(linear); this module adds the standard alternatives — Xavier/Glorot,
He-uniform, orthogonal — plus :func:`reinitialize` to re-seed a built model
under any scheme.  Initialization interacts with the FORMS flow through the
pre-training baseline: ADMM starts from a *trained* model, so the examples
use these helpers when constructing fresh baselines.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from .layers import DEFAULT_DTYPE, Conv2d, Linear, Module


def fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """(fan_in, fan_out) of a conv ``(OC, C, KH, KW)`` or linear ``(OUT, IN)``
    weight."""
    if len(shape) == 4:
        oc, c, kh, kw = shape
        receptive = kh * kw
        return c * receptive, oc * receptive
    if len(shape) == 2:
        out_features, in_features = shape
        return in_features, out_features
    raise ValueError(f"unsupported weight shape {shape}")


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform: variance balanced between forward and backward."""
    fan_in, fan_out = fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = fan_in_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(DEFAULT_DTYPE)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform for ReLU networks."""
    fan_in, _ = fan_in_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = fan_in_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(DEFAULT_DTYPE)


def orthogonal(shape: Tuple[int, ...], rng: np.random.Generator,
               gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization (QR of a Gaussian), flattened to 2-D."""
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))       # make the decomposition unique
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).reshape(shape).astype(DEFAULT_DTYPE)


SCHEMES: Dict[str, callable] = {
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "orthogonal": orthogonal,
}


def reinitialize(model: Module, scheme: str = "he_normal",
                 seed: int = 0) -> Module:
    """Re-draw every conv/linear weight of ``model`` in place.

    Biases reset to zero; BatchNorm parameters are left at their identity
    defaults.  Returns the model for chaining.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; options: {sorted(SCHEMES)}")
    init = SCHEMES[scheme]
    rng = np.random.default_rng(seed)
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)):
            module.weight.data[...] = init(module.weight.data.shape, rng)
            if module.bias is not None:
                module.bias.data[...] = 0.0
    return model

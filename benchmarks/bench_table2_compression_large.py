"""Table II — compression on CIFAR-100 and ImageNet stand-ins.

ResNet-18/50 and VGG-16 with milder pruning (DATASET_KEEP encodes the paper's
regime: ImageNet tolerates far less pruning than CIFAR).  Expected shape:
lower crossbar reductions than Table I and larger accuracy drops at
fragment 16.
"""

from repro.analysis import FAST, table2


def test_table2_compression(benchmark, save_table):
    result = benchmark.pedantic(lambda: table2(FAST, seed=0),
                                rounds=1, iterations=1)
    save_table("table2_compression_large", result)
    benchmark.extra_info["table"] = result.rendered
    cifar = [r for r in result.rows if "cifar100" in r[0]]
    imagenet = [r for r in result.rows if "imagenet" in r[0]]
    assert cifar and imagenet
    # ImageNet rows use a milder prune regime than CIFAR-100 rows (paper).
    avg = lambda rows: sum(r[2] for r in rows) / len(rows)
    assert avg(imagenet) <= avg(cifar) + 0.5

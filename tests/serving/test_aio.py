"""The asyncio front end's core contract: same wire, same bits, plus SSE.

The :class:`~repro.serving.aio.AsyncFrontend` speaks the exact protocol
of the threaded front end (it imports the same encode/decode helpers),
so the acceptance matrix is the same: a decoded ``POST /v1/infer``
response must be **bit-identical** to the in-process
``InferenceServer.submit`` result and to the serial single-image
forward — at any worker count, read noise on and off, JSON or base64
payloads.  On top of that, the async-only surfaces: SSE streaming
(``POST /v1/infer_batch?stream=1``), connection-count and
inflight-byte transport backpressure (explicit ``transport``-scoped
shed receipts), and the multiplexed keep-alive connection handling.
"""

import socket
import threading

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.perf.suite import _post_relu_network
from repro.reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
from repro.reram.nonideal import ReadNoise
from repro.reram.nonideal_engine import NonidealEngine
from repro.runtime import run_network_serial
from repro.serving import (STREAM_EVENTS, TRANSPORT_SCOPE, AsyncFrontend,
                           HttpClient, HttpError, InferenceServer,
                           ModelRegistry, PriorityClass, SlaPolicy,
                           WireResult)

WORKER_COUNTS = (1, 3)


@pytest.fixture(scope="module")
def network_case():
    model, config, images = _post_relu_network()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    return model, config, images, device, adc


def make_server(network_case, *, noise=False, **kwargs):
    model, config, images, device, adc = network_case
    build = dict(adc=adc, activation_bits=12)
    if noise:
        spec = DeviceSpec()
        build["engine_cls"] = NonidealEngine
        build["read_noise"] = ReadNoise.for_fragment(
            config.fragment_size, spec.g_max, spec.read_voltage,
            relative_sigma=0.05, seed=3)
    return InferenceServer.from_model(model, config, device,
                                      **build, **kwargs)


class TestAsyncWireBitIdentity:
    """The acceptance matrix, through the event loop: workers x
    {ideal, read noise} x {json, b64}, decoded async-wire output ==
    in-process submit == serial single-image forward."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("noise", [False, True],
                             ids=["ideal", "read_noise"])
    @pytest.mark.parametrize("binary", [False, True], ids=["json", "b64"])
    def test_infer_matrix(self, network_case, workers, noise, binary):
        images = network_case[2][:3]
        decoded = []
        with make_server(network_case, noise=noise, workers=workers,
                         max_batch=4, max_wait_s=0.02) as server:
            with AsyncFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                for image in images:
                    wire = client.infer(image, binary=binary)
                    inproc = server.submit(image)
                    np.testing.assert_array_equal(wire.output, inproc.output)
                    decoded.append(wire.output)
            serial = run_network_serial(server.model, images, tile_size=1)
        for output, reference in zip(decoded, serial):
            np.testing.assert_array_equal(output, reference)

    def test_infer_batch_equals_submit_many(self, network_case):
        images = network_case[2]
        with make_server(network_case, workers=2, max_batch=4,
                         max_wait_s=0.05) as server:
            with AsyncFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                wire = client.infer_batch(images)
                inproc = server.submit_many(images)
        assert len(wire) == len(inproc)
        for wired, direct in zip(wire, inproc):
            np.testing.assert_array_equal(wired.output, direct.output)

    def test_keep_alive_reuses_one_connection(self, network_case):
        """Several requests down one raw socket — the multiplexing the
        front end exists for — all bit-exact."""
        images = network_case[2][:3]
        with make_server(network_case, workers=1, max_batch=4,
                         max_wait_s=0.01) as server:
            with AsyncFrontend(server) as frontend:
                import json as jsonlib
                sock = socket.create_connection((frontend.host,
                                                 frontend.port), timeout=10)
                try:
                    fp = sock.makefile("rb")
                    outputs = []
                    for image in images:
                        body = jsonlib.dumps(
                            {"input": image.tolist()}).encode()
                        sock.sendall(
                            b"POST /v1/infer HTTP/1.1\r\nHost: t\r\n"
                            b"Content-Type: application/json\r\n"
                            b"Content-Length: %d\r\n\r\n" % len(body) + body)
                        status = fp.readline().split()[1]
                        assert status == b"200"
                        length = None
                        while True:
                            line = fp.readline()
                            if line in (b"\r\n", b""):
                                break
                            if line.lower().startswith(b"content-length:"):
                                length = int(line.split(b":")[1])
                        payload = jsonlib.loads(fp.read(length))
                        outputs.append(WireResult.from_body(payload).output)
                finally:
                    sock.close()
            serial = run_network_serial(server.model, images, tile_size=1)
        for output, reference in zip(outputs, serial):
            np.testing.assert_array_equal(output, reference)


class TestSseStreaming:
    @pytest.mark.parametrize("binary", [False, True], ids=["json", "b64"])
    def test_stream_bit_identical_and_complete(self, network_case, binary):
        images = network_case[2][:4]
        with make_server(network_case, workers=2, max_batch=4,
                         max_wait_s=0.02) as server:
            with AsyncFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                events = list(client.infer_batch_stream(images,
                                                        binary=binary))
            serial = run_network_serial(server.model, images, tile_size=1)
        assert events[-1][0] == "done"
        assert events[-1][1] == {"completed": len(images), "shed": 0}
        results = [event for event in events[:-1]]
        assert all(event == "result" for event, _ in results)
        # every index exactly once, each item bit-exact vs serial
        indices = sorted(data["index"] for _, data in results)
        assert indices == list(range(len(images)))
        for _, data in results:
            decoded = WireResult.from_body(data)
            np.testing.assert_array_equal(decoded.output,
                                          serial[data["index"]])

    def test_stream_event_types_are_documented(self, network_case):
        """Every event type the stream can emit is in STREAM_EVENTS —
        the catalog check_docs pins to docs/serving.md."""
        images = network_case[2][:2]
        with make_server(network_case, workers=1) as server:
            with AsyncFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                events = list(client.infer_batch_stream(images))
        assert {event for event, _ in events} <= set(STREAM_EVENTS)

    def test_stream_shed_items_are_events_not_errors(self):
        """A shed inside a stream is a ``shed`` event with a receipt;
        the stream still terminates with a consistent ``done``."""
        registry = ModelRegistry(workers=1)
        registry.register_network(
            "toy", lambda t: Tensor(t.data.reshape(t.data.shape[0], -1)))
        policy = SlaPolicy((PriorityClass("only", max_batch=2,
                                          max_wait_s=0.001),))
        with registry, InferenceServer(registry=registry,
                                       policy=policy) as server:
            with AsyncFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                events = list(client.infer_batch_stream(
                    np.ones((3, 4)), model="toy", priority="only",
                    deadline_ms=1e-6))   # already overdue: all shed
        kinds = [event for event, _ in events]
        assert kinds[-1] == "done"
        sheds = [data for event, data in events if event == "shed"]
        assert sheds, "an overdue deadline must shed"
        for data in sheds:
            assert data["error"]["code"] == "shed"
            assert "receipt" in data["error"]
            assert "index" in data
        done = events[-1][1]
        assert done["shed"] == len(sheds)
        assert done["completed"] == len(events) - 1 - len(sheds)

    def test_stream_on_threaded_frontend_is_plain_batch(self, network_case):
        """The threaded front end ignores the stream flag (no SSE) but
        still answers the batch correctly — the degenerate case."""
        from repro.serving import HttpFrontend
        images = network_case[2][:2]
        with make_server(network_case, workers=1) as server:
            with HttpFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                with pytest.raises(HttpError) as err:
                    list(client.infer_batch_stream(images))
        # not SSE: the client refuses to parse a non-event-stream reply
        assert err.value.status in (200, 400, 404)


class TestTransportBackpressure:
    def _toy_frontend(self, **caps):
        registry = ModelRegistry(workers=1)
        registry.register_network(
            "toy", lambda t: Tensor(t.data.reshape(t.data.shape[0], -1)))
        server = InferenceServer(registry=registry)
        frontend = AsyncFrontend(server, owns_server=True, **caps).start()
        return frontend, server

    def test_connection_cap_sheds_with_receipt(self):
        frontend, server = self._toy_frontend(max_connections=2)
        holders = [socket.create_connection((frontend.host, frontend.port),
                                            timeout=5) for _ in range(2)]
        try:
            client = HttpClient.for_frontend(frontend)
            client.retries = 0
            with pytest.raises(HttpError) as err:
                client.stats()
            assert err.value.status == 503
            assert err.value.code == "shed"
            receipt = err.value.receipt
            assert receipt["reason"] == "admission"
            assert receipt["model"] == TRANSPORT_SCOPE
            assert receipt["priority_class"] == TRANSPORT_SCOPE
            # the refusal is billed like any shed
            assert server.stats.snapshot()["requests_shed"] >= 1
        finally:
            for sock in holders:
                sock.close()
            frontend.shutdown()

    def test_connection_cap_recovers_after_release(self):
        frontend, server = self._toy_frontend(max_connections=2)
        try:
            holder = socket.create_connection(
                (frontend.host, frontend.port), timeout=5)
            holder.close()
            client = HttpClient.for_frontend(frontend)
            result = client.infer(np.ones(4), model="toy")
            np.testing.assert_array_equal(result.output, np.ones(4))
        finally:
            frontend.shutdown()

    def test_inflight_bytes_cap_sheds_posts(self):
        frontend, server = self._toy_frontend(max_inflight_bytes=1)
        try:
            client = HttpClient.for_frontend(frontend)
            client.retries = 0
            # GETs carry no body: they pass the byte cap
            assert client.healthz()["status"] == "ok"
            with pytest.raises(HttpError) as err:
                client.infer(np.ones((64, 64)), model="toy")
            assert err.value.status == 503
            assert err.value.code == "shed"
            assert err.value.receipt["model"] == TRANSPORT_SCOPE
        finally:
            frontend.shutdown()

    def test_peak_connections_gauge(self):
        frontend, server = self._toy_frontend()
        try:
            socks = [socket.create_connection(
                (frontend.host, frontend.port), timeout=5)
                for _ in range(5)]
            # the accept loop races the asserts: wait until all are seen
            deadline = 50
            while frontend.peak_connections < 5 and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            assert frontend.peak_connections >= 5
            for sock in socks:
                sock.close()
        finally:
            frontend.shutdown()


class TestAsyncOperationalEndpoints:
    def test_get_surface_matches_threaded(self, network_case):
        with make_server(network_case, workers=1) as server:
            with AsyncFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                assert client.healthz()["status"] == "ok"
                assert "default" in client.models()["models"]
                client.infer(network_case[2][0])
                snapshot = client.stats()
                assert snapshot["requests_completed"] >= 1
                exposition = client.metrics()
                assert "forms_async_connections" in exposition
                usage = client.usage()
                assert usage["totals"]["requests"] >= 1

    def test_trace_roundtrip(self, network_case):
        with make_server(network_case, workers=1) as server:
            with AsyncFrontend(server) as frontend:
                client = HttpClient.for_frontend(frontend)
                result = client.infer(network_case[2][0],
                                      trace_id="req-aio-trace-1")
                assert result.stats["trace_id"] == "req-aio-trace-1"
                record = client.trace("req-aio-trace-1")
                assert record["spans"][0]["name"] == "request"

    def test_shutdown_is_idempotent_and_closes_port(self, network_case):
        with make_server(network_case, workers=1) as server:
            frontend = AsyncFrontend(server).start()
            client = HttpClient.for_frontend(frontend)
            assert client.healthz()["status"] == "ok"
            frontend.shutdown()
            frontend.shutdown()
            with pytest.raises(OSError):
                client.healthz()
            # borrowed server: still serving in-process
            result = server.submit(network_case[2][0])
            assert result.output is not None

"""Request tracing: span trees keyed on the wire's ``x-request-id``.

A *trace* is a JSON-ready dict — ``{"trace_id", "spans": [span...],
...metadata}`` — and a *span* is ``{"name", "duration_s",
"start_s"?, "attrs"?, "children"?}``: plain dicts throughout, so spans
pickle across process-backend workers and serialize into
``RequestStats`` receipts without a conversion layer.  ``start_s`` is
an offset from the enclosing trace's start where the recording side
shares a clock with the trace root; spans stitched back from worker
*processes* carry only ``duration_s`` plus a ``pid`` attribute, because
``time.perf_counter()`` is not comparable across processes.

:class:`SpanRecorder` collects the spans of one execution context (one
tile dispatch): engine profiling hooks deep in the call stack reach the
recorder through a thread-local set by :func:`bind`, so the engine
needs no plumbing — and when nothing is bound, :func:`record_event` is
a single thread-local read.

:class:`TraceRing` is the bounded in-memory store behind
``GET /v1/trace/<id>``: newest-wins eviction, lock-protected,
capacity 0 disables it entirely.
"""

from __future__ import annotations

import threading
import uuid
from collections import OrderedDict
from typing import Dict, List, Optional


def new_trace_id() -> str:
    """A fresh wire-safe request/trace id (32 hex chars)."""
    return uuid.uuid4().hex


def span_dict(name: str, duration_s: float, *,
              start_s: Optional[float] = None,
              children: Optional[List[Dict]] = None, **attrs) -> Dict:
    """Build one span dict (the only span schema in the codebase)."""
    span: Dict = {"name": name, "duration_s": duration_s}
    if start_s is not None:
        span["start_s"] = start_s
    if attrs:
        span["attrs"] = attrs
    if children:
        span["children"] = children
    return span


class SpanRecorder:
    """Span collector for one execution context (one tile dispatch).

    Two collection surfaces:

    * :meth:`record` — leaf events from instrumentation hooks (the
      engine profiler); accumulated until :meth:`close_span` wraps them
      as the children of one finished span;
    * :meth:`add_span` — a prebuilt span stitched in whole (the
      process backend returns finished span dicts with tile results).

    ``spans`` holds the finished top-level spans.  Appends happen on
    the recording thread; the consumer reads only after the dispatch
    that owns the recorder has completed, so no lock is needed.
    """

    __slots__ = ("spans", "_events")

    def __init__(self):
        self.spans: List[Dict] = []
        self._events: List[Dict] = []

    def record(self, name: str, duration_s: float, **attrs) -> None:
        self._events.append(span_dict(name, duration_s, **attrs))

    def add_span(self, span: Dict) -> None:
        self.spans.append(span)

    def close_span(self, name: str, duration_s: float, **attrs) -> None:
        """Finish one span, adopting every event recorded since the
        last close as its children."""
        events, self._events = self._events, []
        self.spans.append(span_dict(name, duration_s, children=events,
                                    **attrs))


_local = threading.local()


class bind:
    """Context manager making ``recorder`` the thread's event sink."""

    __slots__ = ("_recorder", "_previous")

    def __init__(self, recorder: Optional[SpanRecorder]):
        self._recorder = recorder

    def __enter__(self):
        self._previous = getattr(_local, "recorder", None)
        _local.recorder = self._recorder
        return self._recorder

    def __exit__(self, *exc):
        _local.recorder = self._previous
        return False


def active_recorder() -> Optional[SpanRecorder]:
    return getattr(_local, "recorder", None)


def record_event(name: str, duration_s: float, **attrs) -> None:
    """Record a leaf event on the thread's bound recorder, if any."""
    recorder = getattr(_local, "recorder", None)
    if recorder is not None:
        recorder.record(name, duration_s, **attrs)


class TraceRing:
    """Bounded trace store: newest ``capacity`` traces by insertion.

    ``capacity=0`` disables the ring (puts drop, gets miss) — the
    tracing-off path.  ``annotate`` appends spans to an already stored
    trace (the HTTP layer adds its transport span after the server-side
    receipt has been stored).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._traces: "OrderedDict[str, Dict]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def put(self, trace: Dict) -> None:
        if not self.capacity:
            return
        trace_id = trace["trace_id"]
        with self._lock:
            self._traces.pop(trace_id, None)
            self._traces[trace_id] = trace
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Dict]:
        with self._lock:
            return self._traces.get(trace_id)

    def annotate(self, trace_id: str, span: Dict) -> bool:
        """Append ``span`` to a stored trace; False if already evicted."""
        with self._lock:
            trace = self._traces.get(trace_id)
            if trace is None:
                return False
            trace.setdefault("spans", []).append(span)
            return True

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

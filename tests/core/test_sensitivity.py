"""Per-layer pruning sensitivity scan and keep-ratio selection tests."""

import numpy as np
import pytest

from repro.core import CrossbarShape
from repro.core.sensitivity import (DEFAULT_KEEP_RATIOS, KeepSelection,
                                    SensitivityCurve, layer_sensitivity_scan,
                                    select_keep_ratios, sensitivity_report)
from repro.nn import (Adam, Conv2d, Flatten, Linear, ReLU, Sequential,
                      compressible_layers, evaluate, fit, set_init_seed)
from repro.nn.data import make_synthetic


@pytest.fixture(scope="module")
def trained_small():
    train, test = make_synthetic("sens", 4, 1, 8, 160, 64, seed=31)
    set_init_seed(31)
    model = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(),
                       Conv2d(8, 8, 3, padding=1), ReLU(),
                       Flatten(), Linear(8 * 8 * 8, 4))
    fit(model, train, Adam(model.parameters(), 1e-3), epochs=4, batch_size=16)
    clean = evaluate(model, test).accuracy
    assert clean > 0.5
    return model, test, clean


class TestScan:
    def test_scan_covers_all_layers(self, trained_small):
        model, test, _ = trained_small
        curves = layer_sensitivity_scan(model, test, keep_ratios=(1.0, 0.5))
        assert set(curves) == {name for name, _ in compressible_layers(model)}

    def test_model_unchanged_after_scan(self, trained_small):
        model, test, _ = trained_small
        before = {n: l.weight.data.copy() for n, l in compressible_layers(model)}
        layer_sensitivity_scan(model, test, keep_ratios=(1.0, 0.3))
        for name, layer in compressible_layers(model):
            np.testing.assert_array_equal(layer.weight.data, before[name])

    def test_keep_one_matches_clean_accuracy(self, trained_small):
        model, test, clean = trained_small
        curves = layer_sensitivity_scan(model, test, keep_ratios=(1.0, 0.5))
        for curve in curves.values():
            assert curve.accuracy_at(1.0) == pytest.approx(clean, abs=1e-9)

    def test_aggressive_pruning_hurts_somewhere(self, trained_small):
        model, test, clean = trained_small
        curves = layer_sensitivity_scan(model, test,
                                        keep_ratios=(1.0, 0.6, 0.2))
        drops = [curve.accuracy_at(1.0) - curve.accuracy_at(0.2)
                 for curve in curves.values()]
        assert max(drops) > 0.0

    def test_axis_validation(self, trained_small):
        model, test, _ = trained_small
        with pytest.raises(ValueError):
            layer_sensitivity_scan(model, test, prune_axis="rows???")
        with pytest.raises(ValueError):
            layer_sensitivity_scan(model, test, keep_ratios=(1.5,))
        with pytest.raises(ValueError):
            layer_sensitivity_scan(model, test, keep_ratios=())


class TestCurve:
    def make_curve(self):
        return SensitivityCurve("conv", [1.0, 0.8, 0.6, 0.4],
                                [0.90, 0.89, 0.84, 0.60], rows=18, cols=8)

    def test_accuracy_at_nearest(self):
        curve = self.make_curve()
        assert curve.accuracy_at(0.8) == 0.89
        assert curve.accuracy_at(0.75) == 0.89

    def test_min_keep_within_tolerance(self):
        curve = self.make_curve()
        assert curve.min_keep_within(0.90, 0.02) == 0.8
        assert curve.min_keep_within(0.90, 0.10) == 0.6
        assert curve.min_keep_within(0.90, 0.40) == 0.4

    def test_no_viable_ratio_keeps_everything(self):
        curve = SensitivityCurve("c", [0.5], [0.1], rows=4, cols=4)
        assert curve.min_keep_within(0.9, 0.01) == 1.0


class TestSelection:
    def curves(self):
        return {
            "robust": SensitivityCurve("robust", [1.0, 0.5, 0.25],
                                       [0.9, 0.9, 0.89], rows=256, cols=64),
            "fragile": SensitivityCurve("fragile", [1.0, 0.5, 0.25],
                                        [0.9, 0.7, 0.4], rows=256, cols=64),
        }

    def test_selection_respects_sensitivity(self):
        selection = select_keep_ratios(self.curves(), clean_accuracy=0.9,
                                       tolerance=0.02)
        assert selection.raw_keep["robust"] == 0.25
        assert selection.raw_keep["fragile"] == 1.0

    def test_protected_layers_pinned(self):
        selection = select_keep_ratios(self.curves(), clean_accuracy=0.9,
                                       tolerance=0.5, protected=("fragile",))
        assert selection.raw_keep["fragile"] == 1.0
        assert selection.raw_keep["robust"] == 0.25

    def test_crossbar_snapping_rounds_up(self):
        selection = select_keep_ratios(
            self.curves(), clean_accuracy=0.9, tolerance=0.02,
            crossbar=CrossbarShape(128, 128), cells_per_weight=4)
        snapped = selection.snapped_keep["robust"]
        # 25% of 256 rows = 64, snapped up to one full 128-row crossbar slice.
        assert snapped["shape_keep"] == pytest.approx(0.5)
        # 25% of 64 cols = 16, snapped to the 32-weight column granularity.
        assert snapped["filter_keep"] == pytest.approx(0.5)

    def test_no_crossbar_keeps_raw_ratio(self):
        selection = select_keep_ratios(self.curves(), clean_accuracy=0.9,
                                       tolerance=0.02)
        assert selection.snapped_keep["robust"]["shape_keep"] == 0.25

    def test_per_layer_keep_format(self):
        selection = select_keep_ratios(self.curves(), clean_accuracy=0.9)
        mapping = selection.as_per_layer_keep()
        for keeps in mapping.values():
            assert set(keeps) == {"shape_keep", "filter_keep"}

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            select_keep_ratios(self.curves(), 0.9, tolerance=-0.1)


class TestReport:
    def test_report_rows(self):
        curves = {
            "c": SensitivityCurve("c", [1.0, 0.5], [0.9, 0.8], rows=8, cols=4),
        }
        selection = select_keep_ratios(curves, clean_accuracy=0.9,
                                       tolerance=0.15)
        rows = sensitivity_report(curves, selection)
        assert rows[0][0] == "c"
        assert rows[0][1] == "8x4"
        assert rows[0][4] == 0.5

    def test_report_without_selection(self):
        curves = {
            "c": SensitivityCurve("c", [1.0], [0.9], rows=8, cols=4),
        }
        rows = sensitivity_report(curves)
        assert rows[0][4] == "-"


class TestEndToEnd:
    def test_selected_ratios_feed_the_pipeline(self, trained_small):
        # The selection output plugs straight into FORMSConfig.per_layer_keep
        # and the pipeline trains against it.
        from repro.core import ADMMConfig, FORMSConfig, FORMSPipeline
        from repro.reram.variation import clone_model

        model, test, clean = trained_small
        curves = layer_sensitivity_scan(model, test, keep_ratios=(1.0, 0.5))
        selection = select_keep_ratios(curves, clean, tolerance=0.10)
        admm = ADMMConfig(iterations=1, epochs_per_iteration=1,
                          retrain_epochs=1)
        config = FORMSConfig(fragment_size=4, crossbar=CrossbarShape(16, 16),
                             per_layer_keep=selection.as_per_layer_keep(),
                             do_polarize=False, do_quantize=False,
                             prune_admm=admm)
        train, _ = make_synthetic("sens", 4, 1, 8, 160, 64, seed=31)
        twin = clone_model(model)
        result = FORMSPipeline(config).optimize(twin, train, test, seed=31)
        assert result.final_accuracy > 0.4

"""Per-request and server-wide serving statistics.

:class:`RequestStats` is the receipt attached to every served request:
where its latency went (queue wait vs service), which batch it rode in,
which model and priority class it belonged to, and the exact slice of the
shared engines' :class:`~repro.reram.engine.EngineStats` its tile
accounted for (conversions, scheduled/skipped jobs and pairs — see
:func:`repro.runtime.infer_tiles`).

:class:`ServerStats` aggregates those receipts into the operational view:
latency percentiles (overall and per priority class / per model), shed
counts by reason and class, queue-wait distribution, batch-size mix,
dispatch occupancy and throughput.  All mutation happens under one lock;
reads take a consistent :meth:`snapshot`.

Every aggregation is guarded against empty and zero-duration windows: a
snapshot taken before any request completes (or before wall time has
measurably advanced) returns zeros, never a division-by-zero or an
empty-percentile crash — the admission controller polls these gauges from
the submit path, where a crash would reject traffic.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np


def _percentile(values: Sequence[float], q: float) -> float:
    """``np.percentile`` with the empty-window guard (empty -> 0.0)."""
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _mean(values: Sequence[float]) -> float:
    if not len(values):
        return 0.0
    return float(np.asarray(values, dtype=np.float64).mean())


@dataclass(frozen=True)
class RequestStats:
    """Accounting of one served request.

    ``latency_s`` is enqueue to completion; ``queue_wait_s`` is enqueue to
    batch dispatch; ``service_s`` is the wall clock of the batch dispatch
    the request rode in (shared with its batch mates — tiles of one batch
    run concurrently, so per-request service time is not separable).
    ``engine_stats`` is this request's exact slice of the shared engines'
    merged stats.  ``model`` / ``priority_class`` name the tenant and the
    SLA class the request was served under (the single-model FIFO server
    uses ``"default"`` for both); ``deadline_s`` is the relative deadline
    it carried, if any.
    """

    request_id: int
    batch_id: int
    batch_size: int
    queue_wait_s: float
    service_s: float
    latency_s: float
    engine_stats: Dict[str, int]
    model: str = "default"
    priority_class: str = "default"
    deadline_s: Optional[float] = None
    #: recovery receipt — present only when this request's batch rode a die
    #: fault: which die was quarantined, how it was diagnosed, what the
    #: [29]-style remap planner said, and how many dispatch retries the
    #: batch took before completing (bit-identically) on the restored die.
    recovery: Optional[Dict] = None
    #: cross-process trace id (the wire's ``X-Request-Id``): the same
    #: string in the router's log, the replica's receipt and the caller's
    #: error body — always populated (the server mints one when the
    #: caller passes none), so every receipt is queryable at
    #: ``GET /v1/trace/<id>``.
    trace_id: Optional[str] = None
    #: the request's span tree (see ``docs/observability.md``): where the
    #: latency went — queue wait, batch ride, per-tile dispatch, and (with
    #: engine profiling armed) per-layer engine tiers.  ``None`` when the
    #: server runs with tracing disabled.
    spans: Optional[List[Dict]] = None

    def as_dict(self) -> Dict:
        return {
            "request_id": self.request_id,
            "batch_id": self.batch_id,
            "batch_size": self.batch_size,
            "queue_wait_s": self.queue_wait_s,
            "service_s": self.service_s,
            "latency_s": self.latency_s,
            "engine_stats": dict(self.engine_stats),
            "model": self.model,
            "priority_class": self.priority_class,
            "deadline_s": self.deadline_s,
            "recovery": (dict(self.recovery)
                         if self.recovery is not None else None),
            "trace_id": self.trace_id,
            "spans": self.spans,
        }


@dataclass(frozen=True)
class ServedResult:
    """What :meth:`repro.serving.InferenceServer.submit` returns."""

    output: np.ndarray
    stats: RequestStats


class _GroupWindow:
    """Sliding latency/queue-wait window plus exact counters for one
    (class or model) group."""

    __slots__ = ("completed", "shed", "latencies", "queue_waits")

    def __init__(self, window: Optional[int]):
        self.completed = 0
        self.shed = 0
        self.latencies: Deque[float] = deque(maxlen=window)
        self.queue_waits: Deque[float] = deque(maxlen=window)

    def snapshot(self) -> Dict:
        return {
            "completed": self.completed,
            "shed": self.shed,
            "latency_p50_s": _percentile(self.latencies, 50),
            "latency_p95_s": _percentile(self.latencies, 95),
            "queue_wait_p95_s": _percentile(self.queue_waits, 95),
        }


class ServerStats:
    """Thread-safe aggregator of completed-request and shed receipts.

    The batcher records one :meth:`record_batch` per dispatched batch,
    one :meth:`record_request` per completed request and one
    :meth:`record_shed` per shed request; :meth:`snapshot` reduces them
    to the numbers an operator watches — p50/p95 latency (overall, per
    priority class and per model), shed counts by reason, mean queue
    wait, batch-size mix, occupancy (fraction of wall time the dispatch
    path was busy) and completed-request throughput.

    Counters (requests, sheds, batches, busy time) are exact over the
    server's lifetime; the latency/queue-wait *distributions* are kept in
    sliding windows of the most recent ``window`` entries (``None`` =
    unbounded), so a long-running server neither grows without bound nor
    pays more than O(window) per snapshot.  All reductions go through the
    empty/zero-duration-window guards (see the module docstring).
    """

    def __init__(self, window: Optional[int] = 4096):
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None for unbounded)")
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.window = window
        self.requests_completed = 0
        self.requests_failed = 0
        self.requests_shed = 0
        self.faults_detected = 0
        self.fault_recoveries = 0
        self.requests_recovered = 0
        self.batches_formed = 0
        self.batch_size_sum = 0
        self.batch_size_max = 0
        self.busy_s = 0.0
        self._latencies: Deque[float] = deque(maxlen=window)
        self._queue_waits: Deque[float] = deque(maxlen=window)
        self._by_class: Dict[str, _GroupWindow] = {}
        self._by_model: Dict[str, _GroupWindow] = {}
        self._shed_by_reason: Dict[str, int] = {}

    def _group(self, groups: Dict[str, _GroupWindow],
               key: str) -> _GroupWindow:
        group = groups.get(key)
        if group is None:
            group = groups[key] = _GroupWindow(self.window)
        return group

    # ------------------------------------------------------------------
    def record_batch(self, size: int, service_s: float) -> None:
        with self._lock:
            self.batches_formed += 1
            self.batch_size_sum += size
            self.batch_size_max = max(self.batch_size_max, size)
            self.busy_s += service_s

    def record_request(self, stats: RequestStats) -> None:
        with self._lock:
            self.requests_completed += 1
            self._latencies.append(stats.latency_s)
            self._queue_waits.append(stats.queue_wait_s)
            for groups, key in ((self._by_class, stats.priority_class),
                                (self._by_model, stats.model)):
                group = self._group(groups, key)
                group.completed += 1
                group.latencies.append(stats.latency_s)
                group.queue_waits.append(stats.queue_wait_s)

    def record_shed(self, receipt) -> None:
        """Count one shed request (a :class:`~repro.serving.scheduler.
        ShedReceipt`) against its reason, class and model."""
        with self._lock:
            self.requests_shed += 1
            self._shed_by_reason[receipt.reason] = (
                self._shed_by_reason.get(receipt.reason, 0) + 1)
            self._group(self._by_class, receipt.priority_class).shed += 1
            self._group(self._by_model, receipt.model).shed += 1

    def record_failure(self, count: int = 1) -> None:
        with self._lock:
            self.requests_failed += count

    def record_fault_detected(self) -> None:
        """Count one checksum detection (a die tripped its guard)."""
        with self._lock:
            self.faults_detected += 1

    def record_recovery(self, requests: int) -> None:
        """Count one completed die recovery and the ``requests`` that rode
        the recovered batch to a (bit-identical) completion."""
        with self._lock:
            self.fault_recoveries += 1
            self.requests_recovered += requests

    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile (0-100) over completed requests."""
        with self._lock:
            return _percentile(self._latencies, q)

    def occupancy(self) -> float:
        """Fraction of wall time the dispatch path was busy (0.0 until
        wall time has measurably advanced) — the admission gauge."""
        with self._lock:
            elapsed = time.monotonic() - self._started
            return self.busy_s / elapsed if elapsed > 0 else 0.0

    def snapshot(self, queue_depth: Optional[int] = None) -> Dict:
        """One consistent JSON-ready view of everything recorded so far."""
        with self._lock:
            elapsed = time.monotonic() - self._started
            completed = self.requests_completed
            snap = {
                "requests_completed": completed,
                "requests_failed": self.requests_failed,
                "requests_shed": self.requests_shed,
                "shed_by_reason": dict(self._shed_by_reason),
                "faults_detected": self.faults_detected,
                "fault_recoveries": self.fault_recoveries,
                "requests_recovered": self.requests_recovered,
                "batches_formed": self.batches_formed,
                "mean_batch_size": (self.batch_size_sum / self.batches_formed
                                    if self.batches_formed else 0.0),
                "max_batch_size": self.batch_size_max,
                "elapsed_s": elapsed,
                "occupancy": self.busy_s / elapsed if elapsed > 0 else 0.0,
                "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
                "latency_p50_s": _percentile(self._latencies, 50),
                "latency_p95_s": _percentile(self._latencies, 95),
                "latency_max_s": (float(max(self._latencies))
                                  if self._latencies else 0.0),
                "queue_wait_mean_s": _mean(self._queue_waits),
                "queue_wait_p95_s": _percentile(self._queue_waits, 95),
                "per_class": {name: group.snapshot()
                              for name, group in self._by_class.items()},
                "per_model": {name: group.snapshot()
                              for name, group in self._by_model.items()},
            }
        if queue_depth is not None:
            snap["queue_depth"] = queue_depth
        return snap

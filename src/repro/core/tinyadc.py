"""TinyADC-style column-sparsity constraint (paper ref [40]).

TinyADC (Yuan et al., DATE 2021 — the same group as FORMS) bounds the number
of *non-zero* weights in each crossbar column so the worst-case accumulated
partial sum shrinks, which directly lowers the ADC resolution the column
needs.  FORMS cites it as the peripheral-aware pruning alternative; this
module implements the constraint at FORMS' fragment granularity so the two
techniques compose:

* a fragment of ``m`` cells normally needs
  ``ceil(log2(m * (2**cell_bits - 1) + 1))`` ADC bits (worst case);
* with at most ``k < m`` non-zeros per fragment the bound drops to
  ``ceil(log2(k * (2**cell_bits - 1) + 1))``.

Since ADC area/power grow exponentially with resolution (Sec. V-B), each
saved bit roughly halves the dominant peripheral cost — the ablation bench
``bench_ablation_tinyadc`` prices this through the calibrated ADC model.

The constraint set {at most k non-zeros per fragment} has a closed-form
Euclidean projection — keep the k largest magnitudes of each fragment — so
it drops straight into the ADMM trainer as another
:class:`~repro.core.admm.Constraint`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .admm import Constraint
from .fragments import FragmentGeometry


@dataclass(frozen=True)
class TinyADCSpec:
    """Column-sparsity bound: at most ``max_nonzeros`` weights per fragment."""

    max_nonzeros: int = 4

    def __post_init__(self):
        if self.max_nonzeros < 1:
            raise ValueError("max_nonzeros must be >= 1")


def fragment_nonzeros(weight: np.ndarray, geometry: FragmentGeometry) -> np.ndarray:
    """Non-zero count per fragment, shaped ``(fragments_per_column, cols)``."""
    stack = geometry.fragment_stack(geometry.matrix(weight))
    return (stack != 0).sum(axis=1)


def project_fragment_sparsity(weight: np.ndarray, geometry: FragmentGeometry,
                              max_nonzeros: int) -> np.ndarray:
    """Euclidean projection onto {<= k non-zeros per fragment}.

    Keeps the ``k`` largest-magnitude weights of every fragment and zeroes
    the rest — the closed-form projection onto a cardinality ball.
    """
    if max_nonzeros < 1:
        raise ValueError("max_nonzeros must be >= 1")
    stack = geometry.fragment_stack(geometry.matrix(weight))
    if max_nonzeros >= stack.shape[1]:
        return np.array(weight, copy=True)
    order = np.argsort(-np.abs(stack), axis=1, kind="stable")
    keep = np.zeros(stack.shape, dtype=bool)
    np.put_along_axis(keep, order[:, :max_nonzeros, :], True, axis=1)
    projected = np.where(keep, stack, 0.0)
    return geometry.weight(geometry.from_fragment_stack(projected))


class TinyADCConstraint(Constraint):
    """ADMM constraint: every fragment holds at most k non-zero weights."""

    def __init__(self, geometry: FragmentGeometry, spec: TinyADCSpec):
        self.geometry = geometry
        self.spec = spec

    def project(self, weight: np.ndarray) -> np.ndarray:
        return project_fragment_sparsity(weight, self.geometry,
                                         self.spec.max_nonzeros)

    def violation(self, weight: np.ndarray) -> float:
        counts = fragment_nonzeros(weight, self.geometry)
        excess = np.maximum(counts - self.spec.max_nonzeros, 0)
        total = counts.sum()
        return float(excess.sum()) / float(total) if total else 0.0

    def describe(self) -> str:
        return (f"tinyadc(k={self.spec.max_nonzeros}, "
                f"m={self.geometry.fragment_size})")


# ---------------------------------------------------------------------------
# ADC-resolution accounting
# ---------------------------------------------------------------------------

def column_sum_bound(nonzeros: int, cell_bits: int) -> int:
    """Worst-case one-cycle partial sum of a fragment with ``nonzeros`` cells."""
    if nonzeros < 0 or cell_bits < 1:
        raise ValueError("need nonzeros >= 0 and cell_bits >= 1")
    return nonzeros * (2 ** cell_bits - 1)


def required_bits_with_tinyadc(nonzeros: int, cell_bits: int) -> int:
    """ADC bits that represent the bounded partial sum exactly."""
    bound = column_sum_bound(nonzeros, cell_bits)
    return max(1, int(np.ceil(np.log2(bound + 1))))


def adc_bits_saved(fragment_size: int, nonzeros: int, cell_bits: int) -> int:
    """ADC bits saved by the sparsity bound relative to a dense fragment."""
    if nonzeros > fragment_size:
        raise ValueError("nonzeros cannot exceed the fragment size")
    dense = required_bits_with_tinyadc(fragment_size, cell_bits)
    sparse = required_bits_with_tinyadc(nonzeros, cell_bits)
    return dense - sparse

"""Crossbar arrays and sub-array partitioning.

A :class:`CrossbarArray` is a physical grid of programmed cells; its in-situ
primitive is the analog MVM ``I = V_in^T * G`` performed by driving word lines
and sensing column currents.  FORMS partitions each physical array into
logical ``m x n`` sub-arrays (paper Fig. 5): computation is fine-grained — one
fragment (sub-array column) per ADC conversion — while the physical array
amortizes drivers and routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from .device import DeviceSpec, ReRAMDevice, codes_to_digital


class CrossbarArray:
    """A programmed grid of ReRAM cells supporting analog MVM."""

    def __init__(self, codes: np.ndarray, device: ReRAMDevice):
        codes = np.asarray(codes)
        if codes.ndim != 2:
            raise ValueError("crossbar codes must be 2-D (rows, cols)")
        self.codes = codes.astype(np.int64)
        self.device = device
        self.conductance = device.program(self.codes)

    @property
    def rows(self) -> int:
        return self.codes.shape[0]

    @property
    def cols(self) -> int:
        return self.codes.shape[1]

    def analog_mvm(self, activation_bits: np.ndarray) -> np.ndarray:
        """Column currents for a 0/1 word-line pattern ``(rows,)`` or ``(rows, batch)``.

        Returns ``(cols,)`` or ``(cols, batch)`` currents.
        """
        activation_bits = np.asarray(activation_bits, dtype=np.float64)
        if activation_bits.shape[0] != self.rows:
            raise ValueError(f"activation rows {activation_bits.shape[0]} != crossbar rows {self.rows}")
        currents = np.tensordot(self.conductance, activation_bits, axes=([0], [0]))
        return self.device.spec.read_voltage * currents

    def digital_mvm(self, activation_bits: np.ndarray) -> np.ndarray:
        """Analog MVM followed by pedestal removal: estimates ``codes^T @ bits``.

        The active-row count used for pedestal removal comes from the digital
        input side (free — the zero-skip logic already sees every bit).
        """
        currents = self.analog_mvm(activation_bits)
        active = np.asarray(activation_bits).sum(axis=0)
        return codes_to_digital(currents, self.device.spec, active)


@dataclass(frozen=True)
class SubArrayLayout:
    """Partition of a physical crossbar into logical m x n sub-arrays."""

    array_rows: int = 128
    array_cols: int = 128
    sub_rows: int = 8      # the fragment size m
    sub_cols: int = 128    # n; FORMS keeps full-width columns per sub-array

    def __post_init__(self):
        if self.sub_rows < 1 or self.sub_cols < 1:
            raise ValueError("sub-array dimensions must be positive")
        if self.sub_rows > self.array_rows or self.sub_cols > self.array_cols:
            raise ValueError("sub-array cannot exceed the physical array")

    @property
    def subarrays_per_column_strip(self) -> int:
        """Vertical sub-arrays stacked in the physical array (paper's q)."""
        return self.array_rows // self.sub_rows

    @property
    def column_strips(self) -> int:
        """Horizontal sub-array strips (paper's p)."""
        return self.array_cols // self.sub_cols

    @property
    def subarrays_per_array(self) -> int:
        return self.subarrays_per_column_strip * self.column_strips

    def row_slices(self) -> Iterator[Tuple[int, slice]]:
        for i in range(self.subarrays_per_column_strip):
            yield i, slice(i * self.sub_rows, (i + 1) * self.sub_rows)

    def col_slices(self) -> Iterator[Tuple[int, slice]]:
        for j in range(self.column_strips):
            yield j, slice(j * self.sub_cols, (j + 1) * self.sub_cols)

"""Table I — compression on MNIST (LeNet-5) and CIFAR-10 (VGG-16, ResNet-18).

Regenerates the paper's prune-ratio / accuracy-drop / crossbar-reduction rows
at fragment sizes 4/8/16.  Expected shape: negative-or-tiny accuracy drops at
fragments 4/8, a visible penalty at 16, and crossbar reductions well above
the prune ratio alone (x4 quantization, x2 polarization).
"""

from repro.analysis import FAST, table1


def test_table1_compression(benchmark, save_table):
    result = benchmark.pedantic(lambda: table1(FAST, seed=0),
                                rounds=1, iterations=1)
    save_table("table1_compression_small", result)
    benchmark.extra_info["table"] = result.rendered
    # Shape assertions (the paper's qualitative claims).
    drops = {}
    for row in result.rows:
        drops.setdefault(row[0], {})[row[3]] = row[4]
        assert row[5] > 1.0, "crossbar reduction must exceed 1x"
    for model, by_fragment in drops.items():
        assert by_fragment[4] <= by_fragment[16] + 3.0, \
            f"{model}: fragment 4 should not be clearly worse than 16"

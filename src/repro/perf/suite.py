"""The engine perf-tracking suite behind ``benchmarks/run_perf_suite.py``.

Micro-benchmarks pair the production path against a retained baseline so
speedups are *recorded*, not asserted from memory:

* ``mvm_<scheme>_16bit_128pos`` — the headline: a 128-row / 16-column /
  128-position layer MVM with 16-bit activations, fused engine
  (:meth:`~repro.reram.engine.InSituLayerEngine.matvec_int`) versus the
  retained cycle-by-cycle oracle (:meth:`matvec_int_reference`), checked
  bit-equal before timing;
* ``..._clipadc`` / ``..._variation`` / ``..._irdrop`` — the same MVM down
  the other engine tiers (integer kernel with a clipping ADC, full analog
  path with device variation, batched first-order IR drop);
* ``mvm_forms_16bit_128pos_sparse`` / ``..._sparse_irdrop`` — the CSR job
  scheduler on a post-ReLU-structured activation block (>= 50% zero
  bit-planes) versus the retained dense bit-plane kernel
  (:meth:`matvec_int_dense`, the PR-1 production path);
* ``insitu_network_batch8_w{1,4}`` — whole-network inference through the
  ``repro.runtime`` tiled executor at 1 and 4 workers versus the serial
  full-batch dense-engine forward (the pre-runtime production path);
* ``cell_iv_sinh_table`` — the tabulated sinh cell curve versus the closed
  form (recorded because it *loses* on NumPy's SIMD sinh — the measured
  reason the table defaults off);
* ``signed_matvec_mixed`` — the signed decomposition of
  :func:`repro.reram.inference._signed_matvec` (one fused positions-axis
  call) versus the seed's two sequential reference passes;
* ``die_cache_rebuild`` — engine re-construction across a sweep with and
  without the shared :class:`~repro.reram.engine.DieCache`;
* ``im2col_lenet_batch8`` — unpaired wall-clock trajectory of the
  ``sliding_window_view`` im2col lowering.

Every result lands in ``BENCH_engine.json`` (schema documented in
``benchmarks/README.md``) so subsequent PRs inherit a perf trajectory.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
from typing import Dict, List, Optional

import numpy as np

from ..core import FragmentGeometry, QuantizationSpec
from ..core.polarization import compute_signs, project_polarization
from ..nn import functional as F
from ..reram import (ADCSpec, DeviceSpec, DieCache, ReRAMDevice,
                     build_engine, fused_kernel_max_elements)
from ..reram.inference import _signed_matvec
from ..reram.nonideal import CellIV, WireModel
from ..reram.nonideal_engine import NonidealEngine
from .instrument import EngineMeter, time_callable

BENCH_SCHEMA = "forms-perf-suite/v1"

#: the acceptance micro-benchmark and its floor
HEADLINE_BENCH = "mvm_forms_16bit_128pos"
HEADLINE_MIN_SPEEDUP = 5.0

_LAYER_SHAPE = (16, 8, 4, 4)   # conv weight -> 128-row x 16-col matrix
_FRAGMENT = 8
_POSITIONS = 128
_ACTIVATION_BITS = 16
_QSPEC = QuantizationSpec(8, 2)


def make_polarized_layer(shape=_LAYER_SHAPE, fragment_size=_FRAGMENT,
                         seed: int = 0, qmax: int = 127):
    """Random fragment-polarized integer levels + geometry (FORMS-mappable)."""
    rng = np.random.default_rng(seed)
    geometry = FragmentGeometry(shape, fragment_size)
    weights = rng.normal(size=shape)
    signs = compute_signs(weights, geometry)
    weights = project_polarization(weights, geometry, signs)
    levels = np.clip(np.rint(weights * qmax / (np.abs(weights).max() + 1e-9)),
                     -qmax, qmax).astype(np.int64)
    return geometry.matrix(levels), geometry


def _inputs(geometry: FragmentGeometry, positions: int = _POSITIONS,
            bits: int = _ACTIVATION_BITS, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << bits, size=(geometry.rows, positions))


def make_post_relu_inputs(geometry: FragmentGeometry,
                          positions: int = _POSITIONS,
                          bits: int = _ACTIVATION_BITS,
                          fragment_size: int = _FRAGMENT,
                          seed: int = 1) -> np.ndarray:
    """Activation block shaped like a post-ReLU layer of a FORMS network.

    Three kinds of structure a trained, pruned network actually produces:

    * **dead channels** — upstream filter pruning (the paper's own
      crossbar-aware structured pruning) zeroes whole input channels, so
      entire fragments of the im2col block are silent;
    * **heavy-tailed magnitudes** — most live channels are quiet (high
      bit-planes never fire), a few carry the distribution's tail;
    * **elementwise ReLU zeros and dead spatial patches** — all-zero
      im2col positions.

    The result has >= 50% all-zero (bit-plane, fragment) jobs and ~2/3
    zero (job, position) pairs — the workload the sparse scheduler exists
    for (`EngineStats.skip_fraction` / `pair_skip_fraction` of a run
    record the realized fractions).
    """
    rng = np.random.default_rng(seed)
    qmax = (1 << bits) - 1
    rows = geometry.rows
    n_frag = -(-rows // fragment_size)
    frag_kind = rng.choice(3, size=n_frag, p=[0.3, 0.58, 0.12])
    scale = np.where(frag_kind == 2, 6000.0, 30.0)
    scale[frag_kind == 0] = 0.0                    # pruned upstream channels
    row_scale = np.repeat(scale, fragment_size)[:rows]
    x = rng.exponential(scale=1.0, size=(rows, positions)) * row_scale[:, None]
    x *= rng.random(x.shape) > 0.55                # elementwise ReLU zeros
    x[:, rng.random(positions) < 0.3] = 0.0        # dead im2col patches
    return np.clip(np.rint(x), 0, qmax).astype(np.int64)


def _paired_record(name: str, fused_fn, reference_fn, repeats: int,
                   meta: Optional[Dict] = None,
                   engine=None) -> Dict:
    """Time a production/baseline pair and package one JSON record."""
    fused = time_callable(fused_fn, name=f"{name}.fused", repeats=repeats)
    reference = time_callable(reference_fn, name=f"{name}.reference",
                              repeats=repeats)
    record = {
        "name": name,
        "kind": "paired",
        "fused": fused.to_record(),
        "reference": reference.to_record(),
        "speedup": fused.speedup_vs(reference),
        "meta": meta or {},
    }
    if engine is not None:
        meter = EngineMeter([engine])
        fused_fn()
        record["engine_stats_per_call"] = meter.delta()
    return record


def bench_mvm(scheme: str = "forms", repeats: int = 3,
              adc: Optional[ADCSpec] = None, variation: float = 0.0,
              suffix: str = "") -> Dict:
    """Fused vs reference MVM on the headline layer, one engine tier."""
    levels, geometry = make_polarized_layer()
    x = _inputs(geometry)
    device = ReRAMDevice(DeviceSpec(), variation_sigma=variation, seed=7)
    engine = build_engine(levels, geometry, _QSPEC, device, scheme=scheme,
                          adc=adc, activation_bits=_ACTIVATION_BITS)
    if variation == 0.0:
        fused_out = engine.matvec_int(x)
        ref_out = engine.matvec_int_reference(x)
        if not np.array_equal(fused_out, ref_out):
            raise AssertionError(f"fused != reference on scheme {scheme!r}")
    name = f"mvm_{scheme}_16bit_{_POSITIONS}pos{suffix}"
    return _paired_record(
        name, lambda: engine.matvec_int(x),
        lambda: engine.matvec_int_reference(x), repeats,
        meta={"scheme": scheme, "rows": geometry.rows, "cols": geometry.cols,
              "positions": _POSITIONS, "activation_bits": _ACTIVATION_BITS,
              "fragment_size": _FRAGMENT, "variation_sigma": variation,
              "adc_bits": engine.adc.bits},
        engine=engine)


def bench_mvm_irdrop(repeats: int = 3) -> Dict:
    """The analog tier with batched first-order IR drop + nonlinear cells."""
    levels, geometry = make_polarized_layer()
    x = _inputs(geometry)
    from ..reram.mapping import infer_signs, map_layer
    mapped = map_layer(levels, geometry, _QSPEC, scheme="forms",
                       signs=infer_signs(levels, geometry))
    engine = NonidealEngine(mapped, ReRAMDevice(DeviceSpec(), 0.0),
                            activation_bits=_ACTIVATION_BITS,
                            wire=WireModel(r_wire_ohm=5.0),
                            cell_iv=CellIV(nonlinearity=2.0))
    fused_out = engine.matvec_int(x)
    ref_out = engine.matvec_int_reference(x)
    if not np.array_equal(fused_out, ref_out):
        raise AssertionError("IR-drop fused != reference")
    return _paired_record(
        f"mvm_forms_16bit_{_POSITIONS}pos_irdrop",
        lambda: engine.matvec_int(x),
        lambda: engine.matvec_int_reference(x), repeats,
        meta={"scheme": "forms", "wire_ohm": 5.0, "nonlinearity": 2.0},
        engine=engine)


def bench_mvm_sparse(repeats: int = 3) -> Dict:
    """CSR job scheduler vs the dense bit-plane kernel, post-ReLU block.

    Integer-kernel tier (the paper's clipping 4-bit ADC sizing): the sparse
    path schedules only live (bit-plane, fragment, position) structure and
    telescopes clip-free tasks; the dense path (``matvec_int_dense``, the
    PR-1 production kernel) masks whole (bit-plane, fragment) jobs only.
    Both are asserted bit-equal to the cycle-by-cycle reference before
    timing.
    """
    levels, geometry = make_polarized_layer()
    x = make_post_relu_inputs(geometry)
    device = ReRAMDevice(DeviceSpec(), 0.0)
    engine = build_engine(levels, geometry, _QSPEC, device, scheme="forms",
                          adc=ADCSpec(bits=4),
                          activation_bits=_ACTIVATION_BITS)
    sparse_out = engine.matvec_int(x)
    if not np.array_equal(sparse_out, engine.matvec_int_dense(x)):
        raise AssertionError("sparse != dense kernel")
    if not np.array_equal(sparse_out, engine.matvec_int_reference(x)):
        raise AssertionError("sparse != cycle-by-cycle reference")
    # one clean-call stats snapshot for the workload-shape metadata
    from ..reram import EngineStats
    engine.stats = EngineStats()
    engine.matvec_int(x)
    return _paired_record(
        f"mvm_forms_16bit_{_POSITIONS}pos_sparse",
        lambda: engine.matvec_int(x),
        lambda: engine.matvec_int_dense(x), repeats,
        meta={"scheme": "forms", "adc_bits": 4,
              "positions": _POSITIONS,
              "activation_bits": _ACTIVATION_BITS,
              "zero_plane_fraction": engine.stats.skip_fraction,
              "pair_skip_fraction": engine.stats.pair_skip_fraction,
              "zero_element_fraction": float((x == 0).mean())},
        engine=engine)


def bench_mvm_sparse_irdrop(repeats: int = 3) -> Dict:
    """The sparse scheduler on the analog IR-drop tier (same block)."""
    levels, geometry = make_polarized_layer()
    x = make_post_relu_inputs(geometry)
    from ..reram.mapping import infer_signs, map_layer
    mapped = map_layer(levels, geometry, _QSPEC, scheme="forms",
                       signs=infer_signs(levels, geometry))
    engine = NonidealEngine(mapped, ReRAMDevice(DeviceSpec(), 0.0),
                            activation_bits=_ACTIVATION_BITS,
                            wire=WireModel(r_wire_ohm=5.0),
                            cell_iv=CellIV(nonlinearity=2.0))
    sparse_out = engine.matvec_int(x)
    if not np.array_equal(sparse_out, engine.matvec_int_dense(x)):
        raise AssertionError("sparse != dense on the IR-drop tier")
    return _paired_record(
        f"mvm_forms_16bit_{_POSITIONS}pos_sparse_irdrop",
        lambda: engine.matvec_int(x),
        lambda: engine.matvec_int_dense(x), repeats,
        meta={"scheme": "forms", "wire_ohm": 5.0, "nonlinearity": 2.0},
        engine=engine)


def bench_cell_iv_table(repeats: int = 3) -> Dict:
    """Tabulated sinh cell curve vs the closed form, on a kernel-sized batch.

    Recorded so the default (table off) is a measured decision: NumPy's
    SIMD-vectorized ``np.sinh`` beats the multi-pass gather, so the
    expected speedup here is *below* 1.  The table stays available
    (``CellIV.tabulated()`` / ``NonidealEngine(auto_tabulate=True)``) for
    platforms with slow transcendentals; its interpolation error is orders
    of magnitude below the ADC rounding threshold (asserted bit-exact at
    the engine level in the tests).
    """
    closed = CellIV(nonlinearity=2.0)
    table = closed.tabulated()
    rng = np.random.default_rng(9)
    g = rng.uniform(1e-7, 1e-5, size=(1 << 19,))
    dv = rng.uniform(-0.05, 0.3, size=g.shape)
    err = float(np.abs(table.current(g, dv) - closed.current(g, dv)).max())
    record = _paired_record(
        "cell_iv_sinh_table", lambda: table.current(g, dv),
        lambda: closed.current(g, dv), repeats,
        meta={"elements": int(g.size), "table_points": table.table_points,
              "max_abs_error_a": err})
    return record


def _post_relu_network(seed: int = 0):
    """A FORMS-shaped small CNN: pruned filters, polarized weights.

    Random weights stand in for training, but the *structure* is the real
    post-pipeline one: crossbar-aware filter pruning (dead output channels
    => silent downstream input fragments) followed by fragment
    polarization, which is what makes whole-network activation blocks
    sparse in exactly the way the scheduler exploits.
    """
    from ..core.pipeline import FORMSConfig
    from ..core.polarization import compute_signs, project_polarization
    from ..nn import (Conv2d, Flatten, Linear, ReLU, Sequential,
                      compressible_layers, set_init_seed)
    set_init_seed(seed)
    model = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(),
                       Conv2d(8, 8, 3, padding=1), ReLU(),
                       Flatten(), Linear(8 * 16 * 16, 10))
    rng = np.random.default_rng(seed + 7)
    for layer in (model._modules["0"], model._modules["2"]):
        dead = rng.permutation(layer.weight.data.shape[0])[5:]
        layer.weight.data[dead] = 0.0
        if layer.bias is not None:
            layer.bias.data[dead] = 0.0
    config = FORMSConfig(fragment_size=_FRAGMENT)
    for _, layer in compressible_layers(model):
        geometry = config.geometry_for(layer)
        weight = layer.weight.data.astype(np.float64)
        layer.weight.data[...] = project_polarization(
            weight, geometry, compute_signs(weight, geometry))
    images = np.maximum(0.0, rng.normal(size=(8, 1, 16, 16)) - 0.8)
    return model, config, images


def bench_insitu_network(workers: int, repeats: int = 3,
                         tile_size: int = 2,
                         backend: Optional[str] = None) -> Dict:
    """Whole-network inference: tiled runtime at N workers vs serial dense.

    The reference is the pre-runtime production path — one serial
    full-batch forward through dense-kernel engines.  The fused side runs
    the same network on sparse-scheduler engines with batch tiles fanned
    out over a ``repro.runtime`` worker pool on ``backend``.  Outputs are
    asserted bit-identical to a serial dense run of the identical tiling
    before timing (the tiling — not the worker count or backend — is the
    numerical configuration).
    """
    from ..reram import paper_adc_bits
    from ..reram.inference import build_insitu_network
    from ..runtime import WorkerPool, infer_tiled, run_network_serial
    from ..nn import Tensor

    model, config, images = _post_relu_network()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(_FRAGMENT))
    sparse_net, sparse_engines = build_insitu_network(
        model, config, device, adc=adc, activation_bits=_ACTIVATION_BITS)
    dense_net, dense_engines = build_insitu_network(
        model, config, device, adc=adc, activation_bits=_ACTIVATION_BITS)
    for engine in dense_engines.values():
        engine.sparse_enabled = False

    with WorkerPool(workers, backend=backend) as pool:
        fused_out = infer_tiled(sparse_net, images, pool=pool,
                                tile_size=tile_size)
        serial_same_tiling = run_network_serial(dense_net, images,
                                                tile_size=tile_size)
        if not np.array_equal(fused_out, serial_same_tiling):
            raise AssertionError(
                "tiled sparse runtime != serial dense (same tiling)")
        record = _paired_record(
            f"insitu_network_batch{images.shape[0]}_w{workers}",
            lambda: infer_tiled(sparse_net, images, pool=pool,
                                tile_size=tile_size),
            lambda: dense_net(Tensor(images)).data, repeats,
            meta={"workers": workers, "tile_size": tile_size,
                  "backend": pool.backend, "batch": int(images.shape[0]),
                  "layers": len(sparse_engines),
                  "adc_bits": adc.bits,
                  "activation_bits": _ACTIVATION_BITS})
    meter = EngineMeter(sparse_engines.values())
    infer_tiled(sparse_net, images, workers=1, tile_size=tile_size)
    record["engine_stats_per_call"] = meter.delta()
    return record


def bench_signed_matvec(repeats: int = 3) -> Dict:
    """Signed decomposition: one fused call vs two sequential passes."""
    levels, geometry = make_polarized_layer(seed=3)
    rng = np.random.default_rng(4)
    cols = rng.normal(size=(geometry.rows, _POSITIONS // 2))
    device = ReRAMDevice(DeviceSpec(), 0.0)
    engine = build_engine(levels, geometry, _QSPEC, device,
                          activation_bits=_ACTIVATION_BITS)

    def seed_style() -> np.ndarray:
        qmax = (1 << engine.activation_bits) - 1
        positive = np.maximum(cols, 0.0)
        negative = np.maximum(-cols, 0.0)
        top = float(max(positive.max(initial=0.0), negative.max(initial=0.0)))
        scale = top / qmax if top > 0.0 else 1.0
        pos_int = np.clip(np.rint(positive / scale), 0, qmax).astype(np.int64)
        out = engine.matvec_int_reference(pos_int).astype(np.float64)
        neg_int = np.clip(np.rint(negative / scale), 0, qmax).astype(np.int64)
        out -= engine.matvec_int_reference(neg_int).astype(np.float64)
        return out * scale

    fused_out = _signed_matvec(engine, cols, 1.0)
    if not np.allclose(fused_out, seed_style()):
        raise AssertionError("fused signed matvec != two-pass reference")
    return _paired_record(
        "signed_matvec_mixed", lambda: _signed_matvec(engine, cols, 1.0),
        seed_style, repeats,
        meta={"positions_per_sign": _POSITIONS // 2})


def bench_die_cache(repeats: int = 3, engines_per_sweep: int = 6) -> Dict:
    """Engine re-construction across a sweep, with and without DieCache."""
    levels, geometry = make_polarized_layer(seed=5)
    device = ReRAMDevice(DeviceSpec(), variation_sigma=0.1, seed=11)

    def rebuild_uncached():
        for _ in range(engines_per_sweep):
            build_engine(levels, geometry, _QSPEC, device,
                         activation_bits=_ACTIVATION_BITS)

    cache = DieCache()

    def rebuild_cached():
        for _ in range(engines_per_sweep):
            build_engine(levels, geometry, _QSPEC, device,
                         activation_bits=_ACTIVATION_BITS, die_cache=cache)

    record = _paired_record("die_cache_rebuild", rebuild_cached,
                            rebuild_uncached, repeats,
                            meta={"engines_per_sweep": engines_per_sweep,
                                  "variation_sigma": 0.1})
    record["meta"]["cache_hits"] = cache.hits
    record["meta"]["cache_misses"] = cache.misses
    return record


def bench_im2col(repeats: int = 3) -> Dict:
    """Unpaired trajectory record for the im2col lowering."""
    rng = np.random.default_rng(6)
    x = rng.normal(size=(8, 16, 32, 32))
    timing = time_callable(lambda: F.im2col(x, 5, 5, stride=1, padding=2),
                           name="im2col_lenet_batch8", repeats=repeats)
    return {"name": "im2col_lenet_batch8", "kind": "single",
            "fused": timing.to_record(), "reference": None, "speedup": None,
            "meta": {"input": list(x.shape), "kernel": 5, "padding": 2}}


def _suite_plan(smoke: bool, repeats: int, backend: Optional[str] = None):
    """The single source of truth: ordered (name, runner) pairs."""
    plan = [(f"mvm_{scheme}_16bit_{_POSITIONS}pos",
             lambda scheme=scheme: bench_mvm(scheme, repeats=repeats))
            for scheme in ("forms", "isaac_offset", "dual")]
    plan += [
        (f"mvm_forms_16bit_{_POSITIONS}pos_clipadc",
         lambda: bench_mvm("forms", repeats=repeats, adc=ADCSpec(bits=4),
                           suffix="_clipadc")),
        (f"mvm_forms_16bit_{_POSITIONS}pos_sparse",
         lambda: bench_mvm_sparse(repeats=repeats)),
        ("insitu_network_batch8_w1",
         lambda: bench_insitu_network(1, repeats=repeats, backend=backend)),
        ("insitu_network_batch8_w4",
         lambda: bench_insitu_network(4, repeats=repeats, backend=backend)),
        ("signed_matvec_mixed", lambda: bench_signed_matvec(repeats=repeats)),
        ("die_cache_rebuild", lambda: bench_die_cache(repeats=repeats)),
    ]
    if not smoke:
        plan += [
            (f"mvm_forms_16bit_{_POSITIONS}pos_variation",
             lambda: bench_mvm("forms", repeats=repeats, variation=0.1,
                               suffix="_variation")),
            (f"mvm_forms_16bit_{_POSITIONS}pos_irdrop",
             lambda: bench_mvm_irdrop(repeats=repeats)),
            (f"mvm_forms_16bit_{_POSITIONS}pos_sparse_irdrop",
             lambda: bench_mvm_sparse_irdrop(repeats=repeats)),
            ("cell_iv_sinh_table",
             lambda: bench_cell_iv_table(repeats=repeats)),
            ("im2col_lenet_batch8", lambda: bench_im2col(repeats=repeats)),
        ]
    return plan


def default_suite(smoke: bool = True) -> List[str]:
    """Names of the benchmarks a run will include."""
    return [name for name, _ in _suite_plan(smoke, repeats=1)]


def run_suite(smoke: bool = True, repeats: Optional[int] = None,
              backend: Optional[str] = None) -> Dict:
    """Run the suite and return the JSON payload (see benchmarks/README.md).

    ``backend`` selects the ``repro.runtime`` execution tier of the
    multi-worker benches (and is recorded in the host metadata, so a
    payload always says which tier produced its worker-scaling points).
    """
    from ..runtime import resolve_backend

    if repeats is None:
        repeats = 3 if smoke else 7
    backend = resolve_backend(backend)
    records: List[Dict] = []
    for name, runner in _suite_plan(smoke, repeats, backend=backend):
        record = runner()
        if record["name"] != name:
            raise AssertionError(
                f"suite plan out of sync: {record['name']!r} != {name!r}")
        records.append(record)

    headline = next(r for r in records if r["name"] == HEADLINE_BENCH)
    host = {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "fused_kernel_max_elements": fused_kernel_max_elements(),
        "backend": backend,
    }
    if (os.cpu_count() or 1) <= 1:
        host["parallelism_note"] = (
            "single-core host: the multi-worker points (w4 vs w1) measure "
            "dispatch overhead, not scaling — w4 >= w1 is not expected here")
    return {
        "schema": BENCH_SCHEMA,
        "created_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "mode": "smoke" if smoke else "full",
        "host": host,
        "records": records,
        "criteria": {
            "headline_bench": HEADLINE_BENCH,
            "min_speedup": HEADLINE_MIN_SPEEDUP,
            "measured_speedup": headline["speedup"],
            "pass": headline["speedup"] >= HEADLINE_MIN_SPEEDUP,
        },
    }


def write_payload(path, payload: Dict,
                  preserve_kinds: tuple = ("serving", "chaos",
                                           "cluster", "obs")) -> None:
    """Write a BENCH payload, carrying over records of other subsystems.

    ``run_suite`` regenerates only the *engine* records; records of the
    kinds in ``preserve_kinds`` (the serving curves recorded by
    ``benchmarks/bench_serving.py`` and friends, the chaos points of
    ``benchmarks/bench_chaos.py``, the cluster kill/restart points of
    ``benchmarks/bench_cluster.py``, the observability-overhead points of
    ``benchmarks/bench_obs.py``) found in an existing file at ``path``
    are appended unless the new payload already carries a record of the
    same name — so the two recorders can share one ``BENCH_engine.json``
    without clobbering each other.  An existing file that cannot be
    parsed raises instead of being silently overwritten: it may hold the
    only copy of the other recorder's trajectory.
    """
    previous = None
    if os.path.exists(path):
        try:
            with open(path) as handle:
                previous = json.load(handle)
        except ValueError as exc:
            raise ValueError(
                f"{path} exists but is not valid JSON ({exc}); refusing to "
                "overwrite it — it may hold records this run would drop"
            ) from exc
    if previous is not None and preserve_kinds:
        have = {record["name"] for record in payload.get("records", [])}
        payload = dict(payload)
        payload["records"] = list(payload.get("records", [])) + [
            record for record in previous.get("records", [])
            if record.get("kind") in preserve_kinds
            and record["name"] not in have]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

"""Execution pipeline model tests (Fig. 12)."""

import pytest

from repro.arch import BASE_STAGES, POOLING_STAGES, PipelineModel


class TestPipelineModel:
    def test_stage_counts(self):
        assert PipelineModel().total_stages == BASE_STAGES == 22
        assert PipelineModel(pooling=True).total_stages == POOLING_STAGES == 26

    def test_feed_stages(self):
        assert PipelineModel(input_bits=16).feed_stages == 16

    def test_skipping_reduces_stages(self):
        model = PipelineModel(input_bits=16)
        assert model.stages_with_skipping(10.0) == 22 - 6
        assert model.stages_with_skipping(16.0) == 22

    def test_skipping_clamped(self):
        model = PipelineModel(input_bits=16)
        assert model.stages_with_skipping(0.5) == 22 - 15  # at least 1 bit
        assert model.stages_with_skipping(99.0) == 22

    def test_fill_latency(self):
        model = PipelineModel(input_bits=16, cycle_time_s=100e-9)
        assert model.fill_latency_s() == pytest.approx(22 * 100e-9)
        assert model.fill_latency_s(10.0) == pytest.approx(16 * 100e-9)

    def test_initiation_interval_is_feed_phase(self):
        model = PipelineModel(input_bits=16, cycle_time_s=100e-9)
        assert model.initiation_interval_s() == pytest.approx(1.6e-6)
        assert model.initiation_interval_s(8.0) == pytest.approx(0.8e-6)

    def test_throughput_inverse(self):
        model = PipelineModel(input_bits=8)
        assert model.throughput_inputs_per_s(4.0) == pytest.approx(
            1.0 / model.initiation_interval_s(4.0))

    def test_stage_labels_cover_pipeline(self):
        model = PipelineModel(input_bits=16)
        labels = model.stage_labels()
        assert labels[0] == "eDRAM read"
        assert sum("crossbar/ADC" in l for l in labels) == 16
        pooled = PipelineModel(input_bits=16, pooling=True).stage_labels()
        assert len(pooled) == len(labels) + 4

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineModel(input_bits=0)

"""Per-layer pruning-ratio selection (the paper's Sec. III-A methodology).

FORMS "carefully choos[es] the pruning ratio for each DNN layer to avoid
unnecessary accuracy drop" and snaps the kept structure to the crossbar
granularity.  This example shows the full workflow the paper implies:

1. scan every layer's pruning sensitivity independently (projection-only,
   no retraining — the pessimistic bound);
2. select per-layer keep ratios within an accuracy tolerance, snapping them
   up to crossbar slice boundaries (pruning below a multiple of the crossbar
   size costs accuracy without saving hardware);
3. feed the selection into the ADMM pipeline through
   ``FORMSConfig.per_layer_keep`` and compare against a uniform-ratio run.

Run:  python examples/layer_sensitivity.py
"""

from repro.analysis import line_chart, render_table
from repro.core import (ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline,
                        layer_sensitivity_scan, select_keep_ratios,
                        sensitivity_report)
from repro.nn import (Adam, Conv2d, Flatten, Linear, MaxPool2d, ReLU,
                      Sequential, evaluate, fit, set_init_seed,
                      synthetic_cifar10)
from repro.reram.variation import clone_model

KEEP_RATIOS = (1.0, 0.8, 0.6, 0.4, 0.2)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Train the baseline.
    # ------------------------------------------------------------------
    set_init_seed(5)
    train_set, test_set = synthetic_cifar10(train_size=384, test_size=192,
                                            seed=5)
    model = Sequential(
        Conv2d(3, 16, 3, padding=1), ReLU(), MaxPool2d(2),
        Conv2d(16, 32, 3, padding=1), ReLU(), MaxPool2d(2),
        Flatten(), Linear(32 * 4 * 4, 10),
    )
    print("training a small CIFAR-10-style CNN ...")
    fit(model, train_set, Adam(model.parameters(), lr=1e-3), epochs=6,
        batch_size=32)
    clean = evaluate(model, test_set).accuracy
    print(f"clean accuracy: {clean:.3f}\n")

    # ------------------------------------------------------------------
    # 2. Sensitivity scan.
    # ------------------------------------------------------------------
    print("scanning per-layer pruning sensitivity (projection only) ...")
    curves = layer_sensitivity_scan(model, test_set, fragment_size=8,
                                    keep_ratios=KEEP_RATIOS)
    series = {name: [a * 100.0 for a in curve.accuracies]
              for name, curve in curves.items()}
    print(line_chart(list(KEEP_RATIOS), series,
                     title="projection-only accuracy (%) vs keep ratio",
                     height=10, width=45, y_fmt=".1f"))
    print()

    # ------------------------------------------------------------------
    # 3. Select + snap, then run the pipeline against the selection.
    # ------------------------------------------------------------------
    selection = select_keep_ratios(curves, clean, tolerance=0.04,
                                   crossbar=CrossbarShape(32, 32),
                                   cells_per_weight=4)
    print(render_table(
        ["layer", "matrix", "best acc %", "worst acc %", "chosen keep"],
        sensitivity_report(curves, selection),
        title="sensitivity scan summary"))
    print()

    admm = ADMMConfig(iterations=2, epochs_per_iteration=1, retrain_epochs=2)
    results = {}
    for label, per_layer in (("uniform 60% keep", {}),
                             ("sensitivity-selected",
                              selection.as_per_layer_keep())):
        config = FORMSConfig(fragment_size=8, crossbar=CrossbarShape(32, 32),
                             filter_keep=0.6, shape_keep=0.6,
                             per_layer_keep=per_layer,
                             prune_admm=admm, polarize_admm=admm,
                             quantize_admm=admm)
        twin = clone_model(model)
        result = FORMSPipeline(config).optimize(twin, train_set, test_set,
                                                seed=5)
        results[label] = result
        print(f"{label:24s}: accuracy {result.final_accuracy:.3f} "
              f"(drop {clean - result.final_accuracy:+.3f}), "
              f"crossbar reduction "
              f"{result.compression.crossbar_reduction:.1f}x")
    print("\nthe sensitivity-selected run prunes fragile layers less and "
          "robust layers more,\nspending the accuracy budget where the "
          "hardware actually saves crossbars.")


if __name__ == "__main__":
    main()

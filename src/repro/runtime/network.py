"""Parallel whole-network in-situ inference.

:func:`repro.reram.inference.build_insitu_network` produces a model whose
conv/linear layers run on crossbar engines; this module executes that model
over a batch of inputs with the batch split into *tiles* and the tiles
fanned out across a :class:`~repro.runtime.executor.WorkerPool`.  Tiles are
independent end to end (a feedforward network has no cross-image state), so
tile-level parallelism is also pipeline parallelism: while one worker's
tile occupies layer 3's engine, another tile drives layer 1 — different
layers of the network genuinely run concurrently.

Numerical contract
------------------
* The **tile size** is part of the numerical configuration: activation
  quantization picks its scale per engine call, so a different tiling can
  quantize a tile on a (slightly) different grid.  Fix ``tile_size`` and
  results are reproducible.
* The **worker count** is not: for a fixed tiling, outputs and engine
  stats are bit-identical at any worker count, with or without read noise
  (noise is keyed per (input block, job), not per draw order).  This is
  asserted in ``tests/runtime/``.

Engines may be shared freely across tiles — kernel calls accumulate stats
in per-call locals and merge under the stats lock.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..nn.tensor import Tensor
from .executor import WorkerPool


def _engine_list(engines) -> List:
    if hasattr(engines, "values"):
        return list(engines.values())
    return list(engines)


def attach_pool(engines, pool: Optional[WorkerPool]) -> None:
    """Point every engine's in-layer chunk fan-out at ``pool``.

    Layer-level parallelism: one big MVM's independent job chunks spread
    across the workers.  Composes safely with tile-level fan-out on the
    same pool (a map issued from a worker runs inline), but for many small
    tiles the tile-level fan-out alone is usually the better schedule.
    """
    for engine in _engine_list(engines):
        engine.pool = pool


def detach_pool(engines) -> None:
    """Restore serial in-layer execution on every engine."""
    attach_pool(engines, None)


def _tiles(batch: int, tile_size: int) -> List[slice]:
    return [slice(start, min(start + tile_size, batch))
            for start in range(0, batch, tile_size)]


def infer_tiled(model, images: np.ndarray, *, workers: Optional[int] = None,
                tile_size: int = 1, pool: Optional[WorkerPool] = None
                ) -> np.ndarray:
    """Run ``model`` over ``images`` with batch tiles fanned out on workers.

    ``images`` is the usual ``(batch, ...)`` input array; returns the
    concatenated ``(batch, ...)`` output array.  ``pool`` (if given) is
    borrowed and left open; otherwise a pool of ``workers`` is created for
    the call.  ``workers=1`` (or a 1-image batch) is the serial baseline —
    the identical code path minus the threads.
    """
    images = np.asarray(images)
    if images.ndim < 1 or images.shape[0] == 0:
        raise ValueError("images must carry at least one batch entry")
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    tiles = _tiles(images.shape[0], tile_size)

    def run_tile(tile: slice) -> np.ndarray:
        return model(Tensor(images[tile])).data

    if pool is not None:
        outputs = pool.map(run_tile, tiles)
    else:
        with WorkerPool(workers) as owned:
            outputs = owned.map(run_tile, tiles)
    return np.concatenate(outputs, axis=0)


def run_network_serial(model, images: np.ndarray, *,
                       tile_size: int = 1) -> np.ndarray:
    """The serial reference schedule: same tiling, no pool, one thread."""
    images = np.asarray(images)
    outputs = [model(Tensor(images[tile])).data
               for tile in _tiles(images.shape[0], tile_size)]
    return np.concatenate(outputs, axis=0)


def evaluate_tiled(model, dataset, *, workers: Optional[int] = None,
                   tile_size: int = 8) -> float:
    """Classification accuracy of ``model`` on ``dataset`` via tiled fan-out.

    ``dataset`` follows the ``repro.nn.data`` convention (``images`` /
    ``labels`` arrays).  The serving-shaped entry point: one call, whole
    test set, all workers busy.
    """
    logits = infer_tiled(model, dataset.images, workers=workers,
                         tile_size=tile_size)
    predictions = np.argmax(logits, axis=1)
    return float((predictions == dataset.labels).mean())

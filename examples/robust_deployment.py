"""Variation-robust deployment: noise-aware fine-tuning before tape-out.

Table VI of the paper shows device variation costs accuracy, more so for
pruned models, and points at variation-aware training [84] as the fix.  This
example runs that mitigation on our substrate:

1. train + FORMS-optimize a small CNN;
2. measure accuracy degradation across simulated dies (lognormal sigma=0.2);
3. fine-tune with per-batch lognormal weight noise (structure and fragment
   signs preserved throughout);
4. re-measure: the tuned model holds its accuracy on noisy dies.

Run:  python examples/robust_deployment.py
"""

from repro.analysis import render_table
from repro.core import (ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline,
                        RobustTuneConfig, robust_finetune)
from repro.nn import (Adam, Conv2d, Flatten, Linear, ReLU, Sequential,
                      evaluate, fit, set_init_seed)
from repro.nn.data import make_synthetic
from repro.reram.variation import clone_model, variation_study

SIGMA = 0.2
DIES = 10


def main() -> None:
    set_init_seed(4)
    train_set, test_set = make_synthetic("deploy", 4, 1, 12, 320, 160, seed=4)
    model = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(),
                       Conv2d(8, 8, 3, padding=1), ReLU(),
                       Flatten(), Linear(8 * 12 * 12, 4))
    print("training ...")
    fit(model, train_set, Adam(model.parameters(), 1e-3), epochs=5, batch_size=32)

    admm = ADMMConfig(iterations=2, epochs_per_iteration=1, retrain_epochs=2)
    config = FORMSConfig(fragment_size=4, crossbar=CrossbarShape(16, 16),
                         filter_keep=0.6, shape_keep=0.6, do_quantize=False,
                         prune_admm=admm, polarize_admm=admm, quantize_admm=admm)
    print("FORMS optimization (prune + polarize) ...")
    FORMSPipeline(config).optimize(model, train_set, test_set)
    clean_acc = evaluate(model, test_set).accuracy

    print(f"measuring {DIES} noisy dies at sigma={SIGMA} ...")
    before = variation_study(model, config, test_set, sigma=SIGMA, runs=DIES,
                             scheme="forms", seed=8)

    print("variation-aware fine-tuning (noise-injected, constraint-preserving) ...")
    tuned = robust_finetune(clone_model(model), config, train_set,
                            RobustTuneConfig(sigma=SIGMA, epochs=4), seed=8)
    tuned_clean = evaluate(tuned, test_set).accuracy
    after = variation_study(tuned, config, test_set, sigma=SIGMA, runs=DIES,
                            scheme="forms", seed=8)

    rows = [
        ["baseline (FORMS-optimized)", clean_acc * 100,
         before.mean_accuracy * 100, before.mean_degradation * 100],
        ["noise-aware fine-tuned", tuned_clean * 100,
         after.mean_accuracy * 100, after.mean_degradation * 100],
    ]
    print()
    print(render_table(
        ["model", "clean acc %", f"mean acc across {DIES} dies %",
         "degradation %"],
        rows, title=f"Variation robustness at lognormal(0, {SIGMA})"))
    print("\nThe fine-tuned model keeps its pruned structure and fragment "
          "signs (verified by the projection clamps) while its decision "
          "boundaries tolerate conductance noise — the Sec. V-E mitigation "
          "realized on this substrate.")


if __name__ == "__main__":
    main()

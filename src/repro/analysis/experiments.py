"""Experiment drivers: one function per paper table / figure.

Each driver returns an :class:`ExperimentTable` whose ``rendered`` field is a
printable reproduction of the corresponding paper artifact, plus structured
rows for programmatic checks.  Benchmarks in ``benchmarks/`` call these
functions; EXPERIMENTS.md records their output against the paper's numbers.

Model/dataset pairs, prune aggressiveness per dataset, and all cost knobs are
centralized here so tests, examples and benches agree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch import (PAPER_TABLE5, RECORDED_BASELINES, dadiannao_chip,
                    extract_workload, forms_chip, forms_config, isaac_chip,
                    isaac16_config, isaac32_config, network_performance,
                    peak_throughput, pruned_quantized_isaac_config,
                    puma_config, table3_rows)
from ..arch.perf import AcceleratorConfig
from ..arch.workload import (NetworkWorkload, trace_dimensions,
                             transfer_measurements)
from ..core import (CrossbarShape, FORMSConfig, FORMSPipeline, FORMSResult,
                    layer_eic_stats)
from ..core.zero_skip import EICStats
from ..nn import (Adam, Dataset, Tensor, build_model, evaluate, fit,
                  load_dataset, set_init_seed)
from ..reram.variation import clone_model, variation_study
from .presets import (FAST, FIG13_WORKLOADS, FIG14_WORKLOADS, STANDARD,
                      TABLE1_WORKLOADS, TABLE2_WORKLOADS, ExperimentScale)
from .tables import render_table


@dataclass
class ExperimentTable:
    """One reproduced table/figure."""

    title: str
    headers: List[str]
    rows: List[List]
    rendered: str = ""
    floatfmt: str = ".4g"
    extras: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.rendered:
            self.rendered = render_table(self.headers, self.rows,
                                         title=self.title, floatfmt=self.floatfmt)


# ---------------------------------------------------------------------------
# Shared infrastructure
# ---------------------------------------------------------------------------

#: per-dataset pruning aggressiveness (keep fractions) mirroring the paper's
#: regime: CIFAR-10 models tolerate deep pruning, ImageNet barely any.
DATASET_KEEP = {
    "mnist": 0.4,
    "cifar10": 0.45,
    "cifar100": 0.55,
    "imagenet": 0.75,
}

#: image sizes for full-dimension workload tracing (ImageNet traced at 64x64;
#: uniform position scaling cancels in the relative FPS results).
TRACE_IMAGE_SIZE = {"mnist": 28, "cifar10": 32, "cifar100": 32, "imagenet": 64}


@dataclass
class BaselineRun:
    """A trained (uncompressed) model plus its data splits."""

    model_name: str
    dataset_name: str
    model: object
    train_set: Dataset
    test_set: Dataset
    accuracy: float


def dataset_for(name: str, scale: ExperimentScale, seed: int = 0) -> Tuple[Dataset, Dataset]:
    return load_dataset(name, train_size=scale.train_size,
                        test_size=scale.test_size, seed=seed)


#: extra baseline-training passes for the harder synthetic datasets, so the
#: reference accuracy is near-converged and the reported "accuracy drop"
#: measures compression rather than leftover trainability.
_BASELINE_EPOCH_BOOST = {"cifar100": 2, "imagenet": 2}


def train_baseline(model_name: str, dataset_name: str,
                   scale: ExperimentScale = FAST, seed: int = 0,
                   width_mult: Optional[float] = None) -> BaselineRun:
    """Train the scaled benchmark model on its synthetic dataset."""
    set_init_seed(seed)
    train_set, test_set = dataset_for(dataset_name, scale, seed=seed)
    model = build_model(model_name, train_set.num_classes, train_set.channels,
                        train_set.image_size,
                        width_mult=width_mult or scale.width_mult,
                        depth_scale=scale.depth_scale)
    epochs = scale.baseline_epochs * _BASELINE_EPOCH_BOOST.get(dataset_name, 1)
    fit(model, train_set, Adam(model.parameters(), lr=1e-3),
        epochs=epochs, batch_size=scale.batch_size, seed=seed)
    accuracy = evaluate(model, test_set).accuracy
    return BaselineRun(model_name, dataset_name, model, train_set, test_set, accuracy)


def forms_config_for(scale: ExperimentScale, dataset_name: str,
                     fragment_size: int = 8, policy: str = "w",
                     do_prune: bool = True, do_polarize: bool = True,
                     do_quantize: bool = True,
                     filter_keep: Optional[float] = None,
                     shape_keep: Optional[float] = None) -> FORMSConfig:
    """Build the FORMS pipeline configuration for one experiment."""
    keep = DATASET_KEEP.get(dataset_name, 0.5)
    admm = scale.admm()
    return FORMSConfig(
        fragment_size=fragment_size,
        policy=policy,
        crossbar=scale.crossbar,
        filter_keep=filter_keep if filter_keep is not None else keep,
        shape_keep=shape_keep if shape_keep is not None else keep,
        do_prune=do_prune, do_polarize=do_polarize, do_quantize=do_quantize,
        prune_admm=admm, polarize_admm=admm, quantize_admm=admm,
    )


def optimize_baseline(baseline: BaselineRun, config: FORMSConfig,
                      seed: int = 0) -> FORMSResult:
    """Run the FORMS pipeline on a *copy* of a trained baseline."""
    model = clone_model(baseline.model)
    return FORMSPipeline(config).optimize(model, baseline.train_set,
                                          baseline.test_set, seed=seed)


# ---------------------------------------------------------------------------
# Tables I & II — compression results
# ---------------------------------------------------------------------------

def compression_rows(baseline: BaselineRun, scale: ExperimentScale,
                     fragment_sizes: Sequence[int] = (4, 8, 16),
                     seed: int = 0) -> List[List]:
    """Paper-style rows: prune ratio, accuracy drop and crossbar reduction per
    fragment size for one model/dataset pair.

    Following the paper's flow, structured pruning runs once (fragment signs
    are then "determined by the structurally pruned model"); polarization and
    quantization run per fragment size on top of the shared pruned model.
    """
    prune_cfg = forms_config_for(scale, baseline.dataset_name,
                                 do_polarize=False, do_quantize=False)
    pruned_model = clone_model(baseline.model)
    FORMSPipeline(prune_cfg).optimize(pruned_model, baseline.train_set,
                                      baseline.test_set, seed=seed)
    rows: List[List] = []
    for m in fragment_sizes:
        config = forms_config_for(scale, baseline.dataset_name, fragment_size=m,
                                  do_prune=False)
        config = replace(config, freeze_existing_structure=True)
        model = clone_model(pruned_model)
        result = FORMSPipeline(config).optimize(model, baseline.train_set,
                                                baseline.test_set, seed=seed)
        rows.append([
            f"{baseline.model_name} ({baseline.dataset_name})",
            baseline.accuracy * 100.0,
            result.compression.prune_ratio,
            m,
            (baseline.accuracy - result.final_accuracy) * 100.0,
            result.compression.crossbar_reduction,
        ])
    return rows


_COMPRESSION_HEADERS = ["method", "orig acc %", "prune ratio",
                        "fragment", "acc drop %", "xbar reduction"]


def table1(scale: ExperimentScale = FAST, seed: int = 0,
           fragment_sizes: Sequence[int] = (4, 8, 16)) -> ExperimentTable:
    """Table I — MNIST & CIFAR-10 compression."""
    rows: List[List] = []
    for model_name, dataset_name in TABLE1_WORKLOADS:
        baseline = train_baseline(model_name, dataset_name, scale, seed=seed)
        rows.extend(compression_rows(baseline, scale, fragment_sizes, seed=seed))
    return ExperimentTable("Table I: compression on small/medium datasets",
                           _COMPRESSION_HEADERS, rows)


def table2(scale: ExperimentScale = FAST, seed: int = 0,
           fragment_sizes: Sequence[int] = (4, 8, 16)) -> ExperimentTable:
    """Table II — CIFAR-100 & ImageNet compression."""
    rows: List[List] = []
    for model_name, dataset_name in TABLE2_WORKLOADS:
        baseline = train_baseline(model_name, dataset_name, scale, seed=seed)
        rows.extend(compression_rows(baseline, scale, fragment_sizes, seed=seed))
    return ExperimentTable("Table II: compression on medium/large datasets",
                           _COMPRESSION_HEADERS, rows)


# ---------------------------------------------------------------------------
# Figure 6 — accuracy vs fragment size
# ---------------------------------------------------------------------------

def fragment_size_sweep(model_names: Sequence[str] = ("vgg16", "resnet18", "resnet50"),
                        dataset_name: str = "cifar100",
                        sizes: Sequence[int] = (1, 4, 8, 16, 32, 64, 128),
                        scale: ExperimentScale = FAST, seed: int = 0,
                        policy: str = "c") -> ExperimentTable:
    """Figure 6 — polarization-only accuracy vs fragment size.

    The paper uses C-major polarization on CIFAR (its best policy there).
    Fragment size 1 trivially satisfies polarization (every fragment is a
    single weight), so it anchors each curve at the unconstrained accuracy.
    """
    headers = ["model"] + [f"m={m}" for m in sizes] + ["baseline"]
    rows: List[List] = []
    curves: Dict[str, List[float]] = {}
    for model_name in model_names:
        baseline = train_baseline(model_name, dataset_name, scale, seed=seed)
        accs: List[float] = []
        for m in sizes:
            config = forms_config_for(scale, dataset_name, fragment_size=m,
                                      policy=policy, do_prune=False,
                                      do_quantize=False)
            result = optimize_baseline(baseline, config, seed=seed)
            accs.append(result.final_accuracy * 100.0)
        curves[model_name] = accs
        rows.append([model_name] + accs + [baseline.accuracy * 100.0])
    table = ExperimentTable(
        f"Figure 6: accuracy (%) vs fragment size ({dataset_name}, {policy}-major)",
        headers, rows)
    table.extras["curves"] = curves
    return table


# ---------------------------------------------------------------------------
# Figure 8 — effective input cycles
# ---------------------------------------------------------------------------

def eic_experiment(model_name: str = "resnet50", dataset_name: str = "cifar100",
                   fragment_sizes: Sequence[int] = (4, 8, 16, 32, 64, 128),
                   scale: ExperimentScale = FAST, seed: int = 0) -> ExperimentTable:
    """Figure 8 — EIC distribution (a) and per-layer averages (b)."""
    baseline = train_baseline(model_name, dataset_name, scale, seed=seed)
    workload = extract_workload(baseline.model, baseline.test_set,
                                fragment_sizes=fragment_sizes,
                                sample_images=scale.sample_images)
    # (a): distribution buckets over all layers, per fragment size.
    buckets = (1, (2, 13), 14, 15, 16)
    headers_a = ["fragment size"] + ["EIC " + (f"{b[0]}~{b[1]}" if isinstance(b, tuple)
                                               else str(b)) for b in buckets]
    rows_a: List[List] = []
    merged: Dict[int, EICStats] = {}
    for m in fragment_sizes:
        stats = None
        for layer in workload.layers:
            s = layer.eic_stats[m]
            stats = s if stats is None else stats.merge(s)
        merged[m] = stats
        pct = stats.bucket_percentages(buckets)
        rows_a.append([m] + [pct[k] for k in pct])
    # (b): per-layer average EIC.
    picked = _spread_indices(len(workload.layers), 3)
    headers_b = ["fragment size"] + [f"layer {i}" for i in picked] + ["all-layers avg"]
    rows_b: List[List] = []
    for m in fragment_sizes:
        per_layer = [workload.layers[i].eic_stats[m].average for i in picked]
        rows_b.append([m] + per_layer + [workload.average_eic(m)])
    rendered = (render_table(headers_a, rows_a,
                             title=f"Figure 8a: EIC distribution %, {model_name}/{dataset_name}")
                + "\n\n" +
                render_table(headers_b, rows_b, title="Figure 8b: average EIC per layer"))
    table = ExperimentTable("Figure 8: effective input cycles",
                            headers_a, rows_a, rendered=rendered)
    table.extras["per_layer_rows"] = rows_b
    table.extras["merged_stats"] = merged
    table.extras["workload"] = workload
    return table


def _spread_indices(n: int, k: int) -> List[int]:
    """k indices spread across range(n) (early / middle / late layers)."""
    if n <= k:
        return list(range(n))
    return [round(i * (n - 1) / (k - 1)) for i in range(k)]


# ---------------------------------------------------------------------------
# Tables III & IV — hardware cost
# ---------------------------------------------------------------------------

def table3(fragment_size: int = 8) -> ExperimentTable:
    """Table III — MCU component specs, FORMS vs ISAAC."""
    rows = [[r["component"], r["forms_power_mw"], r["forms_area_mm2"],
             r["isaac_power_mw"], r["isaac_area_mm2"]]
            for r in table3_rows(fragment_size)]
    return ExperimentTable(
        f"Table III: MCU components (FORMS fragment {fragment_size} vs ISAAC)",
        ["component", "FORMS mW", "FORMS mm2", "ISAAC mW", "ISAAC mm2"],
        rows)


def table4(fragment_size: int = 8) -> ExperimentTable:
    """Table IV — chip-level power/area, FORMS vs ISAAC vs DaDianNao."""
    forms = forms_chip(fragment_size)
    isaac = isaac_chip()
    dadiannao = dadiannao_chip()
    rows = [
        ["12 MCUs per tile", forms.tile.mcus_power_mw, forms.tile.mcus_area_mm2,
         isaac.tile.mcus_power_mw, isaac.tile.mcus_area_mm2],
        ["digital unit", forms.tile.digital_power_mw, forms.tile.digital_area_mm2,
         isaac.tile.digital_power_mw, isaac.tile.digital_area_mm2],
        ["1 tile", forms.tile.power_mw, forms.tile.area_mm2,
         isaac.tile.power_mw, isaac.tile.area_mm2],
        [f"{forms.tiles} tiles", forms.tiles_power_mw, forms.tiles_area_mm2,
         isaac.tiles_power_mw, isaac.tiles_area_mm2],
        ["HyperTransport", forms.ht_power_mw, forms.ht_area_mm2,
         isaac.ht_power_mw, isaac.ht_area_mm2],
        ["chip total", forms.power_mw, forms.area_mm2,
         isaac.power_mw, isaac.area_mm2],
        ["DaDianNao total", dadiannao.power_mw, dadiannao.area_mm2, None, None],
    ]
    table = ExperimentTable(
        "Table IV: chip-level power (mW) / area (mm2)",
        ["block", "FORMS mW", "FORMS mm2", "ISAAC mW", "ISAAC mm2"], rows)
    table.extras["forms"] = forms.summary()
    table.extras["isaac"] = isaac.summary()
    return table


# ---------------------------------------------------------------------------
# Table V — peak throughput efficiency
# ---------------------------------------------------------------------------

def table5(scale: ExperimentScale = FAST, seed: int = 0,
           reference_workload: Optional[NetworkWorkload] = None) -> ExperimentTable:
    """Table V — GOPs/s/mm2 and GOPs/W normalized to ISAAC.

    Computed rows: ISAAC, FORMS (polarization only / full optimization, 8/16),
    Pruned/Quantized-ISAAC and -PUMA.  The remaining accelerators are the
    paper's recorded literature numbers.  The effective-ops factor of the
    pruned rows is measured on a trained, FORMS-optimized VGG-16 stand-in.
    """
    if reference_workload is None:
        baseline = train_baseline("vgg16", "cifar100", scale, seed=seed)
        config = forms_config_for(scale, "cifar100")
        model = clone_model(baseline.model)
        FORMSPipeline(config).optimize(model, baseline.train_set,
                                       baseline.test_set, seed=seed)
        reference_workload = extract_workload(model, baseline.test_set,
                                              fragment_sizes=(4, 8, 16),
                                              sample_images=scale.sample_images)
    prune_factor = reference_workload.prune_ratio

    base = peak_throughput(isaac16_config())
    rows: List[List] = []

    def add_computed(name: str, pt, paper_key: Optional[str] = None):
        paper = PAPER_TABLE5.get(paper_key or name)
        rows.append([name, pt.gops_per_mm2 / base.gops_per_mm2,
                     pt.gops_per_w / base.gops_per_w,
                     paper[0] if paper else None, paper[1] if paper else None])

    add_computed("ISAAC", base)
    for key in ("DaDianNao", "PUMA", "TPU", "WAX", "SIMBA"):
        rec = RECORDED_BASELINES[key]
        paper = PAPER_TABLE5.get(key)
        rows.append([f"{key} (recorded)", rec.gops_per_mm2_rel, rec.gops_per_w_rel,
                     paper[0], paper[1]])
    for m in (8, 16):
        cfg = AcceleratorConfig(f"FORMS (polarization only, {m})",
                                forms_chip(m), "forms", weight_bits=16)
        add_computed(cfg.name, peak_throughput(cfg))
    pq_isaac = peak_throughput(pruned_quantized_isaac_config(),
                               effective_ops_factor=prune_factor)
    add_computed("Pruned/Quantized-ISAAC", pq_isaac)
    # PUMA's dual crossbars halve stored weights; same pruning benefit.
    pq_puma = peak_throughput(puma_config(8, pruned=True),
                              effective_ops_factor=prune_factor)
    add_computed("Pruned/Quantized-PUMA", pq_puma)
    for m in (8, 16):
        cfg = forms_config(m, name=f"FORMS (full optimization, {m})")
        pt = peak_throughput(cfg, effective_ops_factor=prune_factor,
                             average_eic=reference_workload.average_eic(m))
        add_computed(cfg.name, pt)

    table = ExperimentTable(
        "Table V: peak throughput normalized to ISAAC (measured vs paper)",
        ["architecture", "GOPs/s/mm2 (ours)", "GOPs/W (ours)",
         "GOPs/s/mm2 (paper)", "GOPs/W (paper)"], rows)
    table.extras["prune_factor"] = prune_factor
    table.extras["workload"] = reference_workload
    return table


# ---------------------------------------------------------------------------
# Figures 13/14 — frame-per-second speedups
# ---------------------------------------------------------------------------

def fps_stack_configs(fragment_sizes: Tuple[int, int] = (8, 16)) -> List[AcceleratorConfig]:
    """The six technique stacks plotted in Figs. 13/14 (plus the baseline)."""
    m1, m2 = fragment_sizes
    return [
        isaac32_config(),
        pruned_quantized_isaac_config(),
        puma_config(8, pruned=True),
        forms_config(m1, zero_skip=False,
                     name=f"FORMS-{m1} w/o zero-skip"),
        forms_config(m2, zero_skip=False,
                     name=f"FORMS-{m2} w/o zero-skip"),
        forms_config(m1, zero_skip=True, name=f"FORMS-{m1} full"),
        forms_config(m2, zero_skip=True, name=f"FORMS-{m2} full"),
    ]


def fps_workload(model_name: str, dataset_name: str,
                 scale: ExperimentScale = FAST, seed: int = 0) -> NetworkWorkload:
    """Full-dimension workload with measured compression + EIC grafted on.

    Trains the scaled model, optimizes it with the full FORMS pipeline,
    measures per-layer keep ratios and EIC, then transfers them onto the
    full-width network dimensions traced at the dataset's native image size
    (see DESIGN.md for this two-level protocol).
    """
    baseline = train_baseline(model_name, dataset_name, scale, seed=seed)
    config = forms_config_for(scale, dataset_name)
    model = clone_model(baseline.model)
    FORMSPipeline(config).optimize(model, baseline.train_set,
                                   baseline.test_set, seed=seed)
    measured = extract_workload(model, baseline.test_set,
                                fragment_sizes=(4, 8, 16),
                                sample_images=scale.sample_images)
    image_size = TRACE_IMAGE_SIZE.get(dataset_name, 32)
    set_init_seed(seed + 99)
    full = build_model(model_name, baseline.train_set.num_classes, 3, image_size,
                       width_mult=1.0, depth_scale=1.0)
    dims = trace_dimensions(full, 3, image_size, network=model_name)
    workload = transfer_measurements(dims, measured)
    return workload


def fps_experiment(workloads: Sequence[Tuple[str, str]] = FIG13_WORKLOADS,
                   scale: ExperimentScale = FAST, seed: int = 0,
                   title: str = "Figure 13: FPS speedup over ISAAC-32") -> ExperimentTable:
    """Figures 13/14 — FPS speedups of the six technique stacks."""
    configs = fps_stack_configs()
    headers = ["network/dataset"] + [c.name for c in configs[1:]]
    rows: List[List] = []
    details: Dict[str, Dict[str, float]] = {}
    for model_name, dataset_name in workloads:
        workload = fps_workload(model_name, dataset_name, scale, seed=seed)
        base = network_performance(workload, configs[0]).fps
        speedups = {}
        for config in configs[1:]:
            result = network_performance(workload, config)
            speedups[config.name] = result.fps / base
        details[f"{model_name}/{dataset_name}"] = speedups
        rows.append([f"{model_name}/{dataset_name}"] + list(speedups.values()))
    table = ExperimentTable(title, headers, rows)
    table.extras["speedups"] = details
    return table


def fig13(scale: ExperimentScale = FAST, seed: int = 0) -> ExperimentTable:
    return fps_experiment(FIG13_WORKLOADS, scale, seed,
                          title="Figure 13: FPS speedup over ISAAC-32 (CIFAR-10)")


def fig14(scale: ExperimentScale = FAST, seed: int = 0) -> ExperimentTable:
    return fps_experiment(FIG14_WORKLOADS, scale, seed,
                          title="Figure 14: FPS speedup over ISAAC-32 (CIFAR-100 & ImageNet)")


# ---------------------------------------------------------------------------
# Table VI — device variation robustness
# ---------------------------------------------------------------------------

def table6(scale: ExperimentScale = FAST, seed: int = 0,
           model_name: str = "resnet18",
           dataset_names: Sequence[str] = ("cifar10", "cifar100", "imagenet"),
           sigma: float = 0.1) -> ExperimentTable:
    """Table VI — accuracy degradation under lognormal device variation.

    Four model variants per dataset: original (uncompressed, dual-crossbar
    mapping), polarization-only (FORMS mapping), pruning-only (dual mapping)
    and full optimization (FORMS mapping).  Degradations average
    ``scale.variation_runs`` simulated dies.
    """
    variants = [
        ("original", dict(do_prune=False, do_polarize=False, do_quantize=False), "dual"),
        ("polarization only", dict(do_prune=False, do_quantize=False), "forms"),
        ("pruning only", dict(do_polarize=False, do_quantize=False), "dual"),
        ("full optimization", dict(), "forms"),
    ]
    headers = ["dataset"] + [name for name, _, _ in variants]
    rows: List[List] = []
    for dataset_name in dataset_names:
        baseline = train_baseline(model_name, dataset_name, scale, seed=seed)
        row: List = [dataset_name]
        for _, toggles, scheme in variants:
            config = forms_config_for(scale, dataset_name, **toggles)
            model = clone_model(baseline.model)
            if config.do_prune or config.do_polarize or config.do_quantize:
                FORMSPipeline(config).optimize(model, baseline.train_set,
                                               baseline.test_set, seed=seed)
            study = variation_study(model, config, baseline.test_set,
                                    sigma=sigma, runs=scale.variation_runs,
                                    scheme=scheme, seed=seed)
            row.append(study.mean_degradation * 100.0)
        rows.append(row)
    return ExperimentTable(
        f"Table VI: accuracy degradation (%) under lognormal(0, {sigma}) variation "
        f"({model_name}, {scale.variation_runs} dies)",
        headers, rows)

"""FORMS core: the paper's primary contribution.

Fragment geometry and polarization, crossbar-aware structured pruning,
ReRAM-customized quantization, the ADMM-regularized trainer that enforces all
three during training, input zero-skipping analysis, and crossbar-count
compression accounting.
"""

from .admm import (ADMMConfig, ADMMReport, ADMMTrainer, Constraint,
                   PolarizationConstraint, QuantizationConstraint,
                   StructuredPruningConstraint)
from .compression import (CompressionReport, CrossbarShape, LayerCompression,
                          crossbars_for_matrix, model_compression_report)
from .fragments import (POLICIES, FragmentGeometry, geometry_for_layer,
                        row_permutation)
from .pipeline import (FORMSConfig, FORMSPipeline, FORMSResult,
                       FrozenMaskConstraint, LayerArtifacts,
                       collect_layer_artifacts)
from .polarization import (compute_signs, fragment_signs, is_polarized,
                           polarization_violation, project_polarization,
                           project_stack, sign_flip_fraction)
from .pruning import (PruningSpec, keep_topk_columns, keep_topk_rows,
                      project_structured, prune_ratio, snap_keep_count,
                      structure_summary, structured_mask)
from .quantization import (QuantizationSpec, activation_to_int, dequantize,
                           is_quantized, layer_scale, project_quantization,
                           quantization_error, quantize, quantize_to_int)
from .fault_tolerance import (FaultStudyPoint, MitigationConfig,
                              MitigationPlan, apply_fault_injection,
                              apply_faults_to_magnitudes,
                              fault_tolerance_study, fragment_costs,
                              magnitude_fault_impact, plan_mitigation)
from .robust import RobustTuneConfig, robust_finetune
from .sensitivity import (DEFAULT_KEEP_RATIOS, KeepSelection,
                          SensitivityCurve, layer_sensitivity_scan,
                          select_keep_ratios, sensitivity_report)
from .tinyadc import (TinyADCConstraint, TinyADCSpec, adc_bits_saved,
                      column_sum_bound, fragment_nonzeros,
                      project_fragment_sparsity, required_bits_with_tinyadc)
from .zero_skip import (EICStats, SkipTrace, ZeroSkipLogic,
                        average_eic_over_layers, effective_bits, eic_matrix,
                        fragment_eic, layer_eic_stats)

__all__ = [
    # fragments
    "FragmentGeometry", "geometry_for_layer", "row_permutation", "POLICIES",
    # polarization
    "fragment_signs", "compute_signs", "project_stack", "project_polarization",
    "polarization_violation", "is_polarized", "sign_flip_fraction",
    # pruning
    "PruningSpec", "project_structured", "structured_mask", "structure_summary",
    "prune_ratio", "snap_keep_count", "keep_topk_columns", "keep_topk_rows",
    # quantization
    "QuantizationSpec", "quantize", "quantize_to_int", "dequantize",
    "project_quantization", "layer_scale", "quantization_error", "is_quantized",
    "activation_to_int",
    # admm
    "Constraint", "StructuredPruningConstraint", "PolarizationConstraint",
    "QuantizationConstraint", "ADMMConfig", "ADMMReport", "ADMMTrainer",
    # pipeline
    "FORMSConfig", "FORMSPipeline", "FORMSResult", "LayerArtifacts",
    "FrozenMaskConstraint", "collect_layer_artifacts",
    # zero skipping
    "effective_bits", "fragment_eic", "eic_matrix", "layer_eic_stats",
    "EICStats", "ZeroSkipLogic", "SkipTrace", "average_eic_over_layers",
    # compression
    "CrossbarShape", "crossbars_for_matrix", "LayerCompression",
    "CompressionReport", "model_compression_report",
    # robustness extension
    "RobustTuneConfig", "robust_finetune",
    # fault tolerance (ref [29])
    "MitigationConfig", "MitigationPlan", "plan_mitigation",
    "magnitude_fault_impact", "fragment_costs", "apply_faults_to_magnitudes",
    "apply_fault_injection", "fault_tolerance_study", "FaultStudyPoint",
    # TinyADC constraint (ref [40])
    "TinyADCSpec", "TinyADCConstraint", "project_fragment_sparsity",
    "fragment_nonzeros", "column_sum_bound", "required_bits_with_tinyadc",
    "adc_bits_saved",
    # pruning-ratio sensitivity (Sec. III-A selection procedure)
    "SensitivityCurve", "KeepSelection", "layer_sensitivity_scan",
    "select_keep_ratios", "sensitivity_report", "DEFAULT_KEEP_RATIOS",
]

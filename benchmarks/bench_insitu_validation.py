"""Validation — whole-network in-situ inference vs the digital model.

Closes the loop between the algorithm stack and the hardware stack at
network scale: every conv/linear layer of a FORMS-optimized model executes
on its own bit-serial crossbar engine (im2col, signed decomposition, DAC
cycles, per-fragment ADC, sign-indicator accumulation), and the run is
checked three ways:

* **accuracy** — in-situ accuracy matches the quantized digital model under
  ideal devices (the network-scale version of the engine exactness anchor);
* **cycles** — the engine's measured bit-serial cycles confirm zero-skipping
  saves real cycles against the 16-cycles-per-input worst case;
* **variation** — a noisy die degrades accuracy, reproducing the Table VI
  methodology through the full signal path instead of the effective-weight
  shortcut.
"""

import numpy as np
import pytest

from repro.analysis import FAST, ExperimentTable, forms_config_for, train_baseline
from repro.core import FORMSPipeline
from repro.nn import evaluate
from repro.reram import DeviceSpec, ReRAMDevice, build_insitu_network, total_cycles_fed
from repro.reram.variation import clone_model


def run_validation(seed: int = 0):
    baseline = train_baseline("lenet5", "mnist", FAST, seed=seed)
    config = forms_config_for(FAST, "mnist", fragment_size=8)
    model = clone_model(baseline.model)
    FORMSPipeline(config).optimize(model, baseline.train_set,
                                   baseline.test_set, seed=seed)
    digital_acc = evaluate(model, baseline.test_set).accuracy

    rows = []
    extras = {}
    for label, sigma in (("ideal die", 0.0), ("noisy die (sigma=0.1)", 0.1)):
        device = ReRAMDevice(DeviceSpec(), variation_sigma=sigma,
                             seed=seed + 1)
        insitu, engines = build_insitu_network(model, config, device,
                                               activation_bits=16)
        accuracy = evaluate(insitu, baseline.test_set).accuracy
        cycles = total_cycles_fed(engines)
        conversions = sum(e.stats.conversions for e in engines.values())
        saturated = sum(e.stats.saturated for e in engines.values())
        rows.append([label, digital_acc * 100.0, accuracy * 100.0,
                     cycles, 100.0 * saturated / max(conversions, 1)])
        extras[label] = {"accuracy": accuracy, "cycles": cycles,
                         "engines": len(engines)}
    extras["digital_accuracy"] = digital_acc
    extras["batches"] = -(-len(baseline.test_set) // 64)
    table = ExperimentTable(
        "Validation: whole-network in-situ inference (LeNet-5, FORMS-8)",
        ["die", "digital acc %", "in-situ acc %", "bit-serial cycles",
         "ADC saturation %"],
        rows)
    table.extras.update(extras)
    return table


def test_insitu_validation(benchmark, save_table):
    result = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    save_table("insitu_validation", result)
    benchmark.extra_info["table"] = result.rendered
    digital = result.extras["digital_accuracy"]
    ideal = result.extras["ideal die"]
    noisy = result.extras["noisy die (sigma=0.1)"]
    # Network-scale exactness: in-situ == digital on the ideal die.
    assert ideal["accuracy"] == pytest.approx(digital, abs=0.02)
    # Variation through the full signal path cannot improve accuracy much.
    assert noisy["accuracy"] <= ideal["accuracy"] + 0.03
    # Zero-skipping: measured cycles stay below the no-skip worst case
    # (every layer feeding 16 bit cycles for both signed passes per batch).
    worst = ideal["engines"] * 2 * 16 * result.extras["batches"]
    assert 0 < ideal["cycles"] < worst

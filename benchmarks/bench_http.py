#!/usr/bin/env python
"""Open-loop HTTP serving benchmark: the Poisson curve measured over the wire.

Drives the :class:`repro.serving.HttpFrontend` with open-loop Poisson
arrivals — every request a real ``POST /v1/infer`` over a loopback
socket on its own client thread — and records one ``serving_http_r*``
record per offered rate into ``BENCH_engine.json`` (kind ``"serving"``,
merged: engine, ``serving_poisson_*`` and ``serving_multitenant_*``
records are preserved; schema in ``benchmarks/README.md``).

The point of the fourth curve: the ``serving_poisson_*`` baseline stops
at ``submit_async``, so comparing the two curves at the same offered
rate isolates what the transport adds — connect, JSON/base64 payloads,
parse, respond.  Each record carries both views (client round-trip
``rtt_*`` vs server-side ``latency_*``).

Usage::

    PYTHONPATH=src python benchmarks/bench_http.py --smoke      # < 30 s
    PYTHONPATH=src python benchmarks/bench_http.py              # fuller curve
    PYTHONPATH=src python benchmarks/bench_http.py \\
        --rates 25 100 400 --requests 64 --binary -o /tmp/http.json

Every rate point asserts bit-identity of every decoded HTTP output
against the serial single-image path before it is recorded — the
transport is proven numerics-invisible before any number lands.  Exits
non-zero if that assertion fails or fewer than two points were recorded.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf import merge_records_into_file, run_http_point  # noqa: E402
from repro.reram import DieCache                                # noqa: E402

#: offered arrival rates (requests/s) per mode — mirrors bench_serving so
#: the http and in-process curves pair up point by point
SMOKE_RATES = (50.0, 200.0)
FULL_RATES = (25.0, 50.0, 100.0, 200.0, 400.0)


def format_point(record: dict) -> str:
    results, meta = record["results"], record["meta"]
    return (f"{record['name']:22s} offered {results['offered_rate_rps']:6.0f} "
            f"rps -> served {results['throughput_rps']:6.1f} rps, "
            f"rtt p50 {results['rtt_p50_s'] * 1e3:7.2f} ms "
            f"(server p50 {results['latency_p50_s'] * 1e3:6.2f} ms), "
            f"rtt p95 {results['rtt_p95_s'] * 1e3:7.2f} ms, "
            f"mean batch {results['mean_batch_size']:.2f} "
            f"(w={meta['workers']}, {meta['encoding']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: two rate points, fewer requests")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="offered arrival rates in requests/s "
                             "(default: two smoke points / five full points)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per rate point (default 24 smoke / 48)")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-pool size (default: FORMS_WORKERS or "
                             "CPU count)")
    parser.add_argument("--binary", action="store_true",
                        help="base64 .npy payloads instead of JSON arrays")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_engine.json",
                        help="BENCH json to merge records into (default: "
                             "BENCH_engine.json at the repo root)")
    args = parser.parse_args(argv)

    rates = args.rates if args.rates is not None else (
        list(SMOKE_RATES) if args.smoke else list(FULL_RATES))
    requests = args.requests if args.requests is not None else (
        24 if args.smoke else 48)
    if len(rates) < 2:
        print("ERROR: need at least two arrival-rate points for a curve",
              file=sys.stderr)
        return 1

    records = []
    die_cache = DieCache()   # shared: rate points rebuild identical engines
    for rate in rates:
        record = run_http_point(
            rate, requests, max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms, workers=args.workers,
            seed=args.seed, binary=args.binary, die_cache=die_cache)
        print(format_point(record))
        records.append(record)

    try:
        merge_records_into_file(args.output, records)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    print(f"[{len(records)} http serving records merged into {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""FORMS pipeline end-to-end tests (small scale)."""

import numpy as np
import pytest

from repro.core import (ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline,
                        collect_layer_artifacts, is_polarized)
from repro.nn import (Adam, Conv2d, Flatten, Linear, ReLU, Sequential,
                      evaluate, fit, set_init_seed)
from repro.reram.variation import clone_model


def fast_admm():
    return ADMMConfig(iterations=1, epochs_per_iteration=1, retrain_epochs=1,
                      rho=2e-2)


def fast_config(**overrides):
    defaults = dict(fragment_size=4, crossbar=CrossbarShape(16, 16),
                    filter_keep=0.6, shape_keep=0.6,
                    prune_admm=fast_admm(), polarize_admm=fast_admm(),
                    quantize_admm=fast_admm())
    defaults.update(overrides)
    return FORMSConfig(**defaults)


@pytest.fixture(scope="module")
def trained_small():
    from repro.nn.data import make_synthetic
    train, test = make_synthetic("t", 4, 1, 8, 128, 64, seed=21)
    set_init_seed(21)
    model = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(),
                       Conv2d(8, 8, 3, padding=1), ReLU(),
                       Flatten(), Linear(8 * 8 * 8, 4))
    fit(model, train, Adam(model.parameters(), 1e-3), epochs=4, batch_size=16)
    return model, train, test


class TestPipeline:
    def test_full_pipeline_feasible_artifacts(self, trained_small):
        model, train, test = trained_small
        config = fast_config()
        result = FORMSPipeline(config).optimize(clone_model(model), train, test)
        assert set(result.phase_accuracies) == {"prune", "polarize", "quantize"}
        for name, art in result.layers.items():
            assert art.is_feasible, f"{name} is not polarized"
            assert np.abs(art.int_weights).max() <= config.quant_spec().qmax
            assert art.scale > 0
        assert result.compression is not None
        assert result.compression.crossbar_reduction > 1.0

    def test_accuracy_drop_reasonable(self, trained_small):
        model, train, test = trained_small
        baseline = evaluate(model, test).accuracy
        result = FORMSPipeline(fast_config()).optimize(clone_model(model), train, test)
        assert result.baseline_accuracy == pytest.approx(baseline, abs=1e-9)
        assert result.accuracy_drop < 0.35

    def test_polarize_only_toggle(self, trained_small):
        model, train, test = trained_small
        config = fast_config(do_prune=False, do_quantize=False)
        result = FORMSPipeline(config).optimize(clone_model(model), train, test)
        assert list(result.phase_accuracies) == ["polarize"]
        for name, layer_art in result.layers.items():
            assert is_polarized(layer_art.int_weights.astype(float), layer_art.geometry)

    def test_prune_only_keeps_structure(self, trained_small):
        model, train, test = trained_small
        config = fast_config(do_polarize=False, do_quantize=False)
        result = FORMSPipeline(config).optimize(clone_model(model), train, test)
        assert list(result.phase_accuracies) == ["prune"]
        assert result.compression.prune_ratio > 1.0

    def test_freeze_existing_structure(self, trained_small):
        model, train, test = trained_small
        pruned = clone_model(model)
        FORMSPipeline(fast_config(do_polarize=False, do_quantize=False)).optimize(
            pruned, train, test)
        zeros_before = {name: layer.weight.data == 0.0
                        for name, layer in
                        __import__("repro.nn", fromlist=["compressible_layers"])
                        .compressible_layers(pruned)}
        config = fast_config(do_prune=False, freeze_existing_structure=True)
        FORMSPipeline(config).optimize(pruned, train, test)
        from repro.nn import compressible_layers
        for name, layer in compressible_layers(pruned):
            regrown = (~zeros_before[name]) | (layer.weight.data == 0.0)
            assert regrown.all(), f"pruned weights regrew in {name}"

    def test_first_conv_protected_from_pruning(self, trained_small):
        model, train, test = trained_small
        config = fast_config(filter_keep=0.3, shape_keep=0.3,
                             do_polarize=False, do_quantize=False)
        result = FORMSPipeline(config).optimize(clone_model(model), train, test)
        first = result.compression.layers[0]
        assert first.live_cols == first.cols  # in_channels==1 -> protected

    def test_classifier_filters_never_pruned(self, trained_small):
        model, train, test = trained_small
        config = fast_config(filter_keep=0.3, shape_keep=0.3,
                             do_polarize=False, do_quantize=False)
        result = FORMSPipeline(config).optimize(clone_model(model), train, test)
        linear = result.compression.layers[-1]
        assert linear.live_cols == linear.cols  # class outputs intact

    def test_collect_artifacts_on_any_model(self, trained_small):
        model, _, _ = trained_small
        arts = collect_layer_artifacts(model, fast_config())
        assert len(arts) == 3
        for art in arts.values():
            assert art.signs.shape == (art.geometry.fragments_per_column,
                                       art.geometry.cols)

    def test_config_helpers(self):
        config = fast_config(weight_bits=8, cell_bits=2)
        assert config.quant_spec().cells_per_weight == 4
        set_init_seed(0)
        conv = Conv2d(2, 4, 3)
        geom = config.geometry_for(conv)
        assert geom.fragment_size == config.fragment_size

"""Figure 14 — FPS speedups on CIFAR-100 and ImageNet stand-ins.

Five network/dataset pairs x six technique stacks.  Expected shape: smaller
speedups than CIFAR-10 (ImageNet models tolerate less pruning), with the same
within-family orderings.
"""

from repro.analysis import FAST, fig14


def test_fig14_fps_large(benchmark, save_table):
    result = benchmark.pedantic(lambda: fig14(FAST, seed=0),
                                rounds=1, iterations=1)
    save_table("fig14_fps_large", result)
    benchmark.extra_info["table"] = result.rendered
    speedups = result.extras["speedups"]
    # ImageNet's milder pruning yields smaller compression speedups than the
    # SAME network on CIFAR-100 (paper); compare matched pairs so model-size
    # effects (fractional residency of the dense baseline) cancel.
    for net in ("resnet18", "resnet50"):
        cifar = speedups[f"{net}/cifar100"]["Pruned/Quantized-ISAAC"]
        imagenet = speedups[f"{net}/imagenet"]["Pruned/Quantized-ISAAC"]
        assert imagenet <= cifar * 1.1 + 1.0
    for workload, values in speedups.items():
        assert values["FORMS-8 full"] > values["FORMS-8 w/o zero-skip"]

"""Cluster chaos benchmark: SIGKILL replicas under live wire traffic.

The single-process chaos points (:mod:`repro.perf.chaos`) break *dies*
inside one server; this module breaks *whole replicas* under a live
:class:`~repro.serving.cluster.ClusterRouter` — the scenario the
sharded serving cluster exists for.  One point:

* boots N subprocess replicas of the identical demo build (same
  ``--seed``, so every replica serves bit-identical outputs) behind a
  router (:class:`~repro.serving.cluster.ClusterHarness`);
* computes per-tenant serial reference forwards **in the parent** from
  the same deterministic build — the oracle no replica death can touch;
* replays open-loop Poisson arrivals as concurrent ``POST /v1/infer``
  calls through the router while a killer thread SIGKILLs the replica
  that is *primary for the interactive tenant* mid-traffic (and
  restarts it on the same port before the run ends);
* classifies every outcome: a completed response must be
  **bit-identical** to the serial reference (and must echo its request's
  trace id in the receipt); an error must be one of the *documented
  receipts* — ``shed`` (a live replica's admission/SLA decision) or
  ``cluster_unavailable`` (every candidate dead) — anything else fails
  the point;
* proves **zero hung requests** with a bounded join
  (:func:`repro.perf.http.replay_http_open_loop` with
  ``join_timeout_s``), and that the killed replica rejoined (the
  directory reports it ``up`` again after restart).

Records carry their own ``"cluster"`` BENCH record kind, merged into
``BENCH_engine.json`` through :func:`repro.perf.serving.
merge_records_into_file` and preserved by every other producer (see
:func:`repro.perf.suite.write_payload`).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from .serving import poisson_arrival_offsets

#: BENCH record kind of the cluster chaos points
CLUSTER_RECORD_KIND = "cluster"

#: bounded wait proving "zero hung requests" — counted from the last
#: scheduled arrival; generous against replica-restart jitter, tiny
#: against an actual hang
RESOLVE_TIMEOUT_S = 120.0

#: the only error codes a cluster chaos point may record: explicit,
#: documented receipts (anything else — a 500, a transport error
#: escaping the router, a silent hang — fails the point)
ALLOWED_ERROR_CODES = ("shed", "cluster_unavailable")


def cluster_record_name(rate_rps: float) -> str:
    rate = f"{rate_rps:g}".replace(".", "p")
    return f"cluster_chaos_r{rate}"


def drive_cluster_chaos(rate_rps: float, requests: int, *,
                        replicas: int = 2, replication: int = 2,
                        kills: int = 1, restart: bool = True,
                        hedge_delay_s: Optional[float] = None,
                        interactive_fraction: float = 0.4,
                        workers: int = 1, seed: int = 0,
                        log=None) -> Dict:
    """Serve one Poisson process through the router while replicas die.

    Returns ``{"outcomes", "assignments", "completed", "shed_codes",
    "kill_log", "cluster", "open_loop_s", "ports"}`` after asserting
    the whole-point contract documented in the module docstring.
    ``kills`` replicas are SIGKILLed (primary-for-``fast`` first, then
    ring order), staggered across the first ~40% of the arrival
    schedule; with ``restart`` each killed replica is respawned on its
    port and must be ``up`` again before the point passes.
    """
    from ..perf.multitenant import BATCH_MODEL, BULK, FAST_MODEL, INTERACTIVE
    from ..runtime import run_network_serial
    from ..serving.cluster import ClusterHarness, RoutingPolicy
    from ..serving.demo import build_demo_server
    from .http import replay_http_open_loop

    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if not 0 <= kills <= replicas:
        raise ValueError("kills must be within [0, replicas]")

    # the oracle: the same deterministic build the replicas boot from,
    # forwarded serially in the parent before any chaos exists
    server, traffic = build_demo_server(2, workers=workers, seed=seed,
                                        deadline_ms=None)
    images = traffic["images"]
    serial = {name: run_network_serial(server.registry.get(name).network,
                                       images, tile_size=1)
              for name in (FAST_MODEL, BATCH_MODEL)}
    server.shutdown()

    rng = np.random.default_rng(seed)
    image_idx = rng.integers(0, images.shape[0], size=requests)
    interactive = rng.random(requests) < interactive_fraction
    arrival_offsets = poisson_arrival_offsets(rng, rate_rps, requests)
    span_s = float(arrival_offsets[-1]) if requests else 0.0

    plan: List[Tuple[np.ndarray, Dict]] = []
    assignments: List[Tuple[str, int]] = []
    for i in range(requests):
        model = FAST_MODEL if interactive[i] else BATCH_MODEL
        priority = INTERACTIVE if interactive[i] else BULK
        plan.append((images[image_idx[i]],
                     {"model": model, "priority": priority,
                      "binary": bool(i % 2),
                      "trace_id": f"cluster-{seed}-{i}"}))
        assignments.append((model, int(image_idx[i])))

    policy = RoutingPolicy(hedge_delay_s=hedge_delay_s)
    kill_log: List[Dict] = []
    with ClusterHarness(replicas, seed=seed, workers=workers,
                        replication=replication, policy=policy,
                        log=log) as harness:
        # kill the replica actually serving the interactive tenant first
        # — the failover we claim to survive, not a cold spare
        order = harness.directory.placement(FAST_MODEL)
        order += [name for name in harness.names() if name not in order]
        victims = order[:kills]

        def killer() -> None:
            for k, victim in enumerate(victims):
                # stagger kills across the early arrival window so
                # traffic is in flight when the process dies
                target = span_s * 0.4 * (k + 1) / max(1, len(victims))
                time.sleep(max(0.0, start_at + target - time.monotonic()))
                harness.kill(victim)
                kill_log.append({"replica": victim, "action": "kill",
                                 "at_s": time.monotonic() - start_at})
                if restart:
                    harness.restart(victim)
                    kill_log.append({"replica": victim, "action": "restart",
                                     "at_s": time.monotonic() - start_at})

        client = harness.client()
        start_at = time.monotonic()
        chaos = threading.Thread(target=killer, name="forms-cluster-killer",
                                 daemon=True)
        chaos.start()
        outcomes, open_loop_s = replay_http_open_loop(
            client, plan, arrival_offsets, join_timeout_s=RESOLVE_TIMEOUT_S)
        chaos.join(timeout=RESOLVE_TIMEOUT_S)
        if chaos.is_alive():
            raise AssertionError("the kill/restart thread hung")
        # the rejoin proof: after restarts, one probe round must see
        # every replica answering again
        if restart:
            states = harness.directory.probe_once()
            missing = sorted(name for name, state in states.items()
                             if state != "up")
            if missing:
                raise AssertionError(
                    f"replicas {missing} never rejoined after restart")
        status, cluster = client.request("GET", "/v1/cluster")
        if status != 200:
            raise AssertionError(f"/v1/cluster answered {status}")
        ports = {name: proc.port for name, proc in harness.replicas.items()}

    # ------------------------------------------------------------- the
    # robustness contract: what makes a cluster point worth recording
    completed = 0
    shed_codes: Dict[str, int] = {}
    for i, outcome in enumerate(outcomes):
        model, img = assignments[i]
        error = outcome["error"]
        if error is not None:
            code = getattr(error, "code", None)
            if code not in ALLOWED_ERROR_CODES:
                raise AssertionError(
                    f"request {i} failed outside the documented receipts: "
                    f"{error!r}")
            shed_codes[code] = shed_codes.get(code, 0) + 1
            continue
        completed += 1
        if not np.array_equal(outcome["result"].output, serial[model][img]):
            raise AssertionError(
                f"request {i} ({model}): routed output != serial "
                "single-image forward — failover leaked into the numerics")
        trace = outcome["result"].stats.get("trace_id")
        if trace != f"cluster-{seed}-{i}":
            raise AssertionError(
                f"request {i}: receipt trace_id {trace!r} does not echo "
                "the X-Request-Id sent through the router")
    if completed == 0:
        raise AssertionError("no request completed — the cluster served "
                             "nothing worth recording")
    if len(kill_log) < kills * (2 if restart else 1):
        raise AssertionError("the kill/restart schedule did not complete")
    return {"outcomes": outcomes, "assignments": assignments,
            "completed": completed, "shed_codes": shed_codes,
            "kill_log": kill_log, "cluster": cluster,
            "open_loop_s": open_loop_s, "ports": ports}


def run_cluster_point(rate_rps: float, requests: int = 24, *,
                      replicas: int = 2, replication: int = 2,
                      kills: int = 1, restart: bool = True,
                      hedge_delay_s: Optional[float] = None,
                      interactive_fraction: float = 0.4,
                      workers: int = 1, seed: int = 0, log=None) -> Dict:
    """Measure one cluster chaos point and return its record.

    Drives :func:`drive_cluster_chaos` (bit-identity / zero-hung /
    documented-receipts / rejoin contract asserted there) and packages
    the outcome as one ``"cluster"`` record for ``BENCH_engine.json``
    (schema in ``benchmarks/README.md``).
    """
    driven = drive_cluster_chaos(rate_rps, requests, replicas=replicas,
                                 replication=replication, kills=kills,
                                 restart=restart,
                                 hedge_delay_s=hedge_delay_s,
                                 interactive_fraction=interactive_fraction,
                                 workers=workers, seed=seed, log=log)
    rtts = np.asarray([outcome["latency_s"]
                       for outcome in driven["outcomes"]], dtype=np.float64)
    router = driven["cluster"]["router"]
    return {
        "name": cluster_record_name(rate_rps),
        "kind": CLUSTER_RECORD_KIND,
        "results": {
            "offered_rate_rps": rate_rps,
            "throughput_rps": driven["completed"] / driven["open_loop_s"],
            "requests_completed": driven["completed"],
            "requests_shed": sum(driven["shed_codes"].values()),
            "shed_by_code": driven["shed_codes"],
            "kills": kills,
            "restarts": kills if restart else 0,
            "router_attempts": router["attempts"],
            "router_failovers": router["failovers"],
            "hedges_fired": router["hedges_fired"],
            "hedges_won": router["hedges_won"],
            "unavailable_receipts": router["unavailable"],
            "rtt_p50_s": float(np.percentile(rtts, 50)),
            "rtt_p95_s": float(np.percentile(rtts, 95)),
            "rtt_max_s": float(rtts.max()),
        },
        "meta": {
            "transport": "http-cluster",
            "requests": requests,
            "replicas": replicas,
            "replication": replication,
            "hedge_delay_s": hedge_delay_s,
            "interactive_fraction": interactive_fraction,
            "workers": workers,
            "seed": seed,
            "kill_log": driven["kill_log"],
            "replica_states": {
                name: info["state"] for name, info in
                driven["cluster"]["directory"]["replicas"].items()},
            "bit_identical_to_serial": True,
            "zero_hung_futures": True,
        },
    }

"""Setuptools shim.

The offline environment has setuptools but not ``wheel``, so PEP 660 editable
installs fail with "invalid command 'bdist_wheel'".  This shim enables the
legacy editable path: ``pip install -e . --no-build-isolation --no-use-pep517``
(plain ``pip install -e .`` works where ``wheel`` is available).
"""

from setuptools import setup

setup()

"""Mesh network-on-chip model (paper Fig. 10).

FORMS/ISAAC tiles sit on a 2-D mesh; a CNN's layers are placed onto tile
groups and intermediate feature maps travel between consecutive layers'
tiles, orchestrated by the chip controller.  This module models exactly that:

* a :class:`MeshNoC` built on a networkx grid graph with XY dimension-order
  routing (deterministic, deadlock-free — what such designs actually ship);
* :func:`place_layers` — contiguous snake-order placement of layers onto
  tiles proportional to their crossbar demand;
* per-link traffic accounting for one inference, hop latency, and the NoC's
  contribution to energy (consumed by :mod:`repro.arch.energy`).

The performance model's bandwidth cap abstracts this network; the NoC model
lets you check that abstraction: :meth:`NoCTrafficReport.max_link_utilization`
shows when inter-tile traffic would saturate a mesh link before the tile bus
does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from .workload import NetworkWorkload

Coord = Tuple[int, int]


@dataclass(frozen=True)
class NoCSpec:
    """Electrical/performance parameters of one mesh link and router.

    Defaults follow the 32 nm operating point of the rest of the catalog:
    32-byte flits at 1 GHz links, ~1 cycle per router hop, link energy in the
    pJ/byte range typical for on-chip interconnect at that node.
    """

    link_bytes_per_cycle: int = 32
    clock_hz: float = 1.0e9
    hop_latency_cycles: int = 1
    energy_pj_per_byte_hop: float = 1.2

    def __post_init__(self):
        if self.link_bytes_per_cycle < 1:
            raise ValueError("link width must be at least 1 byte")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")

    @property
    def link_bandwidth_bytes_per_s(self) -> float:
        return self.link_bytes_per_cycle * self.clock_hz


class MeshNoC:
    """A rows x cols tile mesh with XY routing."""

    def __init__(self, rows: int, cols: int, spec: NoCSpec = NoCSpec()):
        if rows < 1 or cols < 1:
            raise ValueError("mesh dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.spec = spec
        self.graph = nx.grid_2d_graph(rows, cols)

    @classmethod
    def for_tiles(cls, tiles: int, spec: NoCSpec = NoCSpec()) -> "MeshNoC":
        """Near-square mesh holding at least ``tiles`` tiles (168 -> 14x12)."""
        if tiles < 1:
            raise ValueError("need at least one tile")
        rows = int(math.floor(math.sqrt(tiles)))
        while tiles % rows != 0 and rows > 1:
            rows -= 1
        cols = tiles // rows if tiles % rows == 0 else -(-tiles // rows)
        return cls(rows, cols, spec)

    @property
    def tile_count(self) -> int:
        return self.rows * self.cols

    @property
    def link_count(self) -> int:
        """Undirected mesh links: horizontal + vertical edges."""
        return self.rows * (self.cols - 1) + (self.rows - 1) * self.cols

    def coord(self, tile_index: int) -> Coord:
        """Snake (boustrophedon) ordering keeps consecutive indices adjacent."""
        if not 0 <= tile_index < self.tile_count:
            raise IndexError(f"tile index {tile_index} outside mesh")
        row = tile_index // self.cols
        col = tile_index % self.cols
        if row % 2 == 1:
            col = self.cols - 1 - col
        return (row, col)

    def xy_route(self, src: Coord, dst: Coord) -> List[Coord]:
        """Dimension-order (X then Y) route, inclusive of both endpoints."""
        for coord in (src, dst):
            if coord not in self.graph:
                raise KeyError(f"{coord} is not a mesh node")
        path = [src]
        r, c = src
        step = 1 if dst[1] > c else -1
        while c != dst[1]:
            c += step
            path.append((r, c))
        step = 1 if dst[0] > r else -1
        while r != dst[0]:
            r += step
            path.append((r, c))
        return path

    def hops(self, src: Coord, dst: Coord) -> int:
        """Manhattan distance (XY routing is minimal on a mesh)."""
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])

    def hop_latency_s(self, hops: int) -> float:
        return hops * self.spec.hop_latency_cycles / self.spec.clock_hz


@dataclass
class LayerPlacement:
    """Tiles assigned to one layer."""

    name: str
    tiles: List[int]

    @property
    def span(self) -> int:
        return len(self.tiles)


def place_layers(workload: NetworkWorkload, mesh: MeshNoC,
                 crossbars_per_layer: Dict[str, int],
                 crossbars_per_tile: int = 96) -> List[LayerPlacement]:
    """Place layers onto contiguous snake-order tile runs.

    Tiles are allotted proportionally to each layer's crossbar demand (at
    least one tile each); consecutive layers occupy adjacent runs so
    inter-layer traffic travels short distances — the standard pipelined
    mapping of ISAAC-class designs.
    """
    if not workload.layers:
        raise ValueError("workload has no layers")
    demands = [max(1, -(-crossbars_per_layer[l.name] // crossbars_per_tile))
               for l in workload.layers]
    total = sum(demands)
    if total > mesh.tile_count:
        # scale proportionally, floor at one tile per layer
        scale = mesh.tile_count / total
        demands = [max(1, int(d * scale)) for d in demands]
        while sum(demands) > mesh.tile_count:
            demands[demands.index(max(demands))] -= 1
    placements: List[LayerPlacement] = []
    cursor = 0
    for layer, span in zip(workload.layers, demands):
        placements.append(LayerPlacement(
            name=layer.name, tiles=list(range(cursor, cursor + span))))
        cursor += span
    return placements


@dataclass
class NoCTrafficReport:
    """Inter-layer traffic of one inference over a placement."""

    mesh: MeshNoC
    link_bytes: Dict[Tuple[Coord, Coord], float] = field(default_factory=dict)
    total_bytes: float = 0.0
    total_byte_hops: float = 0.0
    worst_path_hops: int = 0

    def add_flow(self, src: Coord, dst: Coord, payload_bytes: float) -> None:
        path = self.mesh.xy_route(src, dst)
        for a, b in zip(path, path[1:]):
            key = (a, b) if a <= b else (b, a)
            self.link_bytes[key] = self.link_bytes.get(key, 0.0) + payload_bytes
        hops = len(path) - 1
        self.total_bytes += payload_bytes
        self.total_byte_hops += payload_bytes * hops
        self.worst_path_hops = max(self.worst_path_hops, hops)

    @property
    def max_link_bytes(self) -> float:
        return max(self.link_bytes.values(), default=0.0)

    def max_link_utilization(self, inferences_per_s: float) -> float:
        """Fraction of the hottest link's bandwidth consumed at a given FPS.

        Under single-path XY routing a layer's whole fan-out shares one
        link, so values above 1 indicate where a real design must stripe
        traffic across paths — compare :meth:`aggregate_utilization` for
        the balanced-load feasibility bound.
        """
        demand = self.max_link_bytes * inferences_per_s
        return demand / self.mesh.spec.link_bandwidth_bytes_per_s

    def aggregate_utilization(self, inferences_per_s: float) -> float:
        """Network-wide load fraction if traffic were perfectly balanced.

        Total byte-hops per second over the summed bandwidth of every mesh
        link — the lower bound any routing/striping scheme must respect;
        below 1 means the mesh has the raw capacity for the workload.
        """
        demand = self.total_byte_hops * inferences_per_s
        capacity = (self.mesh.link_count
                    * self.mesh.spec.link_bandwidth_bytes_per_s)
        return demand / capacity

    @property
    def energy_j(self) -> float:
        """NoC transport energy for one inference."""
        return self.total_byte_hops * self.mesh.spec.energy_pj_per_byte_hop * 1e-12

    def transport_latency_s(self) -> float:
        """Longest single-transfer latency (pipeline fill contribution)."""
        return self.mesh.hop_latency_s(self.worst_path_hops)


def analyze_traffic(workload: NetworkWorkload, mesh: MeshNoC,
                    placements: Sequence[LayerPlacement],
                    activation_bits: int = 16) -> NoCTrafficReport:
    """Traffic of one inference: each layer's output feature map travels from
    its tiles to the next layer's tiles (uniformly spread across both runs).

    Feature-map size is approximated from the next layer's input interface:
    ``live_rows x positions`` activations at ``activation_bits`` each — the
    exact amount the next layer must receive.
    """
    if len(placements) != len(workload.layers):
        raise ValueError("one placement per layer required")
    report = NoCTrafficReport(mesh=mesh)
    for src_place, dst_place, dst_layer in zip(placements, placements[1:],
                                               workload.layers[1:]):
        payload = dst_layer.live_rows * dst_layer.positions_per_image \
            * activation_bits / 8.0
        pairs = [(s, d) for s in src_place.tiles for d in dst_place.tiles]
        share = payload / len(pairs)
        for s, d in pairs:
            report.add_flow(mesh.coord(s), mesh.coord(d), share)
    return report


def noc_summary(workload: NetworkWorkload, tiles: int = 168,
                crossbars_per_layer: Optional[Dict[str, int]] = None,
                crossbars_per_tile: int = 96,
                spec: NoCSpec = NoCSpec()) -> Dict[str, float]:
    """One-call NoC analysis used by the energy model and examples."""
    mesh = MeshNoC.for_tiles(tiles, spec)
    if crossbars_per_layer is None:
        crossbars_per_layer = {l.name: 1 for l in workload.layers}
    placements = place_layers(workload, mesh, crossbars_per_layer,
                              crossbars_per_tile)
    report = analyze_traffic(workload, mesh, placements)
    return {
        "mesh_rows": mesh.rows,
        "mesh_cols": mesh.cols,
        "total_bytes": report.total_bytes,
        "total_byte_hops": report.total_byte_hops,
        "max_link_bytes": report.max_link_bytes,
        "worst_path_hops": report.worst_path_hops,
        "energy_j": report.energy_j,
    }

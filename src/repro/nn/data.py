"""Synthetic image-classification datasets.

The paper evaluates on MNIST, CIFAR-10/100 and ImageNet.  Those datasets are
not available offline, so we generate deterministic synthetic stand-ins with
matching channel/class structure (see DESIGN.md, "Substitutions").  Each class
is a smooth random prototype field; instances add filtered noise, small
translations and contrast jitter.  The resulting task is genuinely learnable
(a small convnet reaches high-but-not-perfect accuracy) and, critically, its
accuracy *responds* to pruning/polarization/quantization pressure, which is
what every accuracy-shaped experiment in the paper measures.

All generators are pure functions of their seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np
from scipy import ndimage


@dataclass
class Dataset:
    """A fixed split of images and integer labels."""

    name: str
    images: np.ndarray   # (N, C, H, W), float32, roughly zero-mean unit-ish scale
    labels: np.ndarray   # (N,), int64
    num_classes: int

    def __post_init__(self):
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels must have the same length")

    def __len__(self) -> int:
        return len(self.images)

    @property
    def channels(self) -> int:
        return self.images.shape[1]

    @property
    def image_size(self) -> int:
        return self.images.shape[2]

    def subset(self, n: int) -> "Dataset":
        """First ``n`` examples (class-balanced generators make this safe)."""
        return Dataset(self.name, self.images[:n], self.labels[:n], self.num_classes)


@dataclass
class DataLoader:
    """Mini-batch iterator with seeded shuffling."""

    dataset: Dataset
    batch_size: int = 32
    shuffle: bool = True
    seed: int = 0
    _epoch: int = field(default=0, init=False)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.seed + self._epoch)
            rng.shuffle(order)
        self._epoch += 1
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]

    def __len__(self) -> int:
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size


def _smooth_field(rng: np.random.Generator, shape: Tuple[int, ...], sigma: float) -> np.ndarray:
    """Gaussian-filtered white noise, normalized to unit std."""
    raw = rng.normal(size=shape)
    smooth = ndimage.gaussian_filter(raw, sigma=sigma)
    std = smooth.std()
    return smooth / (std + 1e-12)


def make_synthetic(name: str, num_classes: int, channels: int, size: int,
                   train_size: int, test_size: int, noise: float = 0.6,
                   max_shift: int = 2, seed: int = 0) -> Tuple[Dataset, Dataset]:
    """Generate a (train, test) pair of synthetic datasets.

    Parameters
    ----------
    noise:
        Instance noise amplitude relative to the class prototype; higher makes
        the task harder (accuracy more sensitive to model compression).
    max_shift:
        Maximum circular translation (pixels) applied per instance.
    """
    if num_classes < 2:
        raise ValueError("need at least 2 classes")
    rng = np.random.default_rng(seed)
    prototypes = np.stack([
        _smooth_field(rng, (channels, size, size), sigma=max(size / 8.0, 1.0))
        for _ in range(num_classes)
    ])

    def build(count: int, split_rng: np.random.Generator) -> Dataset:
        # Interleaved labels (0,1,..,K-1,0,1,..) so any prefix — hence
        # Dataset.subset — stays class-balanced.  DataLoader shuffles batches.
        labels = np.arange(count) % num_classes
        images = np.empty((count, channels, size, size), dtype=np.float32)
        for i, label in enumerate(labels):
            base = prototypes[label]
            jitter = _smooth_field(split_rng, (channels, size, size), sigma=1.0)
            img = base + noise * jitter
            if max_shift > 0:
                dy = int(split_rng.integers(-max_shift, max_shift + 1))
                dx = int(split_rng.integers(-max_shift, max_shift + 1))
                img = np.roll(img, (dy, dx), axis=(1, 2))
            contrast = 1.0 + 0.1 * split_rng.normal()
            images[i] = (contrast * img).astype(np.float32)
        return Dataset(name, images, labels.astype(np.int64), num_classes)

    train = build(train_size, np.random.default_rng(seed + 1))
    test = build(test_size, np.random.default_rng(seed + 2))
    return train, test


# ---------------------------------------------------------------------------
# Named stand-ins for the paper's datasets.  Class counts and image sizes are
# scaled down for offline tractability; both are parameters, so full-size
# variants are one call away.
# ---------------------------------------------------------------------------

def synthetic_mnist(train_size: int = 512, test_size: int = 256,
                    size: int = 16, seed: int = 0) -> Tuple[Dataset, Dataset]:
    """Grey 1-channel, 10 classes — stands in for MNIST."""
    return make_synthetic("mnist", 10, 1, size, train_size, test_size,
                          noise=0.5, seed=seed)


def synthetic_cifar10(train_size: int = 512, test_size: int = 256,
                      size: int = 16, seed: int = 1) -> Tuple[Dataset, Dataset]:
    """RGB, 10 classes — stands in for CIFAR-10."""
    return make_synthetic("cifar10", 10, 3, size, train_size, test_size,
                          noise=0.6, seed=seed)


def synthetic_cifar100(train_size: int = 640, test_size: int = 320,
                       size: int = 16, num_classes: int = 20,
                       seed: int = 2) -> Tuple[Dataset, Dataset]:
    """RGB, many-class — stands in for CIFAR-100 (class count scaled down)."""
    return make_synthetic("cifar100", num_classes, 3, size, train_size, test_size,
                          noise=0.7, seed=seed)


def synthetic_imagenet(train_size: int = 640, test_size: int = 320,
                       size: int = 24, num_classes: int = 20,
                       seed: int = 3) -> Tuple[Dataset, Dataset]:
    """RGB, larger images, harder noise — stands in for ImageNet."""
    return make_synthetic("imagenet", num_classes, 3, size, train_size, test_size,
                          noise=0.9, max_shift=3, seed=seed)


DATASET_BUILDERS = {
    "mnist": synthetic_mnist,
    "cifar10": synthetic_cifar10,
    "cifar100": synthetic_cifar100,
    "imagenet": synthetic_imagenet,
}


def load_dataset(name: str, **kwargs) -> Tuple[Dataset, Dataset]:
    """Build a named synthetic dataset pair ("mnist", "cifar10", ...)."""
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(DATASET_BUILDERS)}") from None
    return builder(**kwargs)

"""Full-network in-situ inference tests (every layer on the bit-serial engine)."""

import numpy as np
import pytest

from repro.core import ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline
from repro.nn import (Adam, Conv2d, Flatten, Linear, ReLU, Sequential,
                      Tensor, evaluate, fit, set_init_seed)
from repro.nn.data import make_synthetic
from repro.reram import DeviceSpec, NonidealEngine, ReRAMDevice
from repro.reram.inference import (InSituConv2d, InSituLinear,
                                   build_insitu_network, total_cycles_fed)
from repro.reram.nonideal import FaultModel


@pytest.fixture(scope="module")
def optimized_net():
    train, test = make_synthetic("insitu", 4, 1, 8, 160, 64, seed=51)
    set_init_seed(51)
    model = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(),
                       Flatten(), Linear(8 * 8 * 8, 4))
    fit(model, train, Adam(model.parameters(), 1e-3), epochs=4, batch_size=16)
    admm = ADMMConfig(iterations=1, epochs_per_iteration=1, retrain_epochs=1)
    config = FORMSConfig(fragment_size=4, crossbar=CrossbarShape(16, 16),
                         filter_keep=0.75, shape_keep=0.75,
                         prune_admm=admm, polarize_admm=admm,
                         quantize_admm=admm)
    FORMSPipeline(config).optimize(model, train, test, seed=51)
    return model, config, train, test


def ideal_device():
    return ReRAMDevice(DeviceSpec(), variation_sigma=0.0)


class TestIdealInference:
    def test_matches_digital_accuracy(self, optimized_net):
        model, config, _, test = optimized_net
        digital = evaluate(model, test).accuracy
        insitu, _ = build_insitu_network(model, config, ideal_device(),
                                         activation_bits=16)
        assert evaluate(insitu, test).accuracy == pytest.approx(digital,
                                                                abs=0.02)

    def test_per_batch_outputs_close(self, optimized_net):
        model, config, _, test = optimized_net
        insitu, _ = build_insitu_network(model, config, ideal_device(),
                                         activation_bits=16)
        x = Tensor(test.images[:8])
        digital = model(x).data
        analog = insitu(x).data
        scale = np.abs(digital).max()
        assert np.abs(analog - digital).max() / scale < 0.05

    def test_layers_replaced_with_wrappers(self, optimized_net):
        model, config, _, _ = optimized_net
        insitu, engines = build_insitu_network(model, config, ideal_device())
        kinds = [type(m) for m in insitu.modules()]
        assert InSituConv2d in kinds
        assert InSituLinear in kinds
        assert Conv2d not in kinds
        assert Linear not in kinds
        assert len(engines) == 2

    def test_original_model_untouched(self, optimized_net):
        model, config, _, test = optimized_net
        before = evaluate(model, test).accuracy
        build_insitu_network(model, config, ideal_device())
        assert evaluate(model, test).accuracy == before

    def test_isaac_offset_scheme_agrees(self, optimized_net):
        model, config, _, test = optimized_net
        forms, _ = build_insitu_network(model, config, ideal_device(),
                                        scheme="forms")
        isaac, _ = build_insitu_network(model, config, ideal_device(),
                                        scheme="isaac_offset")
        x = Tensor(test.images[:4])
        np.testing.assert_allclose(isaac(x).data, forms(x).data,
                                   rtol=1e-6, atol=1e-6)


class TestCycleAccounting:
    def test_zero_skipping_saves_cycles(self, optimized_net):
        model, config, _, test = optimized_net
        insitu, engines = build_insitu_network(model, config, ideal_device(),
                                               activation_bits=16)
        evaluate(insitu, test, batch_size=64)
        # Per layer: positive pass <= 16 cycles, the (all-zero) negative pass
        # of the post-ReLU layer terminates after its detection cycle.
        cycles = total_cycles_fed(engines)
        n_batches = -(-len(test) // 64)
        worst_case = len(engines) * 2 * 16 * n_batches
        assert 0 < cycles < worst_case

    def test_negative_pass_skipped_after_relu(self, optimized_net):
        model, config, _, test = optimized_net
        insitu, engines = build_insitu_network(model, config, ideal_device(),
                                               activation_bits=8)
        x = Tensor(test.images[:4])
        insitu(x)
        # The linear layer sees post-ReLU activations: one signed decomposition
        # whose negative part is empty, so it feeds at most 8 cycles total.
        linear_engine = [e for name, e in engines.items() if "3" in name][0]
        assert linear_engine.stats.cycles_fed <= 8


class TestNonidealInference:
    def test_variation_degrades_gracefully(self, optimized_net):
        model, config, _, test = optimized_net
        clean, _ = build_insitu_network(model, config, ideal_device())
        noisy_device = ReRAMDevice(DeviceSpec(), variation_sigma=0.3, seed=9)
        noisy, _ = build_insitu_network(model, config, noisy_device)
        clean_acc = evaluate(clean, test).accuracy
        noisy_acc = evaluate(noisy, test).accuracy
        assert noisy_acc <= clean_acc + 0.03

    def test_nonideal_engine_composition(self, optimized_net):
        model, config, _, test = optimized_net
        faulty, engines = build_insitu_network(
            model, config, ideal_device(), engine_cls=NonidealEngine,
            fault_model=FaultModel(0.05, 0.01, seed=4))
        assert all(e.fault_fraction > 0 for e in engines.values())
        accuracy = evaluate(faulty, test).accuracy
        assert 0.0 <= accuracy <= 1.0

    def test_unknown_layer_type_rejected(self, optimized_net):
        model, config, _, _ = optimized_net
        from repro.core.pipeline import collect_layer_artifacts
        artifacts = collect_layer_artifacts(model, config)
        # Point an artifact at a non-compressible module path.
        bad = {"1": next(iter(artifacts.values()))}
        with pytest.raises(TypeError):
            build_insitu_network(model, config, ideal_device(),
                                 artifacts=bad)

"""Device-variation injection at network scale (paper Table VI).

Builds a "noisy twin" of a trained model: every compressible layer's weights
are quantized, mapped to cell codes under a chosen scheme, perturbed by
lognormal device variation, recombined into effective real weights, and
written back.  Evaluating the twin measures the end-to-end accuracy
degradation — averaged over many dies (the paper averages 50 runs).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.fragments import FragmentGeometry
from ..core.pipeline import FORMSConfig, LayerArtifacts, collect_layer_artifacts
from ..nn.data import Dataset
from ..nn.layers import Module, compressible_layers
from ..nn.trainer import evaluate
from .device import DeviceSpec, ReRAMDevice
from .engine import effective_levels
from .mapping import infer_signs, map_layer


def clone_model(model: Module) -> Module:
    """Deep copy of a model (weights and buffers included)."""
    return copy.deepcopy(model)


def apply_variation(model: Module, config: FORMSConfig, sigma: float,
                    scheme: str = "forms", seed: int = 0,
                    artifacts: Optional[Dict[str, LayerArtifacts]] = None) -> Module:
    """Return a noisy twin of ``model`` as realized on one die.

    ``artifacts`` may be supplied to reuse precomputed quantization scales
    and signs (e.g. from a :class:`FORMSResult`); otherwise they are
    collected from the model's current weights.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    noisy = clone_model(model)
    if artifacts is None:
        artifacts = collect_layer_artifacts(model, config)
    device = ReRAMDevice(DeviceSpec(cell_bits=config.cell_bits),
                         variation_sigma=sigma, seed=seed)
    spec = config.quant_spec()
    layers = dict(compressible_layers(noisy))
    for name, art in artifacts.items():
        geometry = art.geometry
        levels_matrix = geometry.matrix(art.int_weights)
        signs = art.signs if scheme == "forms" else None
        mapped = map_layer(levels_matrix, geometry, spec, scheme=scheme, signs=signs)
        noisy_levels = effective_levels(mapped, device)
        weight = geometry.weight(noisy_levels) * art.scale
        layers[name].weight.data[...] = weight.astype(layers[name].weight.data.dtype)
    return noisy


@dataclass
class VariationResult:
    """Accuracy statistics across simulated dies."""

    clean_accuracy: float
    noisy_accuracies: List[float]

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.noisy_accuracies))

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.noisy_accuracies))

    @property
    def mean_degradation(self) -> float:
        """Average accuracy lost to variation (the Table VI numbers)."""
        return self.clean_accuracy - self.mean_accuracy


def variation_study(model: Module, config: FORMSConfig, test_set: Dataset,
                    sigma: float = 0.1, runs: int = 10, scheme: str = "forms",
                    seed: int = 0, batch_size: int = 64) -> VariationResult:
    """Measure accuracy degradation under device variation over ``runs`` dies.

    The clean reference uses the same quantized mapping with sigma = 0, so the
    reported degradation isolates *variation*, not quantization.
    """
    artifacts = collect_layer_artifacts(model, config)
    clean = apply_variation(model, config, 0.0, scheme=scheme, seed=seed,
                            artifacts=artifacts)
    clean_acc = evaluate(clean, test_set, batch_size=batch_size).accuracy
    accuracies = []
    for run in range(runs):
        noisy = apply_variation(model, config, sigma, scheme=scheme,
                                seed=seed + 1 + run, artifacts=artifacts)
        accuracies.append(evaluate(noisy, test_set, batch_size=batch_size).accuracy)
    return VariationResult(clean_accuracy=clean_acc, noisy_accuracies=accuracies)

"""Mesh NoC model tests."""

import pytest

from repro.arch import (LayerWorkload, MeshNoC, NetworkWorkload, NoCSpec,
                        analyze_traffic, noc_summary, place_layers)


def make_workload(n_layers=4):
    layers = [LayerWorkload(f"l{i}", "conv", rows=64, cols=32,
                            live_rows=64, live_cols=32, positions_per_image=16)
              for i in range(n_layers)]
    return NetworkWorkload("net", "data", layers)


class TestMeshNoC:
    def test_for_tiles_168(self):
        mesh = MeshNoC.for_tiles(168)
        assert mesh.tile_count >= 168
        assert mesh.rows * mesh.cols == mesh.tile_count
        assert {mesh.rows, mesh.cols} == {12, 14}

    def test_snake_coords_adjacent(self):
        mesh = MeshNoC(3, 4)
        for i in range(mesh.tile_count - 1):
            a, b = mesh.coord(i), mesh.coord(i + 1)
            assert mesh.hops(a, b) == 1  # consecutive tiles are neighbours

    def test_coord_bounds(self):
        mesh = MeshNoC(2, 2)
        with pytest.raises(IndexError):
            mesh.coord(4)

    def test_xy_route_is_minimal(self):
        mesh = MeshNoC(4, 4)
        path = mesh.xy_route((0, 0), (3, 2))
        assert path[0] == (0, 0) and path[-1] == (3, 2)
        assert len(path) - 1 == mesh.hops((0, 0), (3, 2)) == 5
        # X first, then Y
        assert path[1] == (0, 1)

    def test_route_validates_nodes(self):
        mesh = MeshNoC(2, 2)
        with pytest.raises(KeyError):
            mesh.xy_route((0, 0), (5, 5))

    def test_hop_latency(self):
        mesh = MeshNoC(2, 2, NoCSpec(clock_hz=1e9, hop_latency_cycles=2))
        assert mesh.hop_latency_s(3) == pytest.approx(6e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshNoC(0, 4)
        with pytest.raises(ValueError):
            MeshNoC.for_tiles(0)
        with pytest.raises(ValueError):
            NoCSpec(link_bytes_per_cycle=0)


class TestPlacement:
    def test_spans_proportional_to_demand(self):
        workload = make_workload(3)
        mesh = MeshNoC(4, 4)
        demands = {"l0": 96, "l1": 96 * 4, "l2": 96}
        placements = place_layers(workload, mesh, demands, crossbars_per_tile=96)
        spans = {p.name: p.span for p in placements}
        assert spans["l1"] > spans["l0"]

    def test_contiguous_and_disjoint(self):
        workload = make_workload(4)
        mesh = MeshNoC(4, 4)
        placements = place_layers(workload, mesh, {l.name: 96 for l in workload.layers})
        seen = []
        for p in placements:
            assert p.tiles == list(range(p.tiles[0], p.tiles[-1] + 1))
            seen.extend(p.tiles)
        assert len(seen) == len(set(seen))

    def test_oversubscribed_mesh_scales_down(self):
        workload = make_workload(4)
        mesh = MeshNoC(2, 2)
        placements = place_layers(workload, mesh,
                                  {l.name: 96 * 10 for l in workload.layers})
        assert sum(p.span for p in placements) <= mesh.tile_count

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            place_layers(NetworkWorkload("e", "d", []), MeshNoC(2, 2), {})


class TestTraffic:
    def test_traffic_accounting(self):
        workload = make_workload(3)
        mesh = MeshNoC(3, 3)
        placements = place_layers(workload, mesh, {l.name: 96 for l in workload.layers})
        report = analyze_traffic(workload, mesh, placements)
        # 2 inter-layer transfers of live_rows x positions x 2 bytes each
        expected = 2 * 64 * 16 * 2.0
        assert report.total_bytes == pytest.approx(expected)
        assert report.total_byte_hops >= report.total_bytes  # >= 1 hop each
        assert report.energy_j > 0
        assert report.worst_path_hops >= 1

    def test_adjacent_layers_short_paths(self):
        workload = make_workload(8)
        mesh = MeshNoC(3, 3)
        placements = place_layers(workload, mesh, {l.name: 1 for l in workload.layers})
        report = analyze_traffic(workload, mesh, placements)
        assert report.worst_path_hops <= 2  # snake placement keeps them close

    def test_utilization_scales_with_fps(self):
        workload = make_workload(3)
        mesh = MeshNoC(3, 3)
        placements = place_layers(workload, mesh, {l.name: 96 for l in workload.layers})
        report = analyze_traffic(workload, mesh, placements)
        u1 = report.max_link_utilization(1000.0)
        u2 = report.max_link_utilization(2000.0)
        assert u2 == pytest.approx(2 * u1)

    def test_placement_count_mismatch(self):
        workload = make_workload(3)
        mesh = MeshNoC(3, 3)
        placements = place_layers(workload, mesh, {l.name: 1 for l in workload.layers})
        with pytest.raises(ValueError):
            analyze_traffic(workload, mesh, placements[:-1])

    def test_summary_keys(self):
        summary = noc_summary(make_workload(3), tiles=9)
        for key in ("mesh_rows", "total_bytes", "energy_j", "worst_path_hops"):
            assert key in summary

    def test_link_count(self):
        # 3x3 mesh: 3 rows x 2 horizontal + 2 x 3 vertical = 12 links.
        assert MeshNoC(3, 3).link_count == 12
        assert MeshNoC(1, 5).link_count == 4
        assert MeshNoC(1, 1).link_count == 0

    def test_aggregate_below_hotspot_utilization(self):
        # Balanced-load utilization can never exceed the hotspot figure.
        workload = make_workload(3)
        mesh = MeshNoC(3, 3)
        placements = place_layers(workload, mesh,
                                  {l.name: 96 for l in workload.layers})
        report = analyze_traffic(workload, mesh, placements)
        fps = 5000.0
        assert (report.aggregate_utilization(fps)
                <= report.max_link_utilization(fps) + 1e-12)

    def test_aggregate_utilization_scales_with_fps(self):
        workload = make_workload(3)
        mesh = MeshNoC(3, 3)
        placements = place_layers(workload, mesh,
                                  {l.name: 96 for l in workload.layers})
        report = analyze_traffic(workload, mesh, placements)
        assert report.aggregate_utilization(2000.0) == pytest.approx(
            2 * report.aggregate_utilization(1000.0))

"""Experiment scale presets.

Every experiment driver takes an :class:`ExperimentScale`; ``FAST`` keeps the
whole table suite runnable in seconds (tests, CI, pytest-benchmark), while
``STANDARD``/``FULL`` trade time for tighter accuracy estimates.  The paper's
GPU-week training runs are out of scope offline; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..core.admm import ADMMConfig
from ..core.compression import CrossbarShape


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling experiment cost."""

    name: str
    train_size: int = 256
    test_size: int = 128
    baseline_epochs: int = 4
    batch_size: int = 32
    width_mult: float = 0.25
    depth_scale: float = 0.5
    admm_iterations: int = 2
    admm_epochs: int = 1
    retrain_epochs: int = 1
    sample_images: int = 4
    variation_runs: int = 8
    crossbar: CrossbarShape = field(default_factory=lambda: CrossbarShape(64, 64))

    def admm(self) -> ADMMConfig:
        return ADMMConfig(iterations=self.admm_iterations,
                          epochs_per_iteration=self.admm_epochs,
                          retrain_epochs=self.retrain_epochs,
                          batch_size=self.batch_size)

    def scaled(self, **overrides) -> "ExperimentScale":
        return replace(self, **overrides)


FAST = ExperimentScale(
    name="fast",
    train_size=288, test_size=128, baseline_epochs=5,
    width_mult=0.3, depth_scale=0.4,
    admm_iterations=2, admm_epochs=1, retrain_epochs=3,
    sample_images=2, variation_runs=4,
    crossbar=CrossbarShape(32, 32),
)

STANDARD = ExperimentScale(
    name="standard",
    train_size=384, test_size=192, baseline_epochs=6,
    width_mult=0.25, depth_scale=0.5,
    admm_iterations=2, admm_epochs=2, retrain_epochs=4,
    sample_images=4, variation_runs=10,
    crossbar=CrossbarShape(64, 64),
)

FULL = ExperimentScale(
    name="full",
    train_size=1024, test_size=512, baseline_epochs=12,
    width_mult=0.5, depth_scale=1.0,
    admm_iterations=3, admm_epochs=3, retrain_epochs=3,
    sample_images=8, variation_runs=50,
    crossbar=CrossbarShape(128, 128),
)

SCALES: Dict[str, ExperimentScale] = {s.name: s for s in (FAST, STANDARD, FULL)}


#: (model, dataset) pairs evaluated per paper table/figure.
TABLE1_WORKLOADS: Tuple[Tuple[str, str], ...] = (
    ("lenet5", "mnist"),
    ("vgg16", "cifar10"),
    ("resnet18", "cifar10"),
)

TABLE2_WORKLOADS: Tuple[Tuple[str, str], ...] = (
    ("resnet18", "cifar100"),
    ("resnet50", "cifar100"),
    ("vgg16", "cifar100"),
    ("resnet18", "imagenet"),
    ("resnet50", "imagenet"),
)

FIG13_WORKLOADS: Tuple[Tuple[str, str], ...] = (
    ("vgg16", "cifar10"),
    ("resnet18", "cifar10"),
)

FIG14_WORKLOADS: Tuple[Tuple[str, str], ...] = (
    ("vgg16", "cifar100"),
    ("resnet18", "cifar100"),
    ("resnet50", "cifar100"),
    ("resnet18", "imagenet"),
    ("resnet50", "imagenet"),
)

"""Training and evaluation loops.

``fit`` accepts a ``grad_hook`` called after backprop and before the optimizer
step — this is the seam through which :class:`repro.core.admm.ADMMTrainer`
injects the augmented-Lagrangian penalty gradient (paper Eq. 4) without the
trainer knowing anything about constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from . import functional as F
from .data import DataLoader, Dataset
from .layers import Module
from .optim import Optimizer
from .tensor import Tensor, no_grad


@dataclass
class EpochStats:
    """Loss/accuracy for one pass over a split."""

    epoch: int
    loss: float
    accuracy: float


@dataclass
class History:
    """Training trajectory returned by :func:`fit`."""

    train: List[EpochStats] = field(default_factory=list)
    test: List[EpochStats] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        if not self.test:
            raise ValueError("no test evaluations recorded")
        return self.test[-1].accuracy


def evaluate(model: Module, dataset: Dataset, batch_size: int = 64) -> EpochStats:
    """Mean loss and top-1 accuracy of ``model`` on ``dataset``."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    total_loss = 0.0
    total_correct = 0.0
    count = 0
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(images))
            loss = F.cross_entropy(logits, labels)
            total_loss += loss.item() * len(labels)
            total_correct += F.accuracy(logits.data, labels) * len(labels)
            count += len(labels)
    model.train()
    return EpochStats(epoch=-1, loss=total_loss / count, accuracy=total_correct / count)


def evaluate_topk(model: Module, dataset: Dataset, k: int = 5,
                  batch_size: int = 64) -> float:
    """Top-k accuracy (the paper reports top-5 on ImageNet)."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    correct = 0.0
    count = 0
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(images))
            correct += F.topk_accuracy(logits.data, labels, k=k) * len(labels)
            count += len(labels)
    model.train()
    return correct / count


def recalibrate_batchnorm(model: Module, dataset: Dataset, passes: int = 2,
                          batch_size: int = 64, momentum: float = 0.3,
                          reset: bool = True) -> None:
    """Refresh BatchNorm running statistics with forward passes.

    Weight surgery (structured pruning, polarization, quantization, variation
    injection) shifts every layer's activation distribution, leaving the BN
    running mean/variance stale — the model then collapses in eval mode while
    training-mode accuracy is fine.  This burn-in recomputes the statistics
    without touching any weights, so constraint feasibility is preserved.
    """
    from .layers import BatchNorm2d  # local import avoids a cycle at load time

    bns = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
    if not bns:
        return
    saved_momentum = [bn.momentum for bn in bns]
    for bn in bns:
        if reset:
            bn.running_mean[...] = 0.0
            bn.running_var[...] = 1.0
        bn.momentum = momentum
    was_training = model.training
    model.train()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        for _ in range(max(passes, 1)):
            for images, _ in loader:
                model(Tensor(images))
    for bn, m in zip(bns, saved_momentum):
        bn.momentum = m
    model.train(was_training)


def fit(model: Module, train_set: Dataset, optimizer: Optimizer,
        epochs: int, batch_size: int = 32,
        test_set: Optional[Dataset] = None,
        grad_hook: Optional[Callable[[], None]] = None,
        step_hook: Optional[Callable[[], None]] = None,
        epoch_hook: Optional[Callable[[int], None]] = None,
        scheduler=None, seed: int = 0, verbose: bool = False) -> History:
    """Train ``model`` with cross-entropy for ``epochs`` passes.

    Parameters
    ----------
    grad_hook:
        Called after ``loss.backward()`` and before ``optimizer.step()`` on
        every batch.  Used by ADMM to add ``rho * (W - Z + U)`` to weight
        gradients.
    step_hook:
        Called after ``optimizer.step()`` on every batch.  Used by masked
        retraining to clamp weights back onto the constraint set (projected
        SGD) — per-batch, so pruned weights never regrow.
    epoch_hook:
        Called with the epoch index after each epoch (ADMM uses this for
        fragment-sign re-estimation every M epochs, Sec. III-B).
    """
    history = History()
    loader = DataLoader(train_set, batch_size=batch_size, shuffle=True, seed=seed)
    model.train()
    for epoch in range(epochs):
        epoch_loss = 0.0
        epoch_correct = 0.0
        seen = 0
        for images, labels in loader:
            optimizer.zero_grad()
            logits = model(Tensor(images))
            loss = F.cross_entropy(logits, labels)
            loss.backward()
            if grad_hook is not None:
                grad_hook()
            optimizer.step()
            if step_hook is not None:
                step_hook()
            epoch_loss += loss.item() * len(labels)
            epoch_correct += F.accuracy(logits.data, labels) * len(labels)
            seen += len(labels)
        if scheduler is not None:
            scheduler.step()
        stats = EpochStats(epoch, epoch_loss / seen, epoch_correct / seen)
        history.train.append(stats)
        if test_set is not None:
            test_stats = evaluate(model, test_set, batch_size=batch_size)
            history.test.append(EpochStats(epoch, test_stats.loss, test_stats.accuracy))
        if epoch_hook is not None:
            epoch_hook(epoch)
        if verbose:
            msg = f"epoch {epoch}: train loss {stats.loss:.4f} acc {stats.accuracy:.3f}"
            if test_set is not None:
                msg += f" | test acc {history.test[-1].accuracy:.3f}"
            print(msg)
    return history

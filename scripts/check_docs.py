#!/usr/bin/env python
"""Docs drift gate: the docs must exist, be reachable, and stay complete.

Four rules, each failing the check set (exit 1) the way a broken test
would:

1. ``README.md`` and ``docs/architecture.md`` exist and mention every
   package directory under ``src/repro/*`` as a qualified name
   (``repro.<package>`` or ``repro/<package>`` — a bare substring would
   be vacuously satisfied for short names like ``nn`` or ``core``).
2. Every ``docs/*.md`` file is linked from ``README.md`` (an undocumented
   doc is an unreachable doc).
3. Every ``python -m repro`` subcommand appears in the docs corpus
   (``README.md`` + ``docs/*.md``) as ``repro <subcommand>`` — adding an
   experiment without telling operators it exists fails the gate.
4. Every long flag of the ``serve`` option group (the serving CLI
   surface, including the HTTP front end's flags) appears literally in
   the corpus — the wire/operator docs cannot silently trail the CLI.
5. Every wire error code of ``repro.serving.ERROR_CODES`` appears
   backticked in the corpus — the error reference of ``docs/serving.md``
   cannot silently trail the protocol.
6. Every runtime execution backend of ``repro.runtime.BACKENDS`` appears
   backticked in the corpus, along with the ``FORMS_BACKEND`` override —
   adding an execution tier without documenting when it wins fails the
   gate.
7. Every metric name of ``repro.obs.METRIC_CATALOG`` appears backticked
   in ``docs/observability.md`` specifically — the exported ``/metrics``
   surface and its operator reference cannot drift apart.
8. Every SSE event type of ``repro.serving.aio.STREAM_EVENTS`` appears
   backticked in ``docs/serving.md`` specifically — the streaming
   protocol's event vocabulary and its operator reference cannot drift
   apart (the front end refuses to emit an undocumented type; this rule
   keeps "documented" honest).

Rules 3-8 introspect the real parser (``repro.cli.build_parser``), the
real wire contract (``repro.serving.http.ERROR_CODES``), the real
executor surface (``repro.runtime.BACKENDS``), the real metric
catalog (``repro.obs.metric_names``) and the real event vocabulary
(``repro.serving.aio.STREAM_EVENTS``), so the gate tracks the code by
construction.  Run by ``scripts/checks.sh``.
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

REQUIRED_DOCS = ("README.md", "docs/architecture.md")


def packages() -> list:
    src = REPO_ROOT / "src" / "repro"
    return sorted(p.name for p in src.iterdir()
                  if p.is_dir() and (p / "__init__.py").exists())


def docs_files() -> list:
    return sorted((REPO_ROOT / "docs").glob("*.md"))


def read_if_exists(path: pathlib.Path) -> str:
    """Missing files read as empty: rule 1 already reports the absence,
    so the later rules degrade to failures, not tracebacks."""
    return path.read_text(encoding="utf-8") if path.exists() else ""


def docs_corpus() -> str:
    """README plus every docs page — where rules 3-4 look for coverage."""
    texts = [read_if_exists(REPO_ROOT / "README.md")]
    texts += [path.read_text(encoding="utf-8") for path in docs_files()]
    return "\n".join(texts)


def cli_surface():
    """(subcommands, serve flags) introspected from the live parser."""
    from repro.cli import build_parser
    parser = build_parser()
    subcommands, serve_flags = [], []
    for group in parser._action_groups:
        for action in group._group_actions:
            if not action.option_strings and action.choices:
                subcommands = sorted(action.choices)
            elif group.title == "serve options":
                serve_flags.extend(opt for opt in action.option_strings
                                   if opt.startswith("--"))
    return subcommands, sorted(serve_flags)


def check_packages(failures: list) -> int:
    names = packages()
    if not names:
        failures.append("no packages found under src/repro")
        return 0
    for rel in REQUIRED_DOCS:
        path = REPO_ROOT / rel
        if not path.exists():
            failures.append(f"{rel}: missing")
            continue
        text = path.read_text(encoding="utf-8")
        missing = [name for name in names
                   if not re.search(rf"\brepro[./]{re.escape(name)}\b", text)]
        if missing:
            failures.append(f"{rel}: no mention of package(s) "
                            f"{', '.join(missing)}")
    return len(names)


def check_docs_linked(failures: list) -> int:
    readme = read_if_exists(REPO_ROOT / "README.md")
    pages = docs_files()
    for path in pages:
        if f"docs/{path.name}" not in readme:
            failures.append(f"README.md: docs/{path.name} is not linked "
                            "(every docs page must be reachable from the "
                            "README)")
    return len(pages)


def check_cli_coverage(failures: list):
    corpus = docs_corpus()
    subcommands, serve_flags = cli_surface()
    for name in subcommands:
        # must appear as an invocation, e.g. "python -m repro fig8"
        if not re.search(rf"\brepro\s+{re.escape(name)}\b", corpus):
            failures.append(f"docs corpus: subcommand `python -m repro "
                            f"{name}` is undocumented")
    for flag in serve_flags:
        if flag not in corpus:
            failures.append(f"docs corpus: serve flag `{flag}` is "
                            "undocumented")
    return subcommands, serve_flags


def check_error_codes(failures: list) -> int:
    """Rule 5: every stable wire error code is in the error reference."""
    from repro.serving.http import ERROR_CODES
    corpus = docs_corpus()
    for code in ERROR_CODES:
        if f"`{code}`" not in corpus:
            failures.append(f"docs corpus: wire error code `{code}` is "
                            "undocumented (docs/serving.md error reference)")
    return len(ERROR_CODES)


def check_backends(failures: list) -> int:
    """Rule 6: every execution backend (and its env override) is documented."""
    from repro.runtime import BACKEND_ENV, BACKENDS
    corpus = docs_corpus()
    for backend in BACKENDS:
        if f"`{backend}`" not in corpus:
            failures.append(f"docs corpus: runtime backend `{backend}` is "
                            "undocumented (docs/architecture.md runtime "
                            "section)")
    if BACKEND_ENV not in corpus:
        failures.append(f"docs corpus: the {BACKEND_ENV} environment "
                        "override is undocumented")
    return len(BACKENDS)


def check_metric_names(failures: list) -> int:
    """Rule 7: every catalogued metric is in the observability reference."""
    from repro.obs import metric_names
    names = metric_names()
    text = read_if_exists(REPO_ROOT / "docs" / "observability.md")
    for name in names:
        if f"`{name}`" not in text:
            failures.append(f"docs/observability.md: metric `{name}` is "
                            "undocumented (the METRIC_CATALOG and the "
                            "metrics-catalog tables must match)")
    return len(names)


def check_stream_events(failures: list) -> int:
    """Rule 8: every SSE event type is in the serving streaming section."""
    from repro.serving.aio import STREAM_EVENTS
    text = read_if_exists(REPO_ROOT / "docs" / "serving.md")
    for event in STREAM_EVENTS:
        if f"`{event}`" not in text:
            failures.append(f"docs/serving.md: SSE event type `{event}` is "
                            "undocumented (STREAM_EVENTS and the streaming "
                            "section must match)")
    return len(STREAM_EVENTS)


def main() -> int:
    failures: list = []
    n_packages = check_packages(failures)
    n_docs = check_docs_linked(failures)
    subcommands, serve_flags = check_cli_coverage(failures)
    n_codes = check_error_codes(failures)
    n_backends = check_backends(failures)
    n_metrics = check_metric_names(failures)
    n_events = check_stream_events(failures)
    if failures:
        for failure in failures:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    print(f"docs check: {len(REQUIRED_DOCS)} docs cover {n_packages} "
          f"packages, {n_docs} docs page(s) linked from README, "
          f"{len(subcommands)} subcommands, {len(serve_flags)} serve "
          f"flags, {n_codes} wire error codes, {n_backends} runtime "
          f"backends, {n_metrics} catalogued metrics and {n_events} "
          "stream event types documented")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Worker-pool executor for independent simulation jobs.

A thin, deterministic wrapper over two interchangeable execution tiers:

* ``backend="thread"`` — :class:`concurrent.futures.ThreadPoolExecutor`.
  Threads are the default pool for this stack: the hot kernels are NumPy
  contractions that release the GIL, engine state (conductance planes,
  code planes, constants) is read-only at run time and shared for free,
  and the engines' stats discipline (per-worker locals, locked merge at
  join) makes concurrent calls safe.
* ``backend="process"`` — a ``spawn``-context
  :class:`concurrent.futures.ProcessPoolExecutor` for the parts of the
  stack the GIL does serialize (scheduler bookkeeping, Python-level
  glue).  Tasks must be picklable (module-level functions or
  ``functools.partial`` — closures stay on the thread backend); large
  arrays are externalized into a :class:`~repro.runtime.shared.
  SharedPlanePool` so conductance planes and activation batches cross
  the process boundary as zero-copy shared-memory views, never as
  per-task pickles.  See :mod:`repro.runtime.process`.

Three properties the callers rely on, identical on both backends:

* **Ordered results** — :meth:`WorkerPool.map` returns results in item
  order regardless of completion order.
* **Eager errors** — the first worker exception propagates to the caller
  (remaining futures are cancelled where possible).
* **Re-entrancy** — a ``map`` issued *from inside* a worker runs inline
  instead of deadlocking on the pool's own capacity (thread workers) or
  double-spawning a process tree (process workers), so layer-level
  fan-out composes with tile-level fan-out without a worker budget
  negotiation.

The determinism contract
------------------------
The pool is deliberately *boring*: it never reorders, samples, batches or
retries.  Everything that makes parallel inference bit-identical to serial
inference lives in the layers around it, but the pool's ordered map is the
keystone — downstream consumers (:func:`repro.runtime.infer_tiled`, the
:mod:`repro.serving` batcher) index results positionally, and the engines'
stats discipline (per-call locals, locked **ordered merge** into integer
counters on the calling thread) plus :class:`repro.reram.nonideal.
ReadNoise`'s **per-job keyed substreams** do the rest.  Integer-counter
merges commute, so stats are worker-count invariant even though the merge
*order* is not; outputs are invariant because no floating-point
accumulation ever crosses tiles.  A ``WorkerPool(1)`` (or a single-item
map, or a re-entrant map) short-circuits to inline execution — the serial
and pooled paths are the identical code, which is what makes the contract
structural rather than a test hope.  The backend choice sits *under* that
contract: ``tests/runtime/test_backend_equivalence.py`` asserts serial,
thread and process runs are indistinguishable to the bits (outputs and
merged stats) at every tested worker count, read noise on or off.
"""

from __future__ import annotations

import os
import pickle
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: environment override of the default worker count
WORKERS_ENV = "FORMS_WORKERS"

#: environment override of the default backend
BACKEND_ENV = "FORMS_BACKEND"

#: the execution tiers ``WorkerPool`` can run on.  ``serial`` is the
#: explicit no-pool spelling (always inline); ``thread`` and ``process``
#: are the two real pools.
BACKENDS = ("serial", "thread", "process")

_WORKER_THREAD_PREFIX = "forms-worker"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count in effect: explicit > ``FORMS_WORKERS`` > CPU count."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return workers
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        value = int(env)
        if value < 1:
            raise ValueError(f"{WORKERS_ENV} must be >= 1, got {value}")
        return value
    return os.cpu_count() or 1


def resolve_backend(backend: Optional[str] = None) -> str:
    """Backend in effect: explicit > ``FORMS_BACKEND`` > ``"thread"``."""
    if backend is None:
        env = os.environ.get(BACKEND_ENV, "").strip().lower()
        backend = env or "thread"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


class WorkerPool:
    """A fixed-size worker pool with ordered, eager-error mapping.

    ``workers=1`` (or mapping a single item) short-circuits to inline
    execution — the serial path and the pooled path run the identical
    code, which is what makes "bit-identical at any worker count" a
    structural property rather than a test hope.

    ``backend`` selects the execution tier (see :data:`BACKENDS`).  The
    process backend degrades gracefully rather than failing the run:
    when shared memory is unavailable it falls back to threads (with a
    warning), and when constructed *inside* a process worker it runs
    inline — ``requested_backend`` keeps the ask, ``backend`` reports
    what is actually in effect, and ``fallback_reason`` says why they
    differ.
    """

    def __init__(self, workers: Optional[int] = None,
                 backend: Optional[str] = None):
        self.workers = resolve_workers(workers)
        self.requested_backend = resolve_backend(backend)
        self.fallback_reason: Optional[str] = None
        effective = self.requested_backend
        if effective == "process" and self.workers > 1:
            from .process import process_backend_available

            ok, reason = process_backend_available()
            if not ok:
                if reason == "already inside a process-backend worker":
                    # Re-entrancy: never spawn a process tree from a worker.
                    effective = "serial"
                    self.fallback_reason = reason + "; running inline"
                else:
                    effective = "thread"
                    self.fallback_reason = (
                        f"process backend unavailable ({reason}); "
                        "falling back to threads")
                    warnings.warn("WorkerPool: " + self.fallback_reason,
                                  RuntimeWarning, stacklevel=2)
        self.backend = effective
        self._executor: Optional[ThreadPoolExecutor] = None
        self._process_executor = None
        self.plane_pool = None
        self._shipments = {}
        self._ship_seq = 0
        if self.workers > 1:
            if effective == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=_WORKER_THREAD_PREFIX)
            elif effective == "process":
                from .shared import SharedPlanePool

                self.plane_pool = SharedPlanePool()

    # ------------------------------------------------------------------
    @property
    def supports_closures(self) -> bool:
        """Whether ``map`` accepts closures/lambdas (thread + inline tiers).

        The process backend pickles tasks, so callers that fan out local
        closures (the engines' in-layer chunk fan-out, ad-hoc sweep
        lambdas) must check this and stay inline or on threads.
        """
        return not (self.backend == "process" and self.workers > 1)

    def _run_inline(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in item order."""
        items = list(items)
        if (self.workers <= 1 or len(items) <= 1 or self.backend == "serial"
                or threading.current_thread().name.startswith(
                    _WORKER_THREAD_PREFIX)):
            return self._run_inline(fn, items)
        if self.backend == "process":
            return self._map_process(fn, items)
        if self._executor is None:  # closed pool: keep the inline contract
            return self._run_inline(fn, items)
        futures = [self._executor.submit(fn, item) for item in items]
        return self._gather(futures)

    @staticmethod
    def _gather(futures) -> List:
        """Ordered collection with eager first-error propagation."""
        results: List = []
        error: Optional[BaseException] = None
        for future in futures:
            if error is not None:
                future.cancel()
                continue
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                error = exc
        if error is not None:
            raise error
        return results

    # ------------------------------------------------------------------
    # Process tier
    # ------------------------------------------------------------------
    def _ensure_process_executor(self):
        if self._process_executor is None:
            from .process import make_process_executor

            self._process_executor = make_process_executor(self.workers)
        return self._process_executor

    def _map_process(self, fn, items) -> List:
        from .process import dumps_planes, invoke_payload

        executor = self._ensure_process_executor()
        try:
            payloads = [dumps_planes((fn, item), self.plane_pool)
                        for item in items]
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            raise TypeError(
                "backend='process' tasks must be picklable: use module-level "
                "functions or functools.partial (closures and lambdas run "
                "on backend='thread' only)") from exc
        futures = [executor.submit(invoke_payload, payload)
                   for payload in payloads]
        return self._gather(futures)

    def ship(self, obj, version=0) -> "Shipment":
        """Pickle ``obj`` once into shared memory for every future task.

        Returns a :class:`repro.runtime.process.Shipment` whose token
        workers use to deserialize the object once per process (see
        :func:`repro.runtime.process.load_shipment`).  Re-shipping the
        same object with the same ``version`` is free; a changed version
        (e.g. after an online die swap bumped an engine's epoch) ships a
        fresh copy under a new token.
        """
        if self.backend != "process" or self.plane_pool is None:
            raise RuntimeError("ship() requires an open process-backend pool "
                               "with workers > 1")
        from .process import Shipment, dumps_planes

        key = id(obj)
        cached = self._shipments.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        data = dumps_planes(obj, self.plane_pool)
        handle = self.plane_pool.register_bytes(data)
        self._ship_seq += 1
        shipment = Shipment(token=f"{os.getpid()}:{id(self):x}:{self._ship_seq}",
                            payload=handle)
        # Keep a reference to obj so its id() cannot be recycled while the
        # memo entry is alive.
        self._shipments[key] = (version, shipment, obj)
        return shipment

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Graceful shutdown: drain workers, then unlink shared memory."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._process_executor is not None:
            self._process_executor.shutdown(wait=True)
            self._process_executor = None
        if self.plane_pool is not None:
            self.plane_pool.close()
            self.plane_pool = None
        self._shipments.clear()

    def terminate(self) -> None:
        """Hard shutdown: kill worker processes, drop queued work, unlink.

        The Ctrl-C path: callers that caught :class:`KeyboardInterrupt`
        (or need a wedged worker gone) call this instead of :meth:`close`.
        Shared-memory cleanup still runs — interruption must not leak
        ``/dev/shm`` segments.
        """
        if self._process_executor is not None:
            processes = list(
                getattr(self._process_executor, "_processes", {}).values())
            self._process_executor.shutdown(wait=False, cancel_futures=True)
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            for proc in processes:
                proc.join(timeout=5)
            self._process_executor = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self.plane_pool is not None:
            self.plane_pool.close()
            self.plane_pool = None
        self._shipments.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None,
                 backend: Optional[str] = None) -> List[R]:
    """One-shot ordered parallel map (borrows ``pool`` or builds its own).

    The convenience entry point for sweep drivers: DSE grids, ablation
    sweeps and benchmark fan-outs call this with their per-point evaluator;
    a shared :class:`~repro.reram.engine.DieCache` inside the evaluator
    then deduplicates die programming across the concurrent points.
    ``backend`` selects the execution tier when the call owns its pool
    (process-backend evaluators must be picklable — module-level functions
    or ``functools.partial``, not closures).
    """
    items = list(items)
    if pool is not None:
        return pool.map(fn, items)
    with WorkerPool(workers, backend=backend) as owned:
        return owned.map(fn, items)

"""BENCH_engine.json schema: backend metadata merges, nothing clobbered.

``run_suite`` gained a ``backend`` host field (plus per-record backend
meta on the multi-worker benches and a ``parallelism_note`` on
single-core hosts).  These tests pin the merge contract: the new fields
ride along without disturbing ``write_payload``'s kind-preservation —
records of every non-engine kind recorded by the other benchmark
drivers (serving, chaos, cluster, obs) survive an engine-suite
re-record.
"""

import json
import os

import pytest

from repro.perf.suite import bench_insitu_network, run_suite, write_payload

#: every record kind the shared BENCH file carries today
ALL_KINDS = ("paired", "single", "table", "serving", "chaos", "cluster",
             "obs")
#: the kinds owned by other recorders, which an engine re-record must keep
PRESERVED_KINDS = ("serving", "chaos", "cluster", "obs")


@pytest.fixture(scope="module")
def smoke_payload():
    return run_suite(smoke=True, repeats=1, backend="process")


def test_host_records_backend_and_core_note(smoke_payload):
    host = smoke_payload["host"]
    assert host["backend"] == "process"
    if (os.cpu_count() or 1) <= 1:
        assert "single-core" in host["parallelism_note"]
    else:
        assert "parallelism_note" not in host


def test_network_bench_meta_carries_backend():
    record = bench_insitu_network(2, repeats=1, backend="process")
    assert record["meta"]["backend"] == "process"
    assert record["meta"]["workers"] == 2


def test_backend_field_merges_without_clobbering_kinds(tmp_path,
                                                       smoke_payload):
    path = tmp_path / "BENCH_engine.json"
    previous = {
        "mode": "full",
        "host": {"numpy": "0", "python": "0"},    # no backend field yet
        "records": [{"name": f"old_{kind}", "kind": kind, "fused": {}}
                    for kind in ALL_KINDS],
        "criteria": {"pass": True},
    }
    path.write_text(json.dumps(previous))

    write_payload(path, smoke_payload)
    merged = json.loads(path.read_text())

    names = {record["name"] for record in merged["records"]}
    for kind in PRESERVED_KINDS:
        assert f"old_{kind}" in names, f"{kind} records were clobbered"
    # engine-owned kinds are regenerated, not carried over
    for kind in ("paired", "single", "table"):
        assert f"old_{kind}" not in names
    # the new host field landed, and the regenerated records kept their
    # schema (every engine record still names its kind)
    assert merged["host"]["backend"] == "process"
    assert all("kind" in record for record in merged["records"])
    # the multi-worker insitu records carry the backend in their meta
    insitu = [record for record in merged["records"]
              if record["name"].startswith("insitu_network_batch8_w")]
    assert insitu
    assert all(record["meta"]["backend"] == "process" for record in insitu)

"""Structured pruning projection tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (FragmentGeometry, PruningSpec, keep_topk_columns,
                        keep_topk_rows, project_structured, prune_ratio,
                        snap_keep_count, structure_summary, structured_mask)


class TestSnapKeepCount:
    def test_identity_at_granularity_one(self):
        assert snap_keep_count(100, 37, 1) == 37

    def test_rounds_up_to_multiple(self):
        assert snap_keep_count(256, 100, 128) == 128
        assert snap_keep_count(256, 129, 128) == 256
        assert snap_keep_count(256, 128, 128) == 128

    def test_capped_at_total(self):
        assert snap_keep_count(100, 90, 128) == 100

    def test_clips_to_valid_range(self):
        assert snap_keep_count(10, 0, 1) == 1
        assert snap_keep_count(10, 99, 1) == 10

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            snap_keep_count(0, 1, 1)


class TestTopK:
    def test_columns_keep_largest(self, rng):
        matrix = np.diag([3.0, 1.0, 2.0])
        out = keep_topk_columns(matrix, 2)
        assert out[1, 1] == 0.0
        assert out[0, 0] == 3.0 and out[2, 2] == 2.0

    def test_rows_keep_largest(self):
        matrix = np.diag([3.0, 1.0, 2.0])
        out = keep_topk_rows(matrix, 1)
        assert np.count_nonzero(out) == 1
        assert out[0, 0] == 3.0

    def test_keep_all_is_identity(self, rng):
        matrix = rng.normal(size=(4, 5))
        np.testing.assert_array_equal(keep_topk_columns(matrix, 5), matrix)
        np.testing.assert_array_equal(keep_topk_rows(matrix, 4), matrix)


class TestPruningSpec:
    def test_keep_counts_snapped(self):
        spec = PruningSpec(filter_keep=0.5, shape_keep=0.5,
                           row_granularity=8, col_granularity=4)
        rows, cols = spec.keep_counts(30, 10)
        assert rows == 16  # ceil(15/8)*8
        assert cols == 8   # ceil(5/4)*4

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            PruningSpec(filter_keep=0.0)
        with pytest.raises(ValueError):
            PruningSpec(shape_keep=1.5)


class TestProjectStructured:
    def test_produces_row_col_structure(self, rng):
        weight = rng.normal(size=(8, 2, 3, 3))
        geom = FragmentGeometry(weight.shape, 4)
        spec = PruningSpec(filter_keep=0.5, shape_keep=0.5)
        pruned = project_structured(weight, geom, spec)
        summary = structure_summary(pruned, geom)
        assert summary["live_cols"] == 4
        assert summary["live_rows"] == 9

    def test_idempotent(self, rng):
        weight = rng.normal(size=(8, 2, 3, 3))
        geom = FragmentGeometry(weight.shape, 4)
        spec = PruningSpec(filter_keep=0.5, shape_keep=0.75)
        once = project_structured(weight, geom, spec)
        np.testing.assert_array_equal(project_structured(once, geom, spec), once)

    def test_preserves_survivors(self, rng):
        weight = rng.normal(size=(8, 2, 3, 3))
        geom = FragmentGeometry(weight.shape, 4)
        pruned = project_structured(weight, geom, PruningSpec(0.5, 0.5))
        mask = pruned != 0
        np.testing.assert_array_equal(pruned[mask], weight[mask])

    def test_keep_one_is_identity(self, rng):
        weight = rng.normal(size=(4, 2, 3, 3))
        geom = FragmentGeometry(weight.shape, 4)
        np.testing.assert_array_equal(
            project_structured(weight, geom, PruningSpec(1.0, 1.0)), weight)


class TestMaskAndSummary:
    def test_mask_matches_nonzero_structure(self, rng):
        weight = rng.normal(size=(8, 2, 3, 3))
        geom = FragmentGeometry(weight.shape, 4)
        pruned = project_structured(weight, geom, PruningSpec(0.5, 0.5))
        mask = structured_mask(pruned, geom)
        np.testing.assert_array_equal(mask, pruned != 0)

    def test_prune_ratio(self):
        weight = np.zeros((2, 10))
        weight[0, :5] = 1.0
        assert prune_ratio(weight) == 4.0

    def test_prune_ratio_all_zero(self):
        assert prune_ratio(np.zeros((2, 2))) == 4.0  # guards div-by-zero

    def test_summary_dense(self, rng):
        weight = rng.normal(size=(4, 2, 3, 3))
        geom = FragmentGeometry(weight.shape, 4)
        summary = structure_summary(weight, geom)
        assert summary["live_rows"] == 18 and summary["live_cols"] == 4
        assert summary["prune_ratio"] == 1.0


@given(st.integers(2, 10), st.integers(2, 10),
       st.floats(0.1, 1.0), st.floats(0.1, 1.0))
@settings(max_examples=30, deadline=None)
def test_projection_structure_property(rows_units, cols, fk, sk):
    """Projected matrices always have pure row x column sparsity patterns."""
    rng = np.random.default_rng(rows_units * 31 + cols)
    weight = rng.normal(size=(cols, rows_units))
    geom = FragmentGeometry(weight.shape, 2)
    pruned = project_structured(weight, geom, PruningSpec(fk, sk))
    matrix = pruned.reshape(cols, -1).T
    live_rows = np.abs(matrix).sum(axis=1) > 0
    live_cols = np.abs(matrix).sum(axis=0) > 0
    # Every (live row, live col) cell must be exactly the original weight.
    original = weight.reshape(cols, -1).T
    np.testing.assert_array_equal(matrix[np.ix_(live_rows, live_cols)],
                                  original[np.ix_(live_rows, live_cols)])
    # Everything else is zero.
    assert (matrix[~live_rows].sum() == 0.0) and (matrix[:, ~live_cols].sum() == 0.0)

"""Learning-rate schedules for the training substrate.

The ADMM phases and the paper's baseline training runs benefit from decayed
learning rates (the reference works train with multi-step and cosine
schedules).  All schedulers share the convention of
:class:`repro.nn.optim.StepLR`: call :meth:`step` once per finished epoch;
``lr_at(0)`` is the optimizer's initial rate.

The base class computes rates *functionally* from the epoch counter (rather
than multiplying in place), so a schedule can be inspected before training
and composed with :class:`WarmupLR`.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .optim import Optimizer


class LRScheduler:
    """Base class: functional epoch -> learning-rate mapping."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self._epoch = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    def lr_at(self, epoch: int) -> float:
        """Learning rate after ``epoch`` completed epochs."""
        raise NotImplementedError

    def step(self) -> None:
        """Advance one epoch and write the new rate into the optimizer."""
        self._epoch += 1
        self.optimizer.lr = self.lr_at(self._epoch)

    def preview(self, epochs: int) -> List[float]:
        """The schedule's rates for epochs ``0 .. epochs - 1`` (inspection)."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        return [self.lr_at(e) for e in range(epochs)]


class MultiStepLR(LRScheduler):
    """Decay by ``gamma`` at each milestone epoch (reference CNN recipes)."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int],
                 gamma: float = 0.1):
        super().__init__(optimizer)
        if not milestones:
            raise ValueError("need at least one milestone")
        ordered = sorted(milestones)
        if ordered[0] <= 0:
            raise ValueError("milestones must be positive epochs")
        if len(set(ordered)) != len(ordered):
            raise ValueError("milestones must be distinct")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.milestones = ordered
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if m <= epoch)
        return self.base_lr * self.gamma ** passed


class ExponentialLR(LRScheduler):
    """Multiply by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        super().__init__(optimizer)
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** epoch


class CosineAnnealingLR(LRScheduler):
    """Half-cosine decay from the base rate to ``eta_min`` over ``t_max`` epochs.

    Past ``t_max`` the rate stays at ``eta_min`` (no restarts).
    """

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        if eta_min < 0 or eta_min > optimizer.lr:
            raise ValueError("eta_min must lie in [0, base_lr]")
        self.t_max = t_max
        self.eta_min = eta_min

    def lr_at(self, epoch: int) -> float:
        if epoch >= self.t_max:
            return self.eta_min
        cosine = (1.0 + math.cos(math.pi * epoch / self.t_max)) / 2.0
        return self.eta_min + (self.base_lr - self.eta_min) * cosine


class WarmupLR(LRScheduler):
    """Linear warmup composed in front of another schedule.

    Epochs ``1 .. warmup_epochs`` ramp linearly from ``base/warmup`` to the
    base rate; afterwards the wrapped schedule runs with its epoch counter
    shifted so its own epoch 0 lands right after the warmup.
    """

    def __init__(self, inner: LRScheduler, warmup_epochs: int):
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        super().__init__(inner.optimizer)
        self.inner = inner
        self.warmup_epochs = warmup_epochs

    def lr_at(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / (self.warmup_epochs + 1)
        return self.inner.lr_at(epoch - self.warmup_epochs)


class ConstantLR(LRScheduler):
    """No decay — the explicit identity schedule (useful as a default)."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr

"""Zero-skipping: effective bits, EIC, and the Fig. 9 circuit model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (EICStats, ZeroSkipLogic, average_eic_over_layers,
                        effective_bits, eic_matrix, fragment_eic,
                        layer_eic_stats)


class TestEffectiveBits:
    def test_known_values(self):
        values = np.array([0, 1, 2, 3, 4, 0b1011, 0xFFFF])
        np.testing.assert_array_equal(effective_bits(values),
                                      [0, 1, 2, 2, 3, 4, 16])

    def test_matches_bit_length(self, rng):
        values = rng.integers(0, 2 ** 16, size=200)
        expected = [int(v).bit_length() for v in values]
        np.testing.assert_array_equal(effective_bits(values), expected)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            effective_bits(np.array([1.5]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            effective_bits(np.array([-1]))


class TestFragmentEIC:
    def test_paper_figure7_example(self):
        # Fig. 7: inp1 has 6 effective bits but the fragment needs 7 cycles
        # because inp2 has 7.
        fragment = np.array([0b101011, 0b1001011, 0b110, 0b110100])
        assert fragment_eic(fragment) == 7

    def test_all_zero_fragment_needs_one_cycle(self):
        assert fragment_eic(np.zeros(4, dtype=np.int64)) == 1

    def test_axis_handling(self):
        values = np.array([[1, 255], [3, 1]])
        np.testing.assert_array_equal(fragment_eic(values, axis=1), [8, 2])


class TestEICMatrix:
    def test_shape_and_padding(self):
        x = np.arange(10, dtype=np.int64).reshape(5, 2)
        out = eic_matrix(x, fragment_size=3)  # 5 rows -> 2 fragments (padded)
        assert out.shape == (2, 2)

    def test_padding_does_not_raise_eic(self):
        x = np.array([[1], [1], [255]], dtype=np.int64)
        out = eic_matrix(x, fragment_size=2)
        assert out[0, 0] == 1   # fragment of two 1s
        assert out[1, 0] == 8   # 255 + zero pad

    def test_smaller_fragments_never_increase_eic(self, rng):
        x = rng.integers(0, 2 ** 12, size=(32, 6))
        avg4 = eic_matrix(x, 4).mean()
        avg16 = eic_matrix(x, 16).mean()
        assert avg4 <= avg16 + 1e-12

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            eic_matrix(np.zeros(4, dtype=np.int64), 2)


class TestEICStats:
    def test_average_and_buckets(self):
        stats = EICStats(4, 16, {1: 5, 8: 5, 16: 10})
        assert stats.count == 20
        assert stats.average == (5 + 40 + 160) / 20
        pct = stats.bucket_percentages()
        assert pct["1"] == 25.0
        assert pct["2~13"] == 25.0
        assert pct["16"] == 50.0

    def test_saved_fraction(self):
        stats = EICStats(4, 16, {8: 10})
        assert stats.saved_fraction == 0.5

    def test_from_values_and_merge(self):
        a = EICStats.from_eic_values(np.array([1, 1, 3]), 4, 16)
        b = EICStats.from_eic_values(np.array([3, 16]), 4, 16)
        merged = a.merge(b)
        assert merged.histogram == {1: 2, 3: 2, 16: 1}
        with pytest.raises(ValueError):
            a.merge(EICStats(8, 16, {}))

    def test_layer_eic_stats_clips_to_total_bits(self):
        x = np.full((4, 3), 2 ** 15, dtype=np.int64)
        stats = layer_eic_stats(x, 4, total_bits=8)
        assert max(stats.histogram) <= 8

    def test_average_over_layers_weighted(self):
        layers = {
            "a": EICStats(4, 16, {4: 10}),
            "b": EICStats(4, 16, {8: 30}),
        }
        assert average_eic_over_layers(layers) == (4 * 10 + 8 * 30) / 40
        assert average_eic_over_layers({}) == 0.0

    def test_empty_stats(self):
        stats = EICStats(4, 16, {})
        assert stats.average == 0.0


class TestZeroSkipLogic:
    def test_cycles_match_analytic_eic(self):
        logic = ZeroSkipLogic(16)
        inputs = [0b101011, 0b1001011, 0b110, 0b110100]
        trace = logic.run(inputs)
        assert trace.cycles == fragment_eic(np.array(inputs))

    def test_all_zero_inputs_take_one_cycle(self):
        trace = ZeroSkipLogic(16).run([0, 0, 0])
        assert trace.cycles == 1
        assert trace.skipped_cycles == 15

    def test_full_scale_input_takes_all_cycles(self):
        trace = ZeroSkipLogic(8).run([255])
        assert trace.cycles == 8
        assert trace.skipped_cycles == 0

    def test_reconstruction_lossless(self, rng):
        logic = ZeroSkipLogic(16)
        inputs = rng.integers(0, 2 ** 16, size=8).tolist()
        trace = logic.run(inputs)
        assert trace.reconstruct() == inputs

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ZeroSkipLogic(8).run([256])
        with pytest.raises(ValueError):
            ZeroSkipLogic(8).run([-1])
        with pytest.raises(ValueError):
            ZeroSkipLogic(0)


@given(st.lists(st.integers(0, 2 ** 16 - 1), min_size=1, max_size=16))
@settings(max_examples=60, deadline=None)
def test_circuit_matches_analytic_property(inputs):
    """The Fig. 9 circuit's cycle count equals max effective bits (min 1),
    and skipping never loses information."""
    trace = ZeroSkipLogic(16).run(inputs)
    assert trace.cycles == max(1, max(int(v).bit_length() for v in inputs))
    assert trace.reconstruct() == inputs

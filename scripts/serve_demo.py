#!/usr/bin/env python
"""Stand up the batching inference server and serve synthetic traffic.

The quickest way to *see* the serving layer work::

    python scripts/serve_demo.py
    python scripts/serve_demo.py --requests 32 --rate 400 --max-batch 8

Builds the FORMS-shaped demo CNN, replays open-loop Poisson arrivals
through :class:`repro.serving.InferenceServer`, checks every output
bit-identical to a direct serial single-image forward, and prints
per-request receipts (queue wait, batch ridden, conversions) plus the
server's operational snapshot.  Equivalent to ``python -m repro serve``.

``--models 2`` (or ``--priority-classes 2``) switches to the
self-checking two-model, two-class SLA demo: an interactive tenant with
per-request deadlines and a bulk tenant with a latency bound contend for
one shared ``WorkerPool`` + ``DieCache``; per-class latency/shed
summaries, shed receipts, and a cross-model die-dedup proof are printed::

    python scripts/serve_demo.py --models 2 --requests 32 --rate 400

``--http PORT`` puts the demo server on a socket (the
``repro.serving.http`` wire protocol, documented in ``docs/serving.md``)
and serves until Ctrl-C so you can drive it with curl; ``--http-demo``
instead replays ``--requests`` self-checking requests through the wire
(bit-identity asserted against the in-process serial forward), drains,
and exits::

    python scripts/serve_demo.py --http 8100
    python scripts/serve_demo.py --http 0 --http-demo --models 2

``--cluster N`` serves through a :class:`repro.serving.ClusterRouter`
over N subprocess replicas of the identical build (health-checked
failover, consistent-hash placement); with ``--http-demo`` it runs the
SIGKILL/restart failover smoke instead::

    python scripts/serve_demo.py --cluster 2 --http 8100
    python scripts/serve_demo.py --cluster 2 --http 0 --http-demo
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving.demo import run_demo, run_multitenant_demo   # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=16)
    parser.add_argument("--rate", type=float, default=200.0,
                        help="Poisson arrival rate in requests/s")
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--models", type=int, default=1, choices=(1, 2),
                        help="2 selects the two-model, two-class SLA demo")
    parser.add_argument("--priority-classes", type=int, default=None,
                        choices=(1, 2),
                        help="number of SLA classes (default: --models)")
    parser.add_argument("--deadline-ms", type=float, default=50.0,
                        help="interactive-class deadline in the SLA demo "
                             "(<= 0 disables)")
    parser.add_argument("--http", type=int, default=None, metavar="PORT",
                        help="serve over HTTP on PORT (0 = ephemeral) "
                             "until Ctrl-C; see docs/serving.md")
    parser.add_argument("--http-demo", action="store_true",
                        help="with --http: replay --requests requests "
                             "through the wire, verify, drain, exit")
    parser.add_argument("--http-host", default="127.0.0.1",
                        help="bind address for --http (default: loopback)")
    parser.add_argument("--cluster", type=int, default=None, metavar="N",
                        help="with --http: serve through a cluster router "
                             "over N subprocess replicas (with --http-demo "
                             "runs the SIGKILL/restart failover smoke)")
    parser.add_argument("--cluster-replication", type=int, default=2,
                        metavar="R",
                        help="preferred replicas per model on the hash ring")
    parser.add_argument("--hedge-ms", type=float, default=None,
                        help="cluster router hedging delay in ms "
                             "(default: off)")
    args = parser.parse_args(argv)
    classes = (args.priority_classes if args.priority_classes is not None
               else args.models)
    if args.http_demo and args.http is None:
        parser.error("--http-demo requires --http PORT")
    if args.cluster is not None:
        if args.http is None:
            parser.error("--cluster requires --http PORT (the router's "
                         "bind port)")
        if args.cluster < 1:
            parser.error("--cluster needs at least one replica")
    if args.http is not None:
        from repro.serving.demo import run_http_cli

        return run_http_cli(args)
    if args.models > 1 or classes > 1:
        if (args.max_batch, args.max_wait_ms) != (4, 2.0):
            print("note: --max-batch/--max-wait-ms are FIFO knobs; the SLA "
                  "demo's classes carry their own coalescing budgets "
                  "(ignored here)")
        deadline = (args.deadline_ms
                    if args.deadline_ms and args.deadline_ms > 0 else None)
        run_multitenant_demo(requests=args.requests, rate_rps=args.rate,
                             deadline_ms=deadline, workers=args.workers,
                             seed=args.seed)
        return 0
    run_demo(requests=args.requests, rate_rps=args.rate,
             max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
             workers=args.workers, seed=args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

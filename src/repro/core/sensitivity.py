"""Per-layer pruning-ratio selection (paper Sec. III-A).

FORMS "perform[s] a crossbar-aware structured pruning by considering the
crossbar size and carefully choosing the pruning ratio for each DNN layer to
avoid unnecessary accuracy drop".  The paper states the outcome but not the
selection procedure; this module implements the standard sensitivity-scan
recipe the ADMM pruning literature uses ([54], ADMM-NN [49]):

1. **scan** — for each compressible layer independently, project the layer
   to a range of keep ratios (no retraining — the pessimistic bound) and
   measure test accuracy with every other layer intact;
2. **select** — per layer, take the most aggressive keep ratio whose
   projection-only accuracy stays within ``tolerance`` of the clean model;
3. **snap** — round the chosen ratio *up* to the crossbar granularity
   (:func:`repro.core.pruning.snap_keep_count`): pruning below the next
   crossbar multiple costs accuracy without saving a single crossbar.

The output plugs into :class:`~repro.core.pipeline.FORMSConfig.per_layer_keep`
so the ADMM pipeline trains against the selected per-layer targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.data import Dataset
from ..nn.layers import Module, compressible_layers
from ..nn.trainer import evaluate
from .compression import CrossbarShape
from .fragments import FragmentGeometry, geometry_for_layer
from .pruning import PruningSpec, project_structured, snap_keep_count

DEFAULT_KEEP_RATIOS = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2)


@dataclass
class SensitivityCurve:
    """Projection-only accuracy of one layer across keep ratios."""

    layer: str
    keep_ratios: List[float]
    accuracies: List[float]
    rows: int
    cols: int

    def accuracy_at(self, keep: float) -> float:
        """Accuracy at the scanned ratio closest to ``keep``."""
        index = int(np.argmin(np.abs(np.asarray(self.keep_ratios) - keep)))
        return self.accuracies[index]

    def min_keep_within(self, clean_accuracy: float,
                        tolerance: float) -> float:
        """Most aggressive scanned keep ratio within the accuracy tolerance."""
        viable = [k for k, a in zip(self.keep_ratios, self.accuracies)
                  if a >= clean_accuracy - tolerance]
        return min(viable) if viable else 1.0


def layer_sensitivity_scan(model: Module, test_set: Dataset,
                           fragment_size: int = 8, policy: str = "w",
                           keep_ratios: Sequence[float] = DEFAULT_KEEP_RATIOS,
                           prune_axis: str = "both",
                           batch_size: int = 64) -> Dict[str, SensitivityCurve]:
    """Scan every compressible layer's pruning sensitivity independently.

    ``prune_axis`` chooses what the scanned ratio applies to: ``"filter"``
    (columns), ``"shape"`` (rows) or ``"both"``.  Weights are restored after
    every measurement; the model is unchanged on return.
    """
    if prune_axis not in ("filter", "shape", "both"):
        raise ValueError("prune_axis must be 'filter', 'shape' or 'both'")
    ratios = sorted(set(keep_ratios), reverse=True)
    if not ratios or ratios[0] > 1.0 or ratios[-1] <= 0.0:
        raise ValueError("keep ratios must lie in (0, 1]")

    curves: Dict[str, SensitivityCurve] = {}
    for name, layer in compressible_layers(model):
        geometry = geometry_for_layer(layer, fragment_size, policy)
        original = layer.weight.data.copy()
        accuracies = []
        for keep in ratios:
            spec = PruningSpec(
                filter_keep=keep if prune_axis in ("filter", "both") else 1.0,
                shape_keep=keep if prune_axis in ("shape", "both") else 1.0,
            )
            layer.weight.data[...] = project_structured(original, geometry,
                                                        spec)
            accuracies.append(evaluate(model, test_set,
                                       batch_size=batch_size).accuracy)
            layer.weight.data[...] = original
        curves[name] = SensitivityCurve(
            layer=name, keep_ratios=list(ratios), accuracies=accuracies,
            rows=geometry.rows, cols=geometry.cols)
    return curves


@dataclass
class KeepSelection:
    """Chosen per-layer keep ratios with crossbar-aware snapping applied."""

    clean_accuracy: float
    tolerance: float
    raw_keep: Dict[str, float] = field(default_factory=dict)
    snapped_keep: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_per_layer_keep(self) -> Dict[str, Dict[str, float]]:
        """The mapping :class:`FORMSConfig.per_layer_keep` consumes."""
        return self.snapped_keep


def select_keep_ratios(curves: Dict[str, SensitivityCurve],
                       clean_accuracy: float, tolerance: float = 0.02,
                       crossbar: Optional[CrossbarShape] = None,
                       cells_per_weight: int = 4,
                       protected: Sequence[str] = ()) -> KeepSelection:
    """Choose each layer's keep ratio from its sensitivity curve.

    ``protected`` layers (typically the first conv and the classifier) are
    pinned at keep = 1.  With ``crossbar`` given, ratios snap up so the kept
    rows/columns land exactly on crossbar slice boundaries — the step that
    makes the pruning *crossbar-aware*.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    selection = KeepSelection(clean_accuracy=clean_accuracy,
                              tolerance=tolerance)
    for name, curve in curves.items():
        keep = 1.0 if name in protected else \
            curve.min_keep_within(clean_accuracy, tolerance)
        selection.raw_keep[name] = keep
        if crossbar is None:
            snapped_shape, snapped_filter = keep, keep
        else:
            col_gran = max(1, crossbar.cols // cells_per_weight)
            rows_kept = snap_keep_count(curve.rows,
                                        int(round(curve.rows * keep)),
                                        crossbar.rows)
            cols_kept = snap_keep_count(curve.cols,
                                        int(round(curve.cols * keep)),
                                        col_gran)
            snapped_shape = rows_kept / curve.rows
            snapped_filter = cols_kept / curve.cols
        selection.snapped_keep[name] = {
            "shape_keep": snapped_shape,
            "filter_keep": snapped_filter,
        }
    return selection


def sensitivity_report(curves: Dict[str, SensitivityCurve],
                       selection: Optional[KeepSelection] = None
                       ) -> List[List]:
    """Rows for :func:`repro.analysis.tables.render_table`."""
    rows = []
    for name, curve in curves.items():
        best = max(curve.accuracies)
        worst = min(curve.accuracies)
        chosen = selection.raw_keep.get(name) if selection else None
        rows.append([name, f"{curve.rows}x{curve.cols}",
                     best * 100.0, worst * 100.0,
                     chosen if chosen is not None else "-"])
    return rows

"""Chip-scale weight-programming cost tests."""

import numpy as np
import pytest

from repro.arch.programming import (LevelWriteCost, ProgrammingCost,
                                    WriteParallelism, cell_level_histogram,
                                    level_write_costs,
                                    model_programming_cost)
from repro.reram.vteam import VTEAMParams


@pytest.fixture(scope="module")
def costs():
    return level_write_costs(VTEAMParams(), cell_bits=2)


class TestLevelWriteCosts:
    def test_covers_every_level(self, costs):
        assert set(costs) == {0, 1, 2, 3}

    def test_erased_level_is_free(self, costs):
        # Cells start fully RESET (level 0): no pulses needed.
        assert costs[0].pulses == 0
        assert costs[0].energy_j == 0.0

    def test_nonzero_levels_cost_pulses_and_energy(self, costs):
        for level in (1, 2, 3):
            assert costs[level].pulses > 0
            assert costs[level].energy_j > 0.0
            assert costs[level].time_s > 0.0


class TestWriteParallelism:
    def test_validation(self):
        with pytest.raises(ValueError):
            WriteParallelism(drivers_per_crossbar=0)
        with pytest.raises(ValueError):
            WriteParallelism(verify_time_s=-1.0)


class TestModelProgrammingCost:
    HISTOGRAM = {0: 50_000, 1: 20_000, 2: 20_000, 3: 10_000}

    def test_totals_consistent(self, costs):
        cost = model_programming_cost(self.HISTOGRAM, crossbars=8)
        assert cost.cells == 100_000
        expected_pulses = sum(costs[l].pulses * n
                              for l, n in self.HISTOGRAM.items())
        assert cost.total_pulses == expected_pulses
        expected_energy = sum(costs[l].energy_j * n
                              for l, n in self.HISTOGRAM.items())
        assert cost.energy_j == pytest.approx(expected_energy)
        assert cost.latency_s > 0

    def test_compression_cuts_programming_cost(self):
        # Half the cells (the crossbar-reduction effect) -> half the energy
        # and no more latency.
        dense = model_programming_cost(self.HISTOGRAM, crossbars=8)
        halved = {l: n // 2 for l, n in self.HISTOGRAM.items()}
        compressed = model_programming_cost(halved, crossbars=4)
        assert compressed.energy_j == pytest.approx(dense.energy_j / 2)
        assert compressed.latency_s <= dense.latency_s

    def test_parallelism_cuts_latency_not_energy(self):
        serial = model_programming_cost(
            self.HISTOGRAM, crossbars=8,
            parallelism=WriteParallelism(concurrent_crossbars=1))
        parallel = model_programming_cost(
            self.HISTOGRAM, crossbars=8,
            parallelism=WriteParallelism(concurrent_crossbars=8))
        assert parallel.latency_s < serial.latency_s
        assert parallel.energy_j == serial.energy_j

    def test_unit_properties(self):
        cost = ProgrammingCost(cells=1, crossbars=1, total_pulses=1,
                               energy_j=0.002, latency_s=0.003)
        assert cost.energy_mj == pytest.approx(2.0)
        assert cost.latency_ms == pytest.approx(3.0)

    def test_validation(self, costs):
        with pytest.raises(ValueError):
            model_programming_cost({0: 10}, crossbars=0)
        with pytest.raises(ValueError):
            model_programming_cost({9: 10}, crossbars=1)


class TestHistogram:
    def test_counts_all_planes(self):
        planes = {
            "positive": np.array([[0, 1], [1, 3]]),
            "negative": np.array([[0, 0], [2, 3]]),
        }
        histogram = cell_level_histogram(planes)
        assert histogram == {0: 3, 1: 2, 2: 1, 3: 2}

    def test_integrates_with_mapping(self):
        from repro.core.fragments import FragmentGeometry
        from repro.core.quantization import QuantizationSpec
        from repro.reram.mapping import infer_signs, map_layer

        rng = np.random.default_rng(0)
        geometry = FragmentGeometry((4, 1, 3, 3), 3, "w")
        raw = rng.integers(-7, 8, size=(geometry.padded_rows, geometry.cols))
        stack = raw.reshape(-1, geometry.fragment_size, geometry.cols)
        signs = np.where(stack.sum(axis=1, keepdims=True) >= 0, 1, -1)
        levels = (np.abs(stack) * signs).reshape(
            geometry.padded_rows, geometry.cols)[:geometry.rows]
        mapped = map_layer(levels, geometry, QuantizationSpec(8, 2),
                           scheme="forms",
                           signs=infer_signs(levels, geometry))
        histogram = cell_level_histogram(mapped.code_planes)
        total_cells = sum(plane.size for plane in mapped.code_planes.values())
        assert sum(histogram.values()) == total_cells
        cost = model_programming_cost(histogram, crossbars=1)
        assert cost.cells == total_cells